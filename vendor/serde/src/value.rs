//! The owned JSON-like data model everything serializes through.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys give deterministic output.
pub type Map = BTreeMap<String, Value>;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Member lookup on objects; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Index lookup on arrays.
    #[must_use]
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// `true` only for `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Numeric content as `i64`, if this is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrows the elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// A short name for error messages ("a number", "an object", ...).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// A JSON number: unsigned, signed-negative, or floating.
///
/// Construction canonicalizes: non-negative integers are always `PosInt`,
/// strictly negative ones `NegInt`, so derived equality is semantic for
/// integers. As in `serde_json`, integers never equal floats.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A strictly negative integer.
    NegInt(i64),
    /// A float (including non-finite values, which print as `null`).
    Float(f64),
}

impl Number {
    /// Canonicalizing constructor from a signed integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// Widens to `f64`.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// As `u64` when non-negative integral.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// As `i64` when integral and in range.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// Writes `s` as a JSON string literal with escapes.
pub(crate) fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl Value {
    fn write_compact(&self, f: &mut impl fmt::Write) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    item.write_compact(f)?;
                }
                f.write_char(']')
            }
            Value::Object(map) => {
                f.write_char('{')?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, key)?;
                    f.write_char(':')?;
                    value.write_compact(f)?;
                }
                f.write_char('}')
            }
        }
    }

    /// Pretty printing with serde_json's layout (2-space indent,
    /// `"key": value`).
    pub(crate) fn write_pretty(&self, f: &mut impl fmt::Write, depth: usize) -> fmt::Result {
        const INDENT: &str = "  ";
        match self {
            Value::Array(items) if !items.is_empty() => {
                f.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",\n")?;
                    }
                    for _ in 0..=depth {
                        f.write_str(INDENT)?;
                    }
                    item.write_pretty(f, depth + 1)?;
                }
                f.write_char('\n')?;
                for _ in 0..depth {
                    f.write_str(INDENT)?;
                }
                f.write_char(']')
            }
            Value::Object(map) if !map.is_empty() => {
                f.write_str("{\n")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",\n")?;
                    }
                    for _ in 0..=depth {
                        f.write_str(INDENT)?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(": ")?;
                    value.write_pretty(f, depth + 1)?;
                }
                f.write_char('\n')?;
                for _ in 0..depth {
                    f.write_str(INDENT)?;
                }
                f.write_char('}')
            }
            other => other.write_compact(f),
        }
    }
}

impl Value {
    /// Pretty-printed JSON text (serde_json's layout: 2-space indent,
    /// `"key": value`).
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0)
            .expect("writing to String cannot fail");
        out
    }
}

impl fmt::Display for Value {
    /// Compact JSON, exactly as `serde_json::to_string` would print.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_compact(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_display() {
        let mut map = Map::new();
        map.insert(
            "b".into(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        map.insert("a".into(), Value::Number(Number::Float(1.5)));
        let v = Value::Object(map);
        assert_eq!(v.to_string(), r#"{"a":1.5,"b":[null,true]}"#);
    }

    #[test]
    fn integral_float_prints_with_point() {
        assert_eq!(Number::Float(1250.0).to_string(), "1250.0");
        assert_eq!(Number::PosInt(1250).to_string(), "1250");
    }

    #[test]
    fn numbers_canonicalize() {
        assert_eq!(Number::from_i64(3), Number::PosInt(3));
        assert_eq!(Number::from_i64(-3), Number::NegInt(-3));
        assert_ne!(Number::PosInt(1), Number::Float(1.0));
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\u{01}".into());
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
