//! Deserialization errors.

use std::fmt;

use crate::Value;

/// Why a [`Value`](crate::Value) could not be turned into the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with an arbitrary message.
    pub fn custom(message: impl fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// "expected X, found Y" against a concrete value.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError {
            message: format!(
                "expected {what}, found {found_ty}",
                found_ty = found.type_name()
            ),
        }
    }

    /// A required struct field was absent (and the field type does not
    /// accept null).
    #[must_use]
    pub fn missing_field(name: &str) -> Self {
        DeError {
            message: format!("missing field `{name}`"),
        }
    }

    /// An enum payload named no known variant.
    #[must_use]
    pub fn unknown_variant(variant: &str, enum_name: &str) -> Self {
        DeError {
            message: format!("unknown variant `{variant}` for enum {enum_name}"),
        }
    }

    /// Wraps this error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, name: &str) -> Self {
        DeError {
            message: format!("field `{name}`: {}", self.message),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
