//! `Deserialize`: reconstructing a type from the [`Value`] data model.

use std::collections::BTreeMap;

use crate::{DeError, Value};

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Validates and converts one value-tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or range does not fit.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("a boolean", value))
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("an unsigned integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("an integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_u64()
            .map(u128::from)
            .ok_or_else(|| DeError::expected("an unsigned integer", value))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("a number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("a string", value))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("a string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("an array", value))?;
        items.iter().map(T::from_value).collect()
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("an array (tuple)", value))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected a tuple of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let object = value
            .as_object()
            .ok_or_else(|| DeError::expected("an object (map)", value))?;
        let mut map = BTreeMap::new();
        for (key, item) in object {
            let key = K::from_value(&Value::String(key.clone())).map_err(|e| e.in_field(key))?;
            map.insert(key, V::from_value(item)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Number;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&Value::Number(Number::PosInt(7))), Ok(7));
        assert!(u32::from_value(&Value::Number(Number::Float(7.0))).is_err());
        assert_eq!(f64::from_value(&Value::Number(Number::PosInt(7))), Ok(7.0));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert!(String::from_value(&Value::Null).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::Number(Number::PosInt(300))).is_err());
        assert!(u64::from_value(&Value::Number(Number::NegInt(-1))).is_err());
    }
}
