//! Offline drop-in subset of `serde`, specialized to this workspace.
//!
//! Instead of serde's zero-copy visitor architecture, this stub routes
//! everything through an owned JSON-like [`Value`] tree: `Serialize` maps
//! a type *to* a `Value`, `Deserialize` builds a type *from* one. The
//! derive macros in `serde_derive` generate impls against these traits
//! with serde's externally-tagged data model, so `#[derive(Serialize,
//! Deserialize)]`, `#[serde(try_from = "...", into = "...")]`, and
//! `serde_json` round-trips behave like upstream for every shape this
//! workspace uses.

mod de;
mod error;
mod ser;
mod value;

pub use de::Deserialize;
pub use error::DeError;
pub use ser::Serialize;
pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Support code referenced by `serde_derive` expansions. Not public API.
#[doc(hidden)]
pub mod __private {
    use crate::{DeError, Deserialize, Map, Value};

    /// Pulls one named field out of an object, treating a missing key as
    /// `Value::Null` so `Option` fields default to `None` like upstream.
    #[doc(hidden)]
    pub fn field<T: Deserialize>(map: &Map, name: &'static str) -> Result<T, DeError> {
        match map.get(name) {
            Some(v) => T::from_value(v).map_err(|e| e.in_field(name)),
            None => T::from_value(&Value::Null).map_err(|_| DeError::missing_field(name)),
        }
    }
}
