//! `Serialize`: a type's mapping into the [`Value`] data model, plus
//! impls for the std types this workspace serializes.

use std::collections::BTreeMap;

use crate::{Map, Number, Value};

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Builds the value-tree representation.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(i64::from(*self)))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_i64(*self as i64))
    }
}

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // In-range counts stay exact; beyond u64 we degrade to f64, which
        // is all the search-space counters need.
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::PosInt(v)),
            Err(_) => Value::Number(Number::Float(*self as f64)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Renders a map key. JSON keys are strings, so the key's value form must
/// be a string or number (newtype ids and unit enum variants both are).
pub(crate) fn key_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map keys must serialize to strings or numbers, got {}",
            other.type_name()
        ),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_string(&k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(3u32.to_value(), Value::Number(Number::PosInt(3)));
        assert_eq!((-3i32).to_value(), Value::Number(Number::NegInt(-3)));
        assert_eq!(1.5f64.to_value(), Value::Number(Number::Float(1.5)));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(1u32).to_value(), Value::Number(Number::PosInt(1)));
    }

    #[test]
    fn collections() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![1u32.to_value(), 2u32.to_value()])
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u32);
        assert_eq!(m.to_value().get("k"), Some(&1u32.to_value()));
    }
}
