//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Only the pieces this workspace uses are provided: `RwLock` and `Mutex`
//! with panic-free (non-poisoning) guard acquisition. A thread that
//! panicked while holding a std lock poisons it; like the real
//! `parking_lot`, this wrapper ignores the poison flag and hands out the
//! inner guard anyway.

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with `parking_lot`'s non-poisoning `read`/`write`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock around `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Mutex with `parking_lot`'s non-poisoning `lock`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
