//! Offline drop-in subset of the `crossbeam` API used by this workspace:
//! `crossbeam::thread::scope` with crossbeam's closure signatures, backed
//! by `std::thread::scope`.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention
    //! (`scope(|s| ...)` returning `Result`, spawn closures taking `&Scope`).

    use std::any::Any;
    use std::thread as std_thread;

    /// Error payload from a scope whose unjoined child panicked.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; spawn closures receive a reference to it so they
    /// can spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, as in
        /// crossbeam, so nested spawns work unchanged.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// The crossbeam signature returns `Err` when an unjoined child
    /// panicked. `std::thread::scope` propagates such panics instead, so
    /// this wrapper only ever returns `Ok`; callers' `.expect(...)` on the
    /// result behave identically either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<u64>()
            })
            .expect("scope");
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|scope| {
                let h = scope.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap());
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}
