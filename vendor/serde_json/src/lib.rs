//! Offline drop-in subset of `serde_json` over the vendored serde stub's
//! [`Value`] model: strict recursive-descent parsing, compact and pretty
//! printers matching upstream's layout, and the `json!` macro.

mod parse;

use std::fmt;
use std::io;

use serde::{DeError, Deserialize, Serialize};

pub use serde::{Map, Number, Value};

/// Errors from (de)serialization or JSON text parsing.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::msg(e.to_string())
    }
}

/// Converts any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a type from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not fit `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes to pretty JSON text (2-space indent, `"key": value`).
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Serializes compact JSON into a writer.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer
        .write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error::msg(format!("write failed: {e}")))
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch. Never panics,
/// whatever the input.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    from_value(&value)
}

/// Parses JSON bytes (must be UTF-8) into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Builds a [`Value`] from JSON-looking syntax. Supports nested objects
/// and arrays, `null`, and arbitrary serializable Rust expressions in
/// value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::__json_array!(@acc [] $($tt)*) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __json_map = $crate::Map::new();
        $crate::__json_object!(__json_map $($tt)*);
        $crate::Value::Object(__json_map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Array-element muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    (@acc [$($done:expr),*]) => { $crate::Value::Array(::std::vec![$($done),*]) };
    (@acc [$($done:expr),*] , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($done),*] $($rest)*)
    };
    (@acc [$($done:expr),*] null $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($done,)* $crate::Value::Null] $($rest)*)
    };
    (@acc [$($done:expr),*] { $($obj:tt)* } $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($done,)* $crate::json!({ $($obj)* })] $($rest)*)
    };
    (@acc [$($done:expr),*] [ $($arr:tt)* ] $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($done,)* $crate::json!([ $($arr)* ])] $($rest)*)
    };
    (@acc [$($done:expr),*] $e:expr , $($rest:tt)*) => {
        $crate::__json_array!(@acc [$($done,)* $crate::to_value(&$e)] $($rest)*)
    };
    (@acc [$($done:expr),*] $e:expr) => {
        $crate::__json_array!(@acc [$($done,)* $crate::to_value(&$e)])
    };
}

/// Object-member muncher for [`json!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    ($map:ident) => {};
    ($map:ident , $($rest:tt)*) => { $crate::__json_object!($map $($rest)*) };
    ($map:ident $key:literal : null $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::__json_object!($map $($rest)*);
    };
    ($map:ident $key:literal : { $($obj:tt)* } $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($obj)* }));
        $crate::__json_object!($map $($rest)*);
    };
    ($map:ident $key:literal : [ $($arr:tt)* ] $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($arr)* ]));
        $crate::__json_object!($map $($rest)*);
    };
    ($map:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::to_value(&$value));
        $crate::__json_object!($map $($rest)*);
    };
    ($map:ident $key:literal : $value:expr) => {
        $map.insert(::std::string::String::from($key), $crate::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "tiers": ["Compute", "Storage"],
            "sla": { "target": 0.98 },
            "clouds": [],
            "as_is": null,
            "count": 3u32,
        });
        assert_eq!(
            v.to_string(),
            r#"{"as_is":null,"clouds":[],"count":3,"sla":{"target":0.98},"tiers":["Compute","Storage"]}"#
        );
        let msg = json!({ "error": format!("bad request: {}", 7) });
        assert_eq!(
            msg.get("error").and_then(Value::as_str),
            Some("bad request: 7")
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u8, null, [2u8]]).to_string(), "[1,null,[2]]");
    }

    #[test]
    fn pretty_layout_matches_upstream() {
        let v = json!({ "schema_version": 1u32, "catalog": [] });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"catalog\": [],\n  \"schema_version\": 1\n}");
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({ "a": [1u8, 2u8], "b": "x\"y", "c": -3i32, "d": 1.25f64 });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_slice_and_errors() {
        let v: Value = from_slice(br#"{"ok": true}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err());
        assert!(from_str::<Value>("{\"a\": 1,}").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
