//! Strict recursive-descent JSON parser. Never panics: malformed input,
//! truncation, trailing garbage, bad escapes, and pathological nesting
//! all return `Err`.

use serde::{Map, Number, Value};

use crate::Error;

/// Deepest permitted array/object nesting; guards the call stack against
/// adversarial inputs like `[[[[...`.
const MAX_DEPTH: usize = 128;

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> Error {
        Error::msg(format!("{message} at byte {pos}", pos = self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or ']' in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut map = Map::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Object(map));
            }
            if !self.eat(b',') {
                return Err(self.err("expected ',' or '}' in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without quotes/escapes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries fall on ASCII bytes, so this is valid
            // UTF-8 (the input already was).
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 inside string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let Some(c) = self.peek() else {
            return Err(self.err("unterminated escape"));
        };
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require \uXXXX for the low half.
                    if !(self.eat(b'\\') && self.eat(b'u')) {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                let ch = char::from_u32(code)
                    .ok_or_else(|| self.err("escape is not a valid scalar value"))?;
                out.push(ch);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.eat(b'-');
        // Integer part: 0 alone, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digits in number")),
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from_i64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            // Integer overflow: fall through to f64 like serde_json's
            // arbitrary-precision-off behavior.
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Result<Value, Error> {
        parse(text)
    }

    #[test]
    fn scalars() {
        assert_eq!(v("null").unwrap(), Value::Null);
        assert_eq!(v(" true ").unwrap(), Value::Bool(true));
        assert_eq!(v("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(v("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(v("0.5").unwrap(), Value::Number(Number::Float(0.5)));
        assert_eq!(v("1e3").unwrap(), Value::Number(Number::Float(1000.0)));
        assert_eq!(v("\"a\\n\\u0041\"").unwrap(), Value::String("a\nA".into()));
    }

    #[test]
    fn structures() {
        let parsed = v(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(
            parsed
                .get("a")
                .and_then(|a| a.get_index(1))
                .and_then(|o| o.get("b")),
            Some(&Value::Null)
        );
        assert_eq!(parsed.get("c").and_then(Value::as_str), Some("d"));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "01",
            "1.",
            "1e",
            "+1",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "nullx",
            "{} {}",
            "--1",
            "NaN",
        ] {
            assert!(v(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(v(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(v(&ok).is_ok());
    }

    #[test]
    fn float_roundtrip_shortest() {
        for x in [0.1, 0.98, 1.0 / 3.0, 1e-300, 12345.6789] {
            let text = Value::Number(Number::Float(x)).to_string();
            match v(&text).unwrap() {
                Value::Number(Number::Float(back)) => assert_eq!(back, x),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }
}
