//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! No statistics: each benchmark body runs a small fixed number of
//! iterations and prints the mean wall time, which keeps `cargo bench`
//! (and `cargo test --benches`) functional without the real harness.

use std::fmt;
use std::hint;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use hint::black_box;

/// Iterations per benchmark body; enough for a sane mean, cheap enough
/// for CI.
const ITERATIONS: u32 = 3;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut body);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is fixed in this stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), &mut body);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| body(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Handed to benchmark bodies; `iter` times the closure.
pub struct Bencher {
    nanos: u128,
    runs: u32,
}

impl Bencher {
    /// Times `routine`, keeping its output live via `black_box`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let out = routine();
            self.nanos += start.elapsed().as_nanos();
            self.runs += 1;
            black_box(&out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, body: &mut F) {
    let mut bencher = Bencher { nanos: 0, runs: 0 };
    body(&mut bencher);
    let mean = if bencher.runs == 0 {
        0
    } else {
        bencher.nanos / u128::from(bencher.runs)
    };
    println!("bench {name}: mean {mean} ns over {} run(s)", bencher.runs);
}

/// Declares a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 1u8));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
