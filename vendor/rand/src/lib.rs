//! Offline drop-in subset of the `rand` 0.10 API used by this workspace:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! extension methods `random` / `random_range`.
//!
//! `StdRng` here is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream's ChaCha12, but with the same statistical
//! guarantees the workspace relies on (uniform `f64` in `[0, 1)`,
//! unbiased integer ranges, and full determinism per seed).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generators.

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Advances the generator and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // splitmix64 expansion of the 64-bit seed into the full state,
        // avoiding the all-zero state xoshiro cannot escape.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

/// Types samplable uniformly from an RNG via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Unbiased draw from `[0, span)` by 128-bit widening multiply.
fn below(rng: &mut dyn RngCore, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods mirroring rand 0.10's `Rng` surface.
pub trait RngExt: RngCore + Sized {
    /// Draws a uniform value of an inferable type (`f64` in `[0, 1)`,
    /// full-width integers, fair `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range; panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
        let x = rng.random_range(3.0f64..4.0);
        assert!((3.0..4.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }
}
