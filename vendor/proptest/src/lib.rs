//! Offline drop-in subset of `proptest`, specialized to this workspace.
//!
//! Strategies here are plain deterministic samplers (no shrinking): each
//! test gets its own RNG seeded from a hash of the test name, so runs are
//! reproducible build-to-build. The surface mirrors the pieces the
//! workspace uses: range strategies, tuples, `prop::collection::vec`,
//! `any`, `Just`, `prop_map`/`prop_flat_map`, `ProptestConfig::with_cases`,
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used by the test harness.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name so every property has a stable stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A generator of random values (no shrinking in this stub).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! strategy_for_uint_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}
strategy_for_uint_ranges!(u8, u16, u32, u64, usize);

macro_rules! strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                (i64::from(self.start) + rng.below(span) as i64) as $t
            }
        }
    )*};
}
strategy_for_int_ranges!(i8, i16, i32);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // Scale by the next representable factor above 1 so `end` itself
        // is (rarely) reachable, matching the inclusive contract.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

macro_rules! strategy_for_tuples {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical "anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec()`](crate::collection::vec).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_inclusive: len,
            }
        }
    }

    /// See [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// `prop::collection::...` paths after a prelude glob import.
    pub use crate as prop;
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
/// `prop_assert*` failures and explicit `return Ok(())` short-circuit a
/// single case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Expansion worker for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let __outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(__message) = __outcome {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases,
                            __message
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left != __right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0.25f64..=0.75, z in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0u32..5, any::<bool>()), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for (n, _flag) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn map_and_flat_map(n in (1usize..4).prop_flat_map(|len| {
            prop::collection::vec(0u8..10, len..=len).prop_map(move |v| (len, v))
        })) {
            let (len, v) = n;
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn early_ok_return_supported(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::for_test("fixed");
        let mut b = super::TestRng::for_test("fixed");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
