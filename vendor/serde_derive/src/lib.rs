//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub — no `syn`/`quote`, just a small token-tree walk
//! over the shapes this workspace actually derives:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * unit structs,
//! * enums with unit / newtype / tuple / struct variants, encoded with
//!   serde's externally-tagged layout (`"Variant"` or
//!   `{"Variant": payload}`),
//! * the container attributes `#[serde(try_from = "T", into = "T")]`.
//!
//! Generics are rejected with a compile-time panic; field-level serde
//! attributes other than none at all are rejected too, so silent
//! behavioral drift from upstream serde is impossible.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the stub's value-model flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (the stub's value-model flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model

struct Item {
    name: String,
    kind: ItemKind,
    /// `#[serde(try_from = "T")]`
    try_from: Option<String>,
    /// `#[serde(into = "T")]`
    into: Option<String>,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// --------------------------------------------------------------- parser

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut try_from = None;
    let mut into = None;
    while let Some(attr) = take_attr(&tokens, &mut pos) {
        parse_serde_attr(&attr, &mut try_from, &mut into);
    }
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde stub derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stub derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde stub derive: expected struct or enum, found `{other}`"),
    };

    Item {
        name,
        kind,
        try_from,
        into,
    }
}

/// Consumes one `#[...]` attribute, returning its bracket content.
fn take_attr(tokens: &[TokenTree], pos: &mut usize) -> Option<Vec<TokenTree>> {
    match (tokens.get(*pos), tokens.get(*pos + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            *pos += 2;
            Some(g.stream().into_iter().collect())
        }
        _ => None,
    }
}

/// Records `try_from`/`into` from a `#[serde(...)]` attribute; rejects any
/// other serde option; ignores non-serde attributes (doc, derive leftovers,
/// `#[non_exhaustive]`, ...).
fn parse_serde_attr(attr: &[TokenTree], try_from: &mut Option<String>, into: &mut Option<String>) {
    let is_serde = matches!(attr.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = attr.get(1) else {
        panic!("serde stub derive: malformed #[serde] attribute");
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        let key = match &args[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("serde stub derive: unexpected token in #[serde(...)]: {other:?}"),
        };
        let value = match (args.get(i + 1), args.get(i + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
                unquote(&lit.to_string())
            }
            _ => panic!("serde stub derive: expected `{key} = \"...\"` in #[serde(...)]"),
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => panic!("serde stub derive: unsupported serde attribute `{other}`"),
        }
        i += 3;
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde stub derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` bodies, returning the field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        while take_attr(&tokens, &mut pos).is_some() {}
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde stub derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
    }
    fields
}

/// Skips one type, stopping after the `,` that ends it (or at end of
/// stream). `<`/`>` nesting is tracked so commas inside generics don't
/// terminate early; bracketed groups are atomic tokens already.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

/// Counts the comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        while take_attr(&tokens, &mut pos).is_some() {}
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        while take_attr(&tokens, &mut pos).is_some() {}
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            other => panic!(
                "serde stub derive: unsupported token after enum variant `{name}`: {other:?} \
                 (discriminants are not supported)"
            ),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// -------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into {
        format!(
            "let __raw: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__raw)"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                let mut out = String::from("let mut __map = ::serde::Map::new();\n");
                for f in fields {
                    out.push_str(&format!(
                        "__map.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    ));
                }
                out.push_str("::serde::Value::Object(__map)");
                out
            }
            ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            ItemKind::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
            }
            ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
            ItemKind::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{name}::{vn} => \
                             ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vn}({binds}) => {{\n\
                                 let mut __map = ::serde::Map::new();\n\
                                 __map.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                                 ::serde::Value::Object(__map)\n\
                                 }}\n",
                                binds = binds.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let mut inner =
                                String::from("let mut __inner = ::serde::Map::new();\n");
                            for f in fields {
                                inner.push_str(&format!(
                                    "__inner.insert(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}));\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "{name}::{vn} {{ {fields} }} => {{\n\
                                 {inner}\
                                 let mut __map = ::serde::Map::new();\n\
                                 __map.insert(::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(__inner));\n\
                                 ::serde::Value::Object(__map)\n\
                                 }}\n",
                                fields = fields.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.try_from {
        format!(
            "let __raw: {from_ty} = ::serde::Deserialize::from_value(__value)?;\n\
             <{name} as ::core::convert::TryFrom<{from_ty}>>::try_from(__raw)\
             .map_err(|__e| ::serde::DeError::custom(__e))"
        )
    } else {
        match &item.kind {
            ItemKind::NamedStruct(fields) => {
                let mut init = String::new();
                for f in fields {
                    init.push_str(&format!(
                        "{f}: ::serde::__private::field(__map, \"{f}\")?,\n"
                    ));
                }
                format!(
                    "let __map = __value.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"an object for struct {name}\", __value))?;\n\
                     ::core::result::Result::Ok({name} {{\n{init}}})"
                )
            }
            ItemKind::TupleStruct(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            ItemKind::TupleStruct(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __value.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"an array for struct {name}\", __value))?;\n\
                     if __arr.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::DeError::custom(\
                     \"struct {name} expects {n} elements\"));\n}}\n\
                     ::core::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", ")
                )
            }
            ItemKind::UnitStruct => format!(
                "match __value {{\n\
                 ::serde::Value::Null => ::core::result::Result::Ok({name}),\n\
                 __other => ::core::result::Result::Err(\
                 ::serde::DeError::expected(\"null for unit struct {name}\", __other)),\n}}"
            ),
            ItemKind::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut data_arms = String::new();
                for v in variants {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                        )),
                        VariantKind::Tuple(1) => data_arms.push_str(&format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__entry.1)?)),\n"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __arr = __entry.1.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"an array for variant {vn}\", \
                                 __entry.1))?;\n\
                                 if __arr.len() != {n} {{\n\
                                 return ::core::result::Result::Err(::serde::DeError::custom(\
                                 \"variant {vn} expects {n} elements\"));\n}}\n\
                                 ::core::result::Result::Ok({name}::{vn}({elems}))\n}}\n",
                                elems = elems.join(", ")
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            let mut init = String::new();
                            for f in fields {
                                init.push_str(&format!(
                                    "{f}: ::serde::__private::field(__inner, \"{f}\")?,\n"
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let __inner = __entry.1.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\"an object for variant {vn}\", \
                                 __entry.1))?;\n\
                                 ::core::result::Result::Ok({name}::{vn} {{\n{init}}})\n}}\n"
                            ));
                        }
                    }
                }
                format!(
                    "match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::core::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, \"{name}\")),\n}},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                     let __entry = __m.iter().next().expect(\"len checked\");\n\
                     match __entry.0.as_str() {{\n\
                     {data_arms}\
                     __other => ::core::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, \"{name}\")),\n}}\n}}\n\
                     __other => ::core::result::Result::Err(::serde::DeError::expected(\
                     \"a variant of {name}\", __other)),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
