//! Epsilon-dominance branch-and-bound Pareto frontier extraction.
//!
//! [`crate::pareto::frontier`] sweeps every assignment; this module puts
//! frontier extraction on the bounded fast path. A depth-first walk over
//! the factorized [`crate::fast`] terms carries the PR 5 admissible
//! per-prefix aggregates (`branch_bound::Bounds`): at depth `d`
//! the *ideal point* of the subtree — the cost floor
//! `acc.cost + minC_d` and the availability ceiling
//! `acc.avail · maxA_d` — bounds every completion in both frontier axes
//! at once. The subtree is discarded when an already-achieved feasible
//! point **epsilon-dominates** that ideal point: beats the cost floor by
//! more than `ε + slack` *and* the availability ceiling by more than
//! `ε + slack`. Every leaf inside such a subtree is strictly dominated
//! by an achieved point, so pruning never removes a frontier achiever —
//! which is exactly why the output is thread-count-independent (see
//! DESIGN.md §16 for the full argument):
//!
//! 1. survivors always include *every* assignment whose `(cost, uptime)`
//!    pair is non-dominated within the feasible set, regardless of how
//!    prefix tasks were interleaved across workers, and
//! 2. the final merge sorts survivors by `(cost ↑, uptime ↓, digits ↑)`
//!    and keeps strict-uptime improvements, which reconstructs the exact
//!    feasible frontier with the lexicographically-smallest assignment
//!    as every point's representative.
//!
//! Hard SLO constraints ([`FrontierConstraints`]) integrate as
//! deterministic box pruning: a cost cap cuts subtrees whose cost floor
//! exceeds it, an uptime floor cuts subtrees whose availability ceiling
//! misses it. The failover budget has no admissible per-prefix bound, so
//! it is enforced exactly at each leaf — a feasible point can be
//! cost/uptime-dominated by a failover-infeasible one, which is why
//! infeasible leaves never enter the pruning archive.
//!
//! [`composition_search_with_threads`] runs the same walk over
//! series–parallel [`CompositionSpace`]s using
//! `composition_bnb::Bounds`; [`naive_frontier`] /
//! [`naive_composition_frontier`] are the materializing O(N²) dominance
//! references the differential suite and the PR 9 bench gate compare
//! against.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;
use serde::{Deserialize, Serialize};
use uptime_core::{Probability, TcoModel, UptimeBreakdown, HOURS_PER_MONTH};

use crate::branch_bound::Bounds as SerialBounds;
use crate::composition::{CompositionEvaluator, CompositionSpace, FoldState};
use crate::composition_bnb::Bounds as CompositionBounds;
use crate::evaluate::Evaluation;
use crate::fast::{self, Accum, CandidateTerms, FastEvaluator};
use crate::pareto::ParetoPoint;
use crate::space::SearchSpace;

/// Floating-point guard under every prune, matching the argmin engines:
/// a subtree needs to be dominated by more than `ε + BOUND_SLACK` before
/// it is cut, so bound-vs-leaf rounding noise can never discard a
/// frontier achiever.
const BOUND_SLACK: f64 = 1e-6;

/// Prefix tasks per worker, matching the argmin engines' stealing grain.
const TASKS_PER_THREAD: usize = 8;

/// Hard SLO box constraints restricting the feasible set the frontier is
/// extracted over. `None` everywhere (see [`FrontierConstraints::NONE`])
/// reproduces the unconstrained cost/uptime frontier.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrontierConstraints {
    /// Maximum monthly HA spend, $/month.
    pub max_cost: Option<f64>,
    /// Minimum availability, as a fraction in [0, 1].
    pub min_uptime: Option<f64>,
    /// Maximum expected failover downtime, minutes/month.
    pub max_failover_minutes: Option<f64>,
}

impl FrontierConstraints {
    /// No constraints: the full cost/uptime frontier.
    pub const NONE: FrontierConstraints = FrontierConstraints {
        max_cost: None,
        min_uptime: None,
        max_failover_minutes: None,
    };

    /// Exact feasibility of one achieved point (no epsilon slack).
    fn admits(&self, cost: f64, uptime: f64, failover_minutes: f64) -> bool {
        self.max_cost.is_none_or(|cap| cost <= cap)
            && self.min_uptime.is_none_or(|floor| uptime >= floor)
            && self
                .max_failover_minutes
                .is_none_or(|budget| failover_minutes <= budget)
    }
}

/// Tree-shape instrumentation of one frontier search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParetoStats {
    /// Worker threads the search ran on.
    pub threads: u64,
    /// Prefix tasks stolen.
    pub tasks: u64,
    /// Interior tree nodes expanded.
    pub nodes_visited: u64,
    /// Complete assignments evaluated at leaves.
    pub leaves_evaluated: u64,
    /// Bound cutoffs: subtrees discarded without descending.
    pub subtrees_pruned: u64,
    /// Complete assignments inside those discarded subtrees.
    pub variants_skipped: u64,
    /// Points on the returned frontier.
    pub frontier_size: u64,
}

/// A frontier plus the instrumentation of the search that produced it.
///
/// `points` is empty exactly when no assignment satisfies the hard
/// constraints — callers surface that as a typed infeasibility error.
#[derive(Debug, Clone)]
pub struct FrontierOutcome {
    points: Vec<ParetoPoint>,
    stats: ParetoStats,
}

impl FrontierOutcome {
    /// The frontier, cost-ascending with strictly rising uptime.
    #[must_use]
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Consumes the outcome, yielding the frontier.
    #[must_use]
    pub fn into_points(self) -> Vec<ParetoPoint> {
        self.points
    }

    /// Search instrumentation.
    #[must_use]
    pub fn stats(&self) -> &ParetoStats {
        &self.stats
    }

    /// `true` when the hard constraints admit no assignment at all.
    #[must_use]
    pub fn is_infeasible(&self) -> bool {
        self.points.is_empty()
    }
}

/// Expected failover downtime of one evaluated point, minutes/month —
/// the shared coordinate every engine (and the broker's SLO scoring)
/// measures the failover budget against.
#[must_use]
pub fn failover_minutes(uptime: &UptimeBreakdown) -> f64 {
    uptime.failover_probability().value() * HOURS_PER_MONTH * 60.0
}

/// One achieved survivor: the compact facts the merge sorts, plus the
/// digits to rematerialize the winning assignments afterwards.
type Survivor = (f64, Probability, Vec<usize>);

/// The per-worker incumbent archive: achieved **feasible** points kept
/// as a staircase (cost strictly ascending, uptime strictly ascending).
/// Pruning queries and membership both run in `O(log n)`.
struct Archive {
    points: Vec<(f64, f64)>,
    margin: f64,
}

impl Archive {
    fn new(margin: f64) -> Self {
        Archive {
            points: Vec::new(),
            margin,
        }
    }

    /// Whether some achieved point epsilon-dominates a subtree whose
    /// best-case completions cost at least `cost_lb` and reach at most
    /// `up_ub`: strictly better than both bounds by more than `margin`.
    fn dominates_bound(&self, cost_lb: f64, up_ub: f64) -> bool {
        // Staircase order ⇒ the best challenger below the cost floor is
        // the most expensive one.
        let idx = self.points.partition_point(|p| p.0 < cost_lb - self.margin);
        idx > 0 && self.points[idx - 1].1 > up_ub + self.margin
    }

    /// Records an achieved feasible point. Returns whether it is a
    /// frontier candidate worth carrying to the merge: not strictly
    /// dominated by an existing point. An exact `(cost, uptime)` tie
    /// with a staircase point is still a candidate (the merge picks the
    /// lexicographically-smallest achiever of every value pair) but
    /// leaves the archive unchanged.
    fn insert(&mut self, cost: f64, uptime: f64) -> bool {
        let idx = self.points.partition_point(|p| p.0 <= cost);
        if idx > 0 && self.points[idx - 1].1 >= uptime {
            return self.points[idx - 1] == (cost, uptime);
        }
        // Drop points the newcomer dominates: the equal-cost run just
        // below (their uptime is lower — the check above passed) and any
        // pricier points that don't improve on it.
        let mut start = idx;
        while start > 0 && self.points[start - 1].0 == cost {
            start -= 1;
        }
        let mut end = idx;
        while end < self.points.len() && self.points[end].1 <= uptime {
            end += 1;
        }
        self.points.splice(start..end, [(cost, uptime)]);
        true
    }
}

/// Single-threaded frontier extraction over a serial space. Exact: the
/// points equal [`naive_frontier`]'s (same cost/uptime pairs), with the
/// lexicographically-smallest assignment representing each point.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{pareto_bnb, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = pareto_bnb::search(
///     &space,
///     &case_study::tco_model(),
///     &pareto_bnb::FrontierConstraints::NONE,
///     1e-9,
/// );
/// assert_eq!(outcome.points().first().unwrap().ha_cost().value(), 0.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
) -> FrontierOutcome {
    search_with_threads(space, model, constraints, epsilon, 1)
}

/// [`search`] across `threads` workers stealing prefix tasks; `0` means
/// the machine's available parallelism. The frontier is bit-identical
/// for every thread count.
#[must_use]
pub fn search_with_threads(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    threads: usize,
) -> FrontierOutcome {
    let threads = if threads == 0 {
        crate::parallel::default_threads()
    } else {
        threads
    };
    let fast = FastEvaluator::new(space, model);
    let terms = fast.terms();
    let n = terms.len();
    let bounds = SerialBounds::new(terms);
    let margin = epsilon.max(0.0) + BOUND_SLACK;

    // Seed every worker's archive with the two extreme achieved points
    // (cheapest-possible and most-available-possible assignments) so the
    // first tasks already prune — only if they are actually feasible.
    let mut seeds: Vec<(f64, f64)> = Vec::new();
    for seed in [
        terms
            .iter()
            .map(|comp| argmin_by(comp, |t| t.cost))
            .collect::<Vec<usize>>(),
        terms
            .iter()
            .map(|comp| argmin_by(comp, |t| -t.availability))
            .collect::<Vec<usize>>(),
    ] {
        let mut acc = Accum::IDENTITY;
        for (pos, &idx) in seed.iter().enumerate() {
            acc = acc.push(&terms[pos][idx]);
        }
        let (uptime, tco, key) = fast::finish(model, &acc);
        let (cost, up) = (tco.ha_cost().value(), key.availability.value());
        if constraints.admits(cost, up, failover_minutes(&uptime)) {
            seeds.push((cost, up));
        }
    }

    let target_tasks = threads.saturating_mul(TASKS_PER_THREAD).max(1);
    let mut split_depth = 0usize;
    let mut task_count = 1usize;
    while split_depth + 1 < n && task_count < target_tasks {
        task_count = task_count.saturating_mul(terms[split_depth].len());
        split_depth += 1;
    }

    let next_task = AtomicUsize::new(0);
    let run_worker = || -> (Vec<Survivor>, ParetoStats) {
        let mut archive = Archive::new(margin);
        for &(cost, up) in &seeds {
            archive.insert(cost, up);
        }
        let mut walker = SerialWalker {
            model,
            terms,
            bounds: &bounds,
            constraints,
            digits: vec![0usize; n],
            archive,
            found: Vec::new(),
            stats: ParetoStats::default(),
        };
        loop {
            let task = next_task.fetch_add(1, Ordering::Relaxed);
            if task >= task_count {
                break;
            }
            walker.stats.tasks += 1;
            let acc = walker.seed_prefix(task, split_depth);
            walker.enter(split_depth, acc);
        }
        (walker.found, walker.stats)
    };

    let per_worker: Vec<(Vec<Survivor>, ParetoStats)> = if threads == 1 {
        vec![run_worker()]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|_| run_worker()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pareto worker panicked"))
                .collect()
        })
        .expect("thread scope panicked")
    };

    let (survivors, mut stats) = merge_workers(per_worker, threads);
    let points = materialize(survivors, |digits| fast.evaluate(digits));
    stats.frontier_size = points.len() as u64;
    FrontierOutcome { points, stats }
}

/// [`search_with_threads`] with observability: the run wrapped in an
/// `optimizer.pareto.search` span, the tree-shape counters
/// (`optimizer.pareto.{nodes_visited,pruned,frontier_size}` and friends)
/// flushed once at the end, and a matching trace span hung under
/// `parent`. Pass [`uptime_obs::TraceSpan::disabled`] outside a traced
/// request.
#[must_use]
pub fn search_with_threads_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> FrontierOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.pareto.search");
    let outcome = search_with_threads(space, model, constraints, epsilon, threads);
    record_stats(outcome.stats(), rec, parent);
    outcome
}

/// Single-threaded frontier extraction over a composition space. On
/// pure-series spaces the points are bit-identical to [`search`]'s.
#[must_use]
pub fn composition_search(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
) -> FrontierOutcome {
    composition_search_with_threads(space, model, constraints, epsilon, 1)
}

/// [`composition_search`] across `threads` workers; `0` means the
/// machine's available parallelism. Thread-count-independent output.
#[must_use]
pub fn composition_search_with_threads(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    threads: usize,
) -> FrontierOutcome {
    let threads = if threads == 0 {
        crate::parallel::default_threads()
    } else {
        threads
    };
    let eval = CompositionEvaluator::new(space, model);
    let terms = eval.terms();
    let n = terms.len();
    let bounds = CompositionBounds::new(space, terms);
    let margin = epsilon.max(0.0) + BOUND_SLACK;

    let mut seeds: Vec<(f64, f64)> = Vec::new();
    for seed in [
        terms
            .iter()
            .map(|comp| argmin_by(comp, |t| t.cost))
            .collect::<Vec<usize>>(),
        terms
            .iter()
            .map(|comp| argmin_by(comp, |t| -t.availability))
            .collect::<Vec<usize>>(),
    ] {
        let mut states = vec![eval.base_state(); n + 1];
        for (pos, &idx) in seed.iter().enumerate() {
            eval.step_into(&mut states, pos, idx);
        }
        let (uptime, tco, key) = fast::finish(model, &states[n].combined());
        let (cost, up) = (tco.ha_cost().value(), key.availability.value());
        if constraints.admits(cost, up, failover_minutes(&uptime)) {
            seeds.push((cost, up));
        }
    }

    let target_tasks = threads.saturating_mul(TASKS_PER_THREAD).max(1);
    let mut split_depth = 0usize;
    let mut task_count = 1usize;
    while split_depth + 1 < n && task_count < target_tasks {
        task_count = task_count.saturating_mul(terms[split_depth].len());
        split_depth += 1;
    }

    let next_task = AtomicUsize::new(0);
    let run_worker = || -> (Vec<Survivor>, ParetoStats) {
        let mut archive = Archive::new(margin);
        for &(cost, up) in &seeds {
            archive.insert(cost, up);
        }
        let mut walker = CompositionWalker {
            model,
            eval: &eval,
            bounds: &bounds,
            constraints,
            digits: vec![0usize; n],
            states: vec![eval.base_state(); n + 1],
            archive,
            found: Vec::new(),
            stats: ParetoStats::default(),
        };
        loop {
            let task = next_task.fetch_add(1, Ordering::Relaxed);
            if task >= task_count {
                break;
            }
            walker.stats.tasks += 1;
            walker.seed_prefix(task, split_depth);
            walker.enter(split_depth);
        }
        (walker.found, walker.stats)
    };

    let per_worker: Vec<(Vec<Survivor>, ParetoStats)> = if threads == 1 {
        vec![run_worker()]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|_| run_worker()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pareto worker panicked"))
                .collect()
        })
        .expect("thread scope panicked")
    };

    let (survivors, mut stats) = merge_workers(per_worker, threads);
    let points = materialize(survivors, |digits| eval.evaluate(digits));
    stats.frontier_size = points.len() as u64;
    FrontierOutcome { points, stats }
}

/// [`composition_search_with_threads`] with the same observability as
/// [`search_with_threads_recorded`] (shared `optimizer.pareto.*` names —
/// the serve layer cares about frontier work, not the space topology).
#[must_use]
pub fn composition_search_with_threads_recorded(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> FrontierOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.pareto.search");
    let outcome = composition_search_with_threads(space, model, constraints, epsilon, threads);
    record_stats(outcome.stats(), rec, parent);
    outcome
}

fn record_stats(
    stats: &ParetoStats,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) {
    let mut trace_span = parent.child("optimizer.pareto.search");
    rec.gauge_set("optimizer.pareto.threads", stats.threads as f64);
    rec.counter_add("optimizer.pareto.tasks", stats.tasks);
    rec.counter_add("optimizer.pareto.nodes_visited", stats.nodes_visited);
    rec.counter_add("optimizer.pareto.leaves_evaluated", stats.leaves_evaluated);
    rec.counter_add("optimizer.pareto.pruned", stats.subtrees_pruned);
    rec.counter_add("optimizer.pareto.variants_skipped", stats.variants_skipped);
    rec.counter_add("optimizer.pareto.frontier_size", stats.frontier_size);
    trace_span.attr_u64("tasks", stats.tasks);
    trace_span.attr_u64("nodes_visited", stats.nodes_visited);
    trace_span.attr_u64("leaves_evaluated", stats.leaves_evaluated);
    trace_span.attr_u64("pruned", stats.subtrees_pruned);
    trace_span.attr_u64("variants_skipped", stats.variants_skipped);
    trace_span.attr_u64("frontier_size", stats.frontier_size);
}

/// Exhaustive frontier extraction over a serial space on the fast path:
/// every assignment is folded through the cached terms (no pruning, no
/// `Evaluation` materialization until the final merge), filtered by the
/// hard constraints, and dominance-filtered through the same archive and
/// merge as [`search`] — so the points, order, and representatives are
/// bit-identical to the branch-and-bound engines'. This is the
/// `--engine exhaustive` dispatch target; only `leaves_evaluated` in the
/// stats differs from [`search`]'s (every leaf is visited here).
#[must_use]
pub fn sweep(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
) -> FrontierOutcome {
    let fast = FastEvaluator::new(space, model);
    let mut archive = Archive::new(epsilon.max(0.0) + BOUND_SLACK);
    let mut found: Vec<Survivor> = Vec::new();
    let mut stats = ParetoStats {
        threads: 1,
        tasks: 1,
        ..ParetoStats::default()
    };
    let mut cursor = fast.cursor();
    loop {
        stats.leaves_evaluated += 1;
        let acc = cursor.accum();
        let (uptime, tco, key) = fast::finish(model, &acc);
        let (cost, up) = (tco.ha_cost().value(), key.availability.value());
        if constraints.admits(cost, up, failover_minutes(&uptime)) && archive.insert(cost, up) {
            found.push((cost, key.availability, cursor.assignment().to_vec()));
        }
        if !cursor.advance() {
            break;
        }
    }
    let points = materialize(found, |digits| fast.evaluate(digits));
    stats.frontier_size = points.len() as u64;
    FrontierOutcome { points, stats }
}

/// [`sweep`] over a composition space: the exhaustive dispatch target
/// for archetype topologies, bit-identical to
/// [`composition_search_with_threads`].
#[must_use]
pub fn composition_sweep(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
) -> FrontierOutcome {
    let eval = CompositionEvaluator::new(space, model);
    let mut archive = Archive::new(epsilon.max(0.0) + BOUND_SLACK);
    let mut found: Vec<Survivor> = Vec::new();
    let mut stats = ParetoStats {
        threads: 1,
        tasks: 1,
        ..ParetoStats::default()
    };
    let mut cursor = eval.cursor();
    loop {
        stats.leaves_evaluated += 1;
        let acc = cursor.accum();
        let (uptime, tco, key) = fast::finish(model, &acc);
        let (cost, up) = (tco.ha_cost().value(), key.availability.value());
        if constraints.admits(cost, up, failover_minutes(&uptime)) && archive.insert(cost, up) {
            found.push((cost, key.availability, cursor.assignment().to_vec()));
        }
        if !cursor.advance() {
            break;
        }
    }
    let points = materialize(found, |digits| eval.evaluate(digits));
    stats.frontier_size = points.len() as u64;
    FrontierOutcome { points, stats }
}

/// [`sweep`] with the same observability as
/// [`search_with_threads_recorded`] — the serve layer's counters don't
/// care which engine extracted the frontier.
#[must_use]
pub fn sweep_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> FrontierOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.pareto.search");
    let outcome = sweep(space, model, constraints, epsilon);
    record_stats(outcome.stats(), rec, parent);
    outcome
}

/// [`composition_sweep`] with recorded observability.
#[must_use]
pub fn composition_sweep_recorded(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
    epsilon: f64,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> FrontierOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.pareto.search");
    let outcome = composition_sweep(space, model, constraints, epsilon);
    record_stats(outcome.stats(), rec, parent);
    outcome
}

/// The naive reference over a serial space: materialize a full
/// [`Evaluation`] per assignment, filter to feasible points, apply the
/// O(N²) dominance definition, and pick the lexicographically-smallest
/// representative per `(cost, uptime)` pair. Slow by design — this is
/// the differential baseline the exact engines and the PR 9 bench gate
/// are measured against.
#[must_use]
pub fn naive_frontier(
    space: &SearchSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
) -> Vec<ParetoPoint> {
    let evals: Vec<Evaluation> = space
        .assignments()
        .map(|a| Evaluation::evaluate(space, model, &a))
        .filter(|e| {
            constraints.admits(
                e.tco().ha_cost().value(),
                e.uptime().availability().value(),
                failover_minutes(e.uptime()),
            )
        })
        .collect();
    naive_filter(evals)
}

/// [`naive_frontier`] over a composition space.
#[must_use]
pub fn naive_composition_frontier(
    space: &CompositionSpace,
    model: &TcoModel,
    constraints: &FrontierConstraints,
) -> Vec<ParetoPoint> {
    let eval = CompositionEvaluator::new(space, model);
    let evals: Vec<Evaluation> = space
        .assignments()
        .map(|a| eval.evaluate(&a))
        .filter(|e| {
            constraints.admits(
                e.tco().ha_cost().value(),
                e.uptime().availability().value(),
                failover_minutes(e.uptime()),
            )
        })
        .collect();
    naive_filter(evals)
}

fn naive_filter(evals: Vec<Evaluation>) -> Vec<ParetoPoint> {
    let mut kept: Vec<&Evaluation> = evals
        .iter()
        .filter(|e| {
            !evals.iter().any(|o| {
                (o.tco().ha_cost() <= e.tco().ha_cost()
                    && o.uptime().availability() > e.uptime().availability())
                    || (o.tco().ha_cost() < e.tco().ha_cost()
                        && o.uptime().availability() >= e.uptime().availability())
            })
        })
        .collect();
    kept.sort_by(|a, b| {
        a.tco()
            .ha_cost()
            .cmp(&b.tco().ha_cost())
            .then_with(|| b.uptime().availability().cmp(&a.uptime().availability()))
            .then_with(|| a.assignment().cmp(b.assignment()))
    });
    kept.dedup_by(|a, b| {
        a.tco().ha_cost() == b.tco().ha_cost()
            && a.uptime().availability() == b.uptime().availability()
    });
    kept.into_iter()
        .map(|e| ParetoPoint::from_evaluation(e.clone()))
        .collect()
}

fn argmin_by(comp: &[CandidateTerms], score: impl Fn(&CandidateTerms) -> f64) -> usize {
    let mut best = 0usize;
    for (idx, t) in comp.iter().enumerate().skip(1) {
        if score(t) < score(&comp[best]) {
            best = idx;
        }
    }
    best
}

/// Sums worker stats and pools their survivors for the final sweep.
fn merge_workers(
    per_worker: Vec<(Vec<Survivor>, ParetoStats)>,
    threads: usize,
) -> (Vec<Survivor>, ParetoStats) {
    let mut stats = ParetoStats {
        threads: threads as u64,
        ..ParetoStats::default()
    };
    let mut survivors: Vec<Survivor> = Vec::new();
    for (found, worker_stats) in per_worker {
        stats.tasks += worker_stats.tasks;
        stats.nodes_visited += worker_stats.nodes_visited;
        stats.leaves_evaluated += worker_stats.leaves_evaluated;
        stats.subtrees_pruned += worker_stats.subtrees_pruned;
        stats.variants_skipped += worker_stats.variants_skipped;
        survivors.extend(found);
    }
    (survivors, stats)
}

/// The deterministic final sweep: sort survivors by
/// `(cost ↑, uptime ↓, digits ↑)`, keep strict uptime improvements, and
/// materialize only the winners. Because the survivor pool always
/// contains every feasible-frontier achiever (pruning is conservative),
/// this reconstructs the exact frontier with lex-min representatives no
/// matter how the pool was produced.
fn materialize(
    mut survivors: Vec<Survivor>,
    evaluate: impl Fn(&[usize]) -> Evaluation,
) -> Vec<ParetoPoint> {
    survivors.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| b.1.cmp(&a.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    let mut points = Vec::new();
    let mut best_uptime: Option<Probability> = None;
    for (_, uptime, digits) in survivors {
        if best_uptime.is_none_or(|b| uptime > b) {
            best_uptime = Some(uptime);
            points.push(ParetoPoint::from_evaluation(evaluate(&digits)));
        }
    }
    points
}

/// One worker's depth-first frontier descent over a serial space.
struct SerialWalker<'a> {
    model: &'a TcoModel,
    terms: &'a [Vec<CandidateTerms>],
    bounds: &'a SerialBounds,
    constraints: &'a FrontierConstraints,
    digits: Vec<usize>,
    archive: Archive,
    found: Vec<Survivor>,
    stats: ParetoStats,
}

impl SerialWalker<'_> {
    /// Decodes a prefix task index (mixed radix, most significant first)
    /// into the digit stack and returns the prefix accumulators.
    fn seed_prefix(&mut self, task: usize, split_depth: usize) -> Accum {
        let mut rem = task;
        for pos in (0..split_depth).rev() {
            let radix = self.terms[pos].len();
            self.digits[pos] = rem % radix;
            rem /= radix;
        }
        debug_assert_eq!(rem, 0, "task index out of range");
        let mut acc = Accum::IDENTITY;
        for pos in 0..split_depth {
            acc = acc.push(&self.terms[pos][self.digits[pos]]);
        }
        acc
    }

    /// Whether the subtree at `depth` can be discarded: its cost floor
    /// breaks the cap, its availability ceiling misses the floor, or an
    /// achieved feasible point epsilon-dominates its ideal point.
    fn prunable(&self, depth: usize, acc: &Accum) -> bool {
        let cost_lb = acc.cost + self.bounds.suffix_min_cost[depth];
        let up_ub = Probability::saturating(acc.avail * self.bounds.suffix_max_avail[depth]);
        if let Some(cap) = self.constraints.max_cost {
            if cost_lb - BOUND_SLACK > cap {
                return true;
            }
        }
        if let Some(floor) = self.constraints.min_uptime {
            if up_ub.value() + BOUND_SLACK < floor {
                return true;
            }
        }
        self.archive.dominates_bound(cost_lb, up_ub.value())
    }

    fn enter(&mut self, depth: usize, acc: Accum) {
        if depth < self.digits.len() && self.prunable(depth, &acc) {
            self.stats.subtrees_pruned += 1;
            self.stats.variants_skipped += self.bounds.suffix_size[depth];
            return;
        }
        self.descend(depth, acc);
    }

    fn descend(&mut self, depth: usize, acc: Accum) {
        if depth == self.digits.len() {
            self.leaf(&acc);
            return;
        }
        self.stats.nodes_visited += 1;
        let last = depth + 1 == self.digits.len();
        for idx in 0..self.terms[depth].len() {
            self.digits[depth] = idx;
            let child = acc.push(&self.terms[depth][idx]);
            if last {
                self.leaf(&child);
                continue;
            }
            if self.prunable(depth + 1, &child) {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth + 1];
                continue;
            }
            self.descend(depth + 1, child);
        }
    }

    fn leaf(&mut self, acc: &Accum) {
        self.stats.leaves_evaluated += 1;
        let (uptime, tco, key) = fast::finish(self.model, acc);
        let cost = tco.ha_cost().value();
        let up = key.availability;
        if !self
            .constraints
            .admits(cost, up.value(), failover_minutes(&uptime))
        {
            return;
        }
        if self.archive.insert(cost, up.value()) {
            self.found.push((cost, up, self.digits.clone()));
        }
    }
}

/// One worker's depth-first frontier descent over a composition space.
struct CompositionWalker<'a> {
    model: &'a TcoModel,
    eval: &'a CompositionEvaluator<'a>,
    bounds: &'a CompositionBounds,
    constraints: &'a FrontierConstraints,
    digits: Vec<usize>,
    /// `states[d]` = fold state just before leaf `d`; `states[n]` = final.
    states: Vec<FoldState>,
    archive: Archive,
    found: Vec<Survivor>,
    stats: ParetoStats,
}

impl CompositionWalker<'_> {
    fn seed_prefix(&mut self, task: usize, split_depth: usize) {
        let terms = self.eval.terms();
        let mut rem = task;
        for pos in (0..split_depth).rev() {
            let radix = terms[pos].len();
            self.digits[pos] = rem % radix;
            rem /= radix;
        }
        debug_assert_eq!(rem, 0, "task index out of range");
        for pos in 0..split_depth {
            self.eval.step_into(&mut self.states, pos, self.digits[pos]);
        }
    }

    fn prunable(&self, depth: usize) -> bool {
        let state = &self.states[depth];
        let cost_lb = state.spine.cost + state.extra_cost + self.bounds.suffix_min_cost[depth];
        let avail_ub = state.spine.avail
            * state.mask
            * self.bounds.spine_suffix_max[depth]
            * self.bounds.par_suffix_max[depth];
        let up_ub = Probability::saturating(avail_ub);
        if let Some(cap) = self.constraints.max_cost {
            if cost_lb - BOUND_SLACK > cap {
                return true;
            }
        }
        if let Some(floor) = self.constraints.min_uptime {
            if up_ub.value() + BOUND_SLACK < floor {
                return true;
            }
        }
        self.archive.dominates_bound(cost_lb, up_ub.value())
    }

    fn enter(&mut self, depth: usize) {
        if depth < self.digits.len() && self.prunable(depth) {
            self.stats.subtrees_pruned += 1;
            self.stats.variants_skipped += self.bounds.suffix_size[depth];
            return;
        }
        self.descend(depth);
    }

    fn descend(&mut self, depth: usize) {
        if depth == self.digits.len() {
            self.leaf();
            return;
        }
        self.stats.nodes_visited += 1;
        let last = depth + 1 == self.digits.len();
        for idx in 0..self.eval.terms()[depth].len() {
            self.digits[depth] = idx;
            self.eval.step_into(&mut self.states, depth, idx);
            if last {
                self.leaf();
                continue;
            }
            if self.prunable(depth + 1) {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth + 1];
                continue;
            }
            self.descend(depth + 1);
        }
    }

    fn leaf(&mut self) {
        self.stats.leaves_evaluated += 1;
        let acc = self.states[self.digits.len()].combined();
        let (uptime, tco, key) = fast::finish(self.model, &acc);
        let cost = tco.ha_cost().value();
        let up = key.availability;
        if !self
            .constraints
            .admits(cost, up.value(), failover_minutes(&uptime))
        {
            return;
        }
        if self.archive.insert(cost, up.value()) {
            self.found.push((cost, up, self.digits.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto;
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    fn pairs(points: &[ParetoPoint]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|p| (p.ha_cost().value(), p.uptime().value()))
            .collect()
    }

    #[test]
    fn unconstrained_matches_streaming_frontier() {
        let space = paper_space();
        let model = case_study::tco_model();
        let swept = pareto::frontier(&space, &model);
        let bnb = search(&space, &model, &FrontierConstraints::NONE, 1e-9);
        assert_eq!(pairs(bnb.points()), pairs(&swept));
        assert_eq!(bnb.stats().frontier_size, swept.len() as u64);
    }

    #[test]
    fn matches_naive_reference_under_constraints() {
        let space = paper_space();
        let model = case_study::tco_model();
        let constraints = FrontierConstraints {
            max_cost: Some(2000.0),
            min_uptime: Some(0.93),
            max_failover_minutes: None,
        };
        let naive = naive_frontier(&space, &model, &constraints);
        let bnb = search(&space, &model, &constraints, 1e-9);
        assert_eq!(pairs(bnb.points()), pairs(&naive));
        // The cap and floor cut both frontier ends of the paper space.
        assert!(bnb.points().iter().all(|p| p.ha_cost().value() <= 2000.0));
        assert!(bnb.points().iter().all(|p| p.uptime().value() >= 0.93));
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let space = paper_space();
        let model = case_study::tco_model();
        let base = search_with_threads(&space, &model, &FrontierConstraints::NONE, 1e-9, 1);
        for threads in [2, 8] {
            let other =
                search_with_threads(&space, &model, &FrontierConstraints::NONE, 1e-9, threads);
            assert_eq!(base.points(), other.points(), "threads {threads} diverged");
        }
    }

    #[test]
    fn infeasible_constraints_return_empty() {
        let space = paper_space();
        let model = case_study::tco_model();
        let constraints = FrontierConstraints {
            max_cost: Some(10.0),
            min_uptime: Some(0.9999),
            max_failover_minutes: None,
        };
        let outcome = search(&space, &model, &constraints, 1e-9);
        assert!(outcome.is_infeasible());
        assert!(naive_frontier(&space, &model, &constraints).is_empty());
    }

    #[test]
    fn prunes_against_full_enumeration() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search(&space, &model, &FrontierConstraints::NONE, 1e-9);
        let total: u64 = outcome.stats().leaves_evaluated + outcome.stats().variants_skipped;
        assert_eq!(u128::from(total), space.assignment_count());
    }

    #[test]
    fn pure_series_composition_matches_serial() {
        let space = paper_space();
        let comp = CompositionSpace::from_serial(&space);
        let model = case_study::tco_model();
        let serial = search(&space, &model, &FrontierConstraints::NONE, 1e-9);
        let composed = composition_search(&comp, &model, &FrontierConstraints::NONE, 1e-9);
        assert_eq!(serial.points(), composed.points());
    }

    #[test]
    fn archive_staircase_semantics() {
        let mut a = Archive::new(1e-6);
        assert!(a.insert(100.0, 0.95));
        assert!(a.insert(200.0, 0.99));
        // Strictly dominated: same cost, lower uptime.
        assert!(!a.insert(100.0, 0.94));
        // An exact tie stays a candidate (merge tie-breaks on digits).
        assert!(a.insert(100.0, 0.95));
        // Dominates the 200/0.99 point: cheaper, same uptime.
        assert!(a.insert(150.0, 0.99));
        assert_eq!(a.points, vec![(100.0, 0.95), (150.0, 0.99)]);
        // Bound pruning needs strict domination beyond the margin.
        assert!(a.dominates_bound(200.0, 0.98));
        assert!(!a.dominates_bound(150.0, 0.98));
        assert!(!a.dominates_bound(200.0, 0.99));
    }
}
