//! Deployment-archetype scenario generator: the six shapes of the
//! Deployment Archetypes survey (Berenberg & Calder, see PAPERS.md) as
//! ready-made [`CompositionSpace`]s over a broker catalog.
//!
//! Each archetype composes the paper's three serial tiers (compute,
//! storage, network gateway) into the survey's topology: a single zone, a
//! few zones behind one gateway, a full region, or multiple regions behind
//! global routing. Zone- and region-scoped *shared failure domains* —
//! power, cooling, control plane, the regional network — are modeled as
//! single-candidate pseudo-leaves (singleton clusters with zero failover
//! time and zero cost), so the analytic fold charges each replica chain for
//! the infrastructure it cannot buy its way out of. The same domains drive
//! the correlated Monte-Carlo cross-validation in `uptime-sim`.
//!
//! The broker routes requests here via the request `topology` field and
//! `brokerctl recommend --archetype <name>`.

use std::fmt;
use std::str::FromStr;

use uptime_catalog::{CatalogStore, CloudId, ComponentKind};
use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};

use crate::composition::{CompositionNode, CompositionSpace};
use crate::space::{Candidate, ComponentChoices, SearchSpace, SpaceError};

/// Down-probability of a zone-scoped shared failure domain (power,
/// cooling, top-of-rack fabric): ~99.99% available — the survey's "a zone
/// fails as a unit a few minutes a month" regime.
const ZONE_DOMAIN_DOWN: f64 = 1e-4;

/// Down-probability of a region-scoped shared failure domain (regional
/// network, control plane): ~99.998% available.
const REGION_DOMAIN_DOWN: f64 = 2e-5;

/// Down-probability of the global routing layer (anycast/DNS steering)
/// that fronts multi-region deployments: ~99.9995% available.
const GLOBAL_ROUTING_DOWN: f64 = 5e-6;

/// The six deployment archetypes of the survey, ordered from a single
/// zone to a globally distributed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// One zone, the paper's serial chain — no cross-stack redundancy.
    Zonal,
    /// Two zones behind one gateway; compute + storage replicated per
    /// zone, each zone dragged down by its own shared domain.
    MultiZonal,
    /// Three zones behind one gateway — a full region.
    Regional,
    /// Two regions behind a shared gateway tier; each region a full
    /// chain gated by its regional domain.
    MultiRegionActivePassive,
    /// Two self-contained regions (own gateway each) behind global
    /// anycast routing.
    MultiRegionActiveActive,
    /// Three self-contained regions behind global routing.
    Global,
}

impl Archetype {
    /// All archetypes, in survey order.
    #[must_use]
    pub fn all() -> &'static [Archetype] {
        &[
            Archetype::Zonal,
            Archetype::MultiZonal,
            Archetype::Regional,
            Archetype::MultiRegionActivePassive,
            Archetype::MultiRegionActiveActive,
            Archetype::Global,
        ]
    }

    /// Stable kebab-case identifier — the CLI/request `topology` value.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Archetype::Zonal => "zonal",
            Archetype::MultiZonal => "multi-zonal",
            Archetype::Regional => "regional",
            Archetype::MultiRegionActivePassive => "multi-region-active-passive",
            Archetype::MultiRegionActiveActive => "multi-region-active-active",
            Archetype::Global => "global",
        }
    }

    /// One-line human description for CLI listings.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Archetype::Zonal => "single zone, serial chain (the paper's Fig. 1)",
            Archetype::MultiZonal => "2 zones behind one gateway, per-zone replicas",
            Archetype::Regional => "3 zones behind one gateway (full region)",
            Archetype::MultiRegionActivePassive => {
                "2 regions behind a shared gateway tier, regional failover"
            }
            Archetype::MultiRegionActiveActive => "2 self-contained regions behind global routing",
            Archetype::Global => "3 self-contained regions behind global routing",
        }
    }

    /// Builds the archetype's composition search space from a broker
    /// catalog: every applicable HA method per tier, replicated into the
    /// archetype topology with shared-domain pseudo-leaves.
    ///
    /// # Errors
    ///
    /// Propagates catalog lookup failures ([`SpaceError::Catalog`]) and
    /// empty choice sets ([`SpaceError::EmptyComponent`]).
    pub fn space(
        self,
        catalog: &CatalogStore,
        cloud: &CloudId,
    ) -> Result<CompositionSpace, SpaceError> {
        let [compute, storage, network] = ComponentKind::paper_tiers();
        let tier = |kind: ComponentKind, prefix: &str| -> Result<CompositionNode, SpaceError> {
            Ok(CompositionNode::Component(tier_choices(
                catalog, cloud, kind, prefix,
            )?))
        };
        let zone_chain = |tag: &str| -> Result<CompositionNode, SpaceError> {
            Ok(CompositionNode::Series(vec![
                tier(compute, tag)?,
                tier(storage, tag)?,
                domain_leaf(&format!("{tag}-zone-domain"), ZONE_DOMAIN_DOWN),
            ]))
        };
        let region_chain = |tag: &str, own_gateway: bool| -> Result<CompositionNode, SpaceError> {
            let mut chain = Vec::new();
            if own_gateway {
                chain.push(tier(network, tag)?);
            }
            chain.push(tier(compute, tag)?);
            chain.push(tier(storage, tag)?);
            chain.push(domain_leaf(
                &format!("{tag}-region-domain"),
                REGION_DOMAIN_DOWN,
            ));
            Ok(CompositionNode::Series(chain))
        };
        let root = match self {
            Archetype::Zonal => {
                let serial =
                    SearchSpace::from_catalog(catalog, cloud, &[compute, storage, network])?;
                return Ok(CompositionSpace::from_serial(&serial));
            }
            Archetype::MultiZonal => CompositionNode::Series(vec![
                tier(network, "shared")?,
                CompositionNode::Parallel(vec![zone_chain("z1")?, zone_chain("z2")?]),
            ]),
            Archetype::Regional => CompositionNode::Series(vec![
                tier(network, "shared")?,
                CompositionNode::Parallel(vec![
                    zone_chain("z1")?,
                    zone_chain("z2")?,
                    zone_chain("z3")?,
                ]),
            ]),
            Archetype::MultiRegionActivePassive => CompositionNode::Series(vec![
                tier(network, "global")?,
                CompositionNode::Parallel(vec![
                    region_chain("r1", false)?,
                    region_chain("r2", false)?,
                ]),
            ]),
            Archetype::MultiRegionActiveActive => CompositionNode::Series(vec![
                domain_leaf("global-routing", GLOBAL_ROUTING_DOWN),
                CompositionNode::Parallel(vec![
                    region_chain("r1", true)?,
                    region_chain("r2", true)?,
                ]),
            ]),
            Archetype::Global => CompositionNode::Series(vec![
                domain_leaf("global-routing", GLOBAL_ROUTING_DOWN),
                CompositionNode::Parallel(vec![
                    region_chain("r1", true)?,
                    region_chain("r2", true)?,
                    region_chain("r3", true)?,
                ]),
            ]),
        };
        CompositionSpace::new(root)
    }
}

impl fmt::Display for Archetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an archetype name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownArchetype {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for UnknownArchetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown archetype `{}` (expected one of: {})",
            self.input,
            Archetype::all()
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownArchetype {}

impl FromStr for Archetype {
    type Err = UnknownArchetype;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.trim().to_ascii_lowercase().replace('_', "-");
        Archetype::all()
            .iter()
            .copied()
            .find(|a| a.name() == canon)
            .ok_or_else(|| UnknownArchetype {
                input: s.to_string(),
            })
    }
}

/// One tier's catalog choice set, named `<prefix>-<tier>` so replicated
/// sites stay distinguishable in reports.
fn tier_choices(
    catalog: &CatalogStore,
    cloud: &CloudId,
    kind: ComponentKind,
    prefix: &str,
) -> Result<ComponentChoices, SpaceError> {
    let methods = catalog.methods_for(kind);
    let mut candidates = Vec::with_capacity(methods.len());
    for method in methods {
        let cluster = catalog.cluster_spec(cloud, kind, method.id())?;
        let cost = catalog.quote(cloud, method.id())?.total();
        candidates.push(Candidate::new(
            method.display_name(),
            cluster,
            cost,
            method.is_none(),
        ));
    }
    ComponentChoices::new(format!("{prefix}-{}", kind.label()), candidates)
}

/// A shared failure domain as a degenerate leaf: one free candidate whose
/// singleton cluster (zero failover time, so no blip term) is down with
/// probability `down`. Marked baseline so it never counts toward HA
/// cardinality.
fn domain_leaf(name: &str, down: f64) -> CompositionNode {
    let cluster = ClusterSpec::singleton(name, Probability::new(down).expect("valid domain"), 1.0)
        .expect("singleton domains are always valid");
    let choices = ComponentChoices::new(
        name,
        vec![Candidate::new(
            name,
            cluster,
            MoneyPerMonth::new(0.0).expect("zero cost"),
            true,
        )],
    )
    .expect("single candidate is non-empty");
    CompositionNode::Component(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::case_study;

    #[test]
    fn names_round_trip() {
        for &a in Archetype::all() {
            assert_eq!(a.name().parse::<Archetype>().unwrap(), a);
            assert_eq!(a.to_string(), a.name());
        }
        assert_eq!(
            "Multi_Zonal".parse::<Archetype>().unwrap(),
            Archetype::MultiZonal
        );
        let err = "orbital".parse::<Archetype>().unwrap_err();
        assert!(err.to_string().contains("orbital"));
        assert!(err.to_string().contains("zonal"));
    }

    #[test]
    fn zonal_is_the_paper_space() {
        let space = Archetype::Zonal
            .space(&case_study::catalog(), &case_study::cloud_id())
            .unwrap();
        assert!(space.is_pure_series());
        assert_eq!(space.leaf_count(), 3);
        assert_eq!(space.assignment_count(), 8);
    }

    #[test]
    fn shapes_have_expected_leaf_counts() {
        let catalog = case_study::catalog();
        let cloud = case_study::cloud_id();
        let expect = [
            (Archetype::Zonal, 3, 8u128),
            (Archetype::MultiZonal, 7, 32),
            (Archetype::Regional, 10, 128),
            (Archetype::MultiRegionActivePassive, 7, 32),
            (Archetype::MultiRegionActiveActive, 9, 64),
            (Archetype::Global, 13, 512),
        ];
        for (arch, leaves, count) in expect {
            let space = arch.space(&catalog, &cloud).unwrap();
            assert_eq!(space.leaf_count(), leaves, "{arch}");
            assert_eq!(space.assignment_count(), count, "{arch}");
            assert_eq!(space.is_pure_series(), arch == Archetype::Zonal, "{arch}");
        }
    }

    #[test]
    fn redundant_archetypes_beat_zonal_availability() {
        let catalog = case_study::catalog();
        let cloud = case_study::cloud_id();
        let model = case_study::tco_model();
        let zonal = crate::composition::search(
            &Archetype::Zonal.space(&catalog, &cloud).unwrap(),
            &model,
            crate::Objective::MinTco,
        );
        let regional = crate::composition::search(
            &Archetype::Regional.space(&catalog, &cloud).unwrap(),
            &model,
            crate::Objective::MinTco,
        );
        // A region of three zones can mask zone-chain failures the serial
        // chain eats in full; its optimum should never be *less* available.
        assert!(
            regional.best().unwrap().uptime().availability().value()
                >= zonal.best().unwrap().uptime().availability().value()
        );
    }

    #[test]
    fn unknown_cloud_propagates() {
        let err = Archetype::Regional
            .space(&case_study::catalog(), &CloudId::new("ghost"))
            .unwrap_err();
        assert!(matches!(err, SpaceError::Catalog(_)));
    }
}
