//! Factorized incremental evaluation — the hot path behind every exact
//! search.
//!
//! The paper waves the `O(k^n)` enumeration away because "`n` in practice
//! is usually low", but metacloud spaces (clouds × methods per tier, §V)
//! multiply `k` far past the case study's 2³. The naive
//! [`Evaluation::evaluate`] rebuilds the world per variant: it clones every
//! chosen [`uptime_core::ClusterSpec`], constructs a
//! [`uptime_core::SystemSpec`], and re-derives each cluster's binomial
//! survival sum from scratch — `O(n·K)` allocations and special-function
//! work per assignment.
//!
//! Eqs. 2–3 factor per cluster, so none of that is necessary:
//!
//! * Eq. 2: `B_s = 1 − Π_i a_i` where
//!   `a_i = Σ_{j=K−K̂}^{K} C(K,j)(1−P)^j P^{K−j}` depends only on the
//!   candidate chosen for component `i`.
//! * Eq. 3: `F_s = Σ_i φ_i Π_{j≠i} x_j` where `φ_i = f·t·(K−K̂)/δ` and
//!   `x_j = (1−P)^{K−K̂}` are likewise per-candidate constants.
//!
//! [`FastEvaluator`] caches `(a, φ, x, C_HA, baseline)` once per candidate
//! at construction. A [`FastCursor`] then walks assignments in odometer
//! (lexicographic) order maintaining per-position prefix accumulators
//!
//! ```text
//! V_p = Π_{i<p} a_i        (Eq. 2 running product)
//! X_p = Π_{i<p} x_i        (Eq. 3 survival prefix)
//! S_p = Σ_{i<p} φ_i Π_{j<p, j≠i} x_j   via S_{p+1} = S_p·x_p + φ_p·X_p
//! C_p = Σ_{i<p} C_HA,i     κ_p = #non-baseline choices among i<p
//! ```
//!
//! so each odometer step only refreshes the accumulators right of the
//! carry position — `O(k/(k−1)) = O(1)` amortized floating-point work per
//! variant, with **no heap allocation in the loop**. The final `B_s`,
//! `F_s`, `U_s` and TCO fall out of `V_n`, `S_n`, `C_n` exactly as the
//! naive path computes them (same fold order, bit-identical `B_s` and
//! `C_HA`; `F_s` differs only in floating-point association, ≤1e-15).
//!
//! [`search`] streams a whole space through one cursor keeping only the
//! running argmin; `crate::parallel` shards the flat index range and seeds
//! one cursor per worker via [`FastEvaluator::cursor_at`].

use uptime_core::{MoneyPerMonth, Probability, TcoBreakdown, TcoModel, UptimeBreakdown};

use crate::evaluate::Evaluation;
use crate::objective::{Objective, RankKey};
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// The cached per-candidate factors of Eqs. 2–3 and Eq. 5.
///
/// Crate-visible so `crate::branch_bound` can drive its descent off the
/// same cached scalars instead of re-deriving them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandidateTerms {
    /// `a_i`: binomial survival `Σ_j C(K,j)(1−P)^j P^{K−j}` (Eq. 2 factor).
    pub(crate) availability: f64,
    /// `φ_i = f·t·(K−K̂)/δ`: failover year fraction (Eq. 3 numerator).
    pub(crate) failover_fraction: f64,
    /// `x_i = (1−P)^{K−K̂}`: all-active-up survival (Eq. 3 factor).
    pub(crate) active_up: f64,
    /// Monthly `C_HA` contribution (Eq. 5 term).
    pub(crate) cost: f64,
    /// Whether this is the component's "no HA" baseline.
    pub(crate) baseline: bool,
}

/// Running accumulators after consuming a prefix of the assignment.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Accum {
    /// `V_p = Π a_i` over the prefix.
    pub(crate) avail: f64,
    /// `X_p = Π x_i` over the prefix.
    pub(crate) active: f64,
    /// `S_p = Σ φ_i Π_{j≠i} x_j` over the prefix.
    pub(crate) failover: f64,
    /// `C_p = Σ C_HA,i` over the prefix.
    pub(crate) cost: f64,
    /// `κ_p`: non-baseline choices in the prefix.
    pub(crate) cardinality: usize,
}

impl Accum {
    pub(crate) const IDENTITY: Accum = Accum {
        avail: 1.0,
        active: 1.0,
        failover: 0.0,
        cost: 0.0,
        cardinality: 0,
    };

    /// Extends the prefix by one chosen candidate. This is the *only*
    /// place the recurrences live, so the slice evaluator, the cursor, and
    /// every shard combine terms in bit-identical order.
    #[inline]
    pub(crate) fn push(self, t: &CandidateTerms) -> Accum {
        Accum {
            avail: self.avail * t.availability,
            active: self.active * t.active_up,
            // Old-prefix `active` on purpose: φ_p multiplies the survival
            // of the *other* clusters seen so far.
            failover: self.failover * t.active_up + t.failover_fraction * self.active,
            cost: self.cost + t.cost,
            cardinality: self.cardinality + usize::from(!t.baseline),
        }
    }
}

/// A search space with every candidate's Eq. 2/3/5 factors precomputed.
///
/// Construction is `O(Σ k_i · K)` (one binomial sum per candidate); every
/// evaluation afterwards combines cached scalars.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{Evaluation, FastEvaluator, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let model = case_study::tco_model();
/// let fast = FastEvaluator::new(&space, &model);
/// let naive = Evaluation::evaluate(&space, &model, &[0, 1, 0]);
/// let quick = fast.evaluate(&[0, 1, 0]);
/// assert_eq!(quick.tco().total(), naive.tco().total());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FastEvaluator<'a> {
    space: &'a SearchSpace,
    model: &'a TcoModel,
    terms: Vec<Vec<CandidateTerms>>,
}

impl<'a> FastEvaluator<'a> {
    /// Precomputes every candidate's per-cluster terms.
    #[must_use]
    pub fn new(space: &'a SearchSpace, model: &'a TcoModel) -> Self {
        let terms = space
            .components()
            .iter()
            .map(|comp| {
                comp.candidates()
                    .iter()
                    .map(|cand| {
                        let cluster = cand.cluster();
                        CandidateTerms {
                            availability: cluster.availability().value(),
                            failover_fraction: cluster.failover_year_fraction(),
                            active_up: cluster.all_active_up_probability().value(),
                            cost: cand.monthly_cost().value(),
                            baseline: cand.is_baseline(),
                        }
                    })
                    .collect()
            })
            .collect();
        FastEvaluator {
            space,
            model,
            terms,
        }
    }

    /// The space this evaluator was built for.
    #[must_use]
    pub fn space(&self) -> &'a SearchSpace {
        self.space
    }

    /// The TCO model evaluations run under.
    #[must_use]
    pub fn model(&self) -> &'a TcoModel {
        self.model
    }

    /// The cached per-component candidate terms, in component order — the
    /// raw material `crate::branch_bound` bounds and descends over.
    pub(crate) fn terms(&self) -> &[Vec<CandidateTerms>] {
        &self.terms
    }

    /// Evaluates one assignment from cached terms — semantically identical
    /// to [`Evaluation::evaluate`] but with no cluster clones and no
    /// `SystemSpec` construction.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per
    /// component.
    #[must_use]
    pub fn evaluate(&self, assignment: &[usize]) -> Evaluation {
        let (uptime, tco) = self.measure(assignment);
        Evaluation::from_parts(
            assignment.to_vec(),
            self.fold(assignment).cardinality,
            uptime,
            tco,
        )
    }

    /// The ranking facts for one assignment, without materializing an
    /// [`Evaluation`].
    #[must_use]
    pub fn rank_key(&self, assignment: &[usize]) -> RankKey {
        let acc = self.fold(assignment);
        finish(self.model, &acc).2
    }

    fn fold(&self, assignment: &[usize]) -> Accum {
        assert_eq!(
            assignment.len(),
            self.terms.len(),
            "assignment arity must match component count"
        );
        let mut acc = Accum::IDENTITY;
        for (&idx, comp_terms) in assignment.iter().zip(&self.terms) {
            acc = acc.push(&comp_terms[idx]);
        }
        acc
    }

    fn measure(&self, assignment: &[usize]) -> (UptimeBreakdown, TcoBreakdown) {
        let acc = self.fold(assignment);
        let (uptime, tco, _) = finish(self.model, &acc);
        (uptime, tco)
    }

    /// A cursor positioned at the all-zeros assignment.
    ///
    /// # Panics
    ///
    /// Never: every space has at least one assignment.
    #[must_use]
    pub fn cursor(&self) -> FastCursor<'_, 'a> {
        self.cursor_at(0)
    }

    /// A cursor positioned at the given flat (mixed-radix, lexicographic)
    /// index — how parallel shards derive their starting odometer state
    /// without materializing any assignment list.
    ///
    /// # Panics
    ///
    /// Panics if `flat_index >= space.assignment_count()`.
    #[must_use]
    pub fn cursor_at(&self, flat_index: u128) -> FastCursor<'_, 'a> {
        let n = self.terms.len();
        let mut digits = vec![0usize; n];
        let mut rem = flat_index;
        // Decode most-significant (component 0) first.
        for pos in (0..n).rev() {
            let radix = self.terms[pos].len() as u128;
            digits[pos] = (rem % radix) as usize;
            rem /= radix;
        }
        assert_eq!(rem, 0, "flat index out of range for this space");
        let mut cursor = FastCursor {
            eval: self,
            digits,
            prefix: vec![Accum::IDENTITY; n + 1],
            done: false,
        };
        cursor.refresh_from(0);
        cursor
    }
}

/// Turns final accumulators into the same artifacts the naive path builds.
pub(crate) fn finish(model: &TcoModel, acc: &Accum) -> (UptimeBreakdown, TcoBreakdown, RankKey) {
    let breakdown = Probability::saturating(1.0 - acc.avail);
    let failover = Probability::saturating(acc.failover);
    let uptime = UptimeBreakdown::from_components(breakdown, failover);
    let ha_cost =
        MoneyPerMonth::new(acc.cost).expect("candidate costs are finite and non-negative");
    let tco = model.evaluate(ha_cost, uptime.availability());
    let key = RankKey {
        total: tco.total(),
        expects_penalty: tco.expects_penalty(),
        cardinality: acc.cardinality,
        availability: uptime.availability(),
    };
    (uptime, tco, key)
}

/// An odometer over a space's assignments with incrementally-maintained
/// prefix accumulators. Advancing and measuring allocate nothing.
#[derive(Debug)]
pub struct FastCursor<'e, 'a> {
    eval: &'e FastEvaluator<'a>,
    digits: Vec<usize>,
    /// `prefix[p]` holds the accumulators over digits `0..p`; `prefix[n]`
    /// is the full assignment's state.
    prefix: Vec<Accum>,
    done: bool,
}

impl FastCursor<'_, '_> {
    /// The current assignment, one candidate index per component.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.digits
    }

    /// Recomputes `prefix[p+1..]` after digits `p..` changed.
    fn refresh_from(&mut self, p: usize) {
        for i in p..self.digits.len() {
            self.prefix[i + 1] = self.prefix[i].push(&self.eval.terms[i][self.digits[i]]);
        }
    }

    /// Steps to the lexicographic successor. Returns `false` once the last
    /// assignment has been consumed; the cursor then stays exhausted.
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        let mut pos = self.digits.len();
        loop {
            if pos == 0 {
                self.done = true;
                return false;
            }
            pos -= 1;
            self.digits[pos] += 1;
            if self.digits[pos] < self.eval.terms[pos].len() {
                break;
            }
            self.digits[pos] = 0;
        }
        // Only the suffix right of the carry position changed.
        self.refresh_from(pos);
        true
    }

    /// The current assignment's folded accumulators, for in-crate sweeps
    /// (the Pareto frontier) that need facts `RankKey` doesn't carry.
    pub(crate) fn accum(&self) -> Accum {
        self.prefix[self.digits.len()]
    }

    /// The ranking facts for the current assignment. Allocation-free.
    #[must_use]
    pub fn rank_key(&self) -> RankKey {
        let acc = self.prefix[self.digits.len()];
        finish(self.eval.model, &acc).2
    }

    /// Materializes the current assignment as a full [`Evaluation`]
    /// (allocates the assignment vector; used by the materializing search
    /// paths that must report every option).
    #[must_use]
    pub fn evaluation(&self) -> Evaluation {
        let acc = self.prefix[self.digits.len()];
        let (uptime, tco, _) = finish(self.eval.model, &acc);
        Evaluation::from_parts(self.digits.clone(), acc.cardinality, uptime, tco)
    }
}

/// Streams every assignment through one incremental cursor, keeping only
/// the running optimum — the `O(1)`-amortized-per-variant exact search.
///
/// The returned outcome's `evaluations()` holds just the winner (streaming
/// cannot afford to materialize `k^n` reports); `stats().evaluated` still
/// counts the full space. Visit order is lexicographic, so ties resolve
/// exactly as [`crate::exhaustive::search`] resolves them.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{fast, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = fast::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// assert_eq!(outcome.stats().evaluated, 8);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_core(space, model, objective)
}

/// [`search`] with observability: wraps the identical streaming loop in an
/// `optimizer.fast.search` span and flushes per-run counters
/// (`optimizer.fast.variants`, `optimizer.fast.cursor_advances`) once the
/// loop finishes. The hot loop itself never touches the recorder, so a
/// no-op recorder costs two dynamic calls per *search*, not per variant —
/// the <5 % overhead budget asserted by `crates/bench/tests/obs_overhead.rs`.
/// `parent` hangs a per-request `optimizer.fast.search` trace span (with
/// the same counters as attributes) under the caller's trace; pass
/// [`uptime_obs::TraceSpan::disabled`] outside a traced request.
#[must_use]
pub fn search_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.fast.search");
    let mut trace_span = parent.child("optimizer.fast.search");
    let outcome = search_core(space, model, objective);
    rec.counter_add("optimizer.fast.variants", outcome.stats().evaluated);
    rec.counter_add(
        "optimizer.fast.cursor_advances",
        outcome.stats().evaluated.saturating_sub(1),
    );
    trace_span.attr_u64("variants", outcome.stats().evaluated);
    outcome
}

/// The streaming argmin loop shared by [`search`] and [`search_recorded`].
fn search_core(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let fast = FastEvaluator::new(space, model);
    let mut cursor = fast.cursor();
    let mut best_key: Option<RankKey> = None;
    let mut best_digits: Vec<usize> = Vec::with_capacity(space.len());
    let mut evaluated: u64 = 0;
    loop {
        evaluated = evaluated.saturating_add(1);
        let key = cursor.rank_key();
        let improved = match &best_key {
            None => true,
            Some(b) => objective.better_key(&key, b),
        };
        if improved {
            best_key = Some(key);
            best_digits.clear();
            best_digits.extend_from_slice(cursor.assignment());
        }
        if !cursor.advance() {
            break;
        }
    }
    let best = fast.evaluate(&best_digits);
    SearchOutcome::from_evaluations(
        objective,
        vec![best],
        SearchStats {
            evaluated,
            skipped: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn fast_matches_naive_on_every_paper_assignment() {
        let space = paper_space();
        let model = case_study::tco_model();
        let fast = FastEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let naive = Evaluation::evaluate(&space, &model, &assignment);
            let quick = fast.evaluate(&assignment);
            assert_eq!(quick.assignment(), naive.assignment());
            assert_eq!(quick.cardinality(), naive.cardinality());
            assert_eq!(quick.tco().total(), naive.tco().total(), "{assignment:?}");
            assert!(
                (quick.uptime().availability().value() - naive.uptime().availability().value())
                    .abs()
                    < 1e-14,
                "{assignment:?}"
            );
        }
    }

    #[test]
    fn cursor_walks_lexicographically() {
        let space = paper_space();
        let model = case_study::tco_model();
        let fast = FastEvaluator::new(&space, &model);
        let mut cursor = fast.cursor();
        let mut visited = vec![cursor.assignment().to_vec()];
        while cursor.advance() {
            visited.push(cursor.assignment().to_vec());
        }
        let expected: Vec<_> = space.assignments().collect();
        assert_eq!(visited, expected);
        // Exhausted cursors stay exhausted.
        assert!(!cursor.advance());
    }

    #[test]
    fn cursor_at_matches_incremental_walk() {
        let catalog = extended::hybrid_catalog();
        let space = SearchSpace::from_catalog(
            &catalog,
            &extended::nimbus_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let fast = FastEvaluator::new(&space, &model);
        let mut cursor = fast.cursor();
        let mut index = 0u128;
        loop {
            let seeded = fast.cursor_at(index);
            assert_eq!(seeded.assignment(), cursor.assignment());
            // Bit-identical accumulators regardless of how the state was
            // reached (incremental vs from-scratch).
            assert_eq!(seeded.evaluation(), cursor.evaluation());
            index += 1;
            if !cursor.advance() {
                break;
            }
        }
        assert_eq!(index, space.assignment_count());
    }

    #[test]
    #[should_panic(expected = "flat index out of range")]
    fn cursor_at_rejects_out_of_range() {
        let space = paper_space();
        let model = case_study::tco_model();
        let fast = FastEvaluator::new(&space, &model);
        let _ = fast.cursor_at(space.assignment_count());
    }

    #[test]
    fn streaming_search_finds_paper_optimum() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search(&space, &model, Objective::MinTco);
        assert_eq!(outcome.best().unwrap().assignment(), &[0, 1, 0]);
        assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
        assert_eq!(outcome.stats().evaluated, 8);
        assert_eq!(
            outcome.evaluations().len(),
            1,
            "streaming keeps the winner only"
        );
    }

    #[test]
    fn streaming_search_matches_min_penalty_risk() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search(&space, &model, Objective::MinPenaltyRisk);
        assert_eq!(outcome.best().unwrap().tco().total().value(), 1350.0);
    }

    #[test]
    fn recorded_search_is_bit_identical_and_counts() {
        let space = paper_space();
        let model = case_study::tco_model();
        let registry = uptime_obs::MetricsRegistry::new();
        let plain = search(&space, &model, Objective::MinTco);
        let recorded = search_recorded(
            &space,
            &model,
            Objective::MinTco,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(plain, recorded, "instrumentation must not change results");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("optimizer.fast.variants"), Some(8));
        assert_eq!(snap.counter("optimizer.fast.cursor_advances"), Some(7));
        assert_eq!(snap.counter("optimizer.fast.search.calls"), Some(1));
        assert_eq!(snap.histogram("optimizer.fast.search.ns").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "assignment arity")]
    fn wrong_arity_panics() {
        let space = paper_space();
        let model = case_study::tco_model();
        let fast = FastEvaluator::new(&space, &model);
        let _ = fast.evaluate(&[0, 0]);
    }
}
