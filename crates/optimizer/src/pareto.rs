//! Cost/uptime Pareto analysis.
//!
//! Beyond the single `OptCh` recommendation, a broker can present the
//! client with the *frontier* of deployments where spending more strictly
//! buys more uptime — useful when the SLA itself is negotiable.
//!
//! The sweep runs on the factorized [`crate::fast`] engine: one cursor
//! pass collects `(HA cost, uptime)` facts from the cached per-candidate
//! terms (no per-assignment system rebuild, no `Evaluation` allocation),
//! and only the surviving frontier points are materialized. Equivalence
//! with the naive dominance-filter definition is pinned by
//! `frontier_matches_naive_dominance_filter` below.

use serde::{Deserialize, Serialize};
use uptime_core::{MoneyPerMonth, Probability, TcoModel};

use crate::evaluate::Evaluation;
use crate::fast::FastEvaluator;
use crate::space::SearchSpace;

/// One point on the cost/uptime frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    evaluation: Evaluation,
}

impl ParetoPoint {
    /// Wraps an evaluation the frontier engines already vetted.
    pub(crate) fn from_evaluation(evaluation: Evaluation) -> Self {
        ParetoPoint { evaluation }
    }

    /// The underlying evaluation.
    #[must_use]
    pub fn evaluation(&self) -> &Evaluation {
        &self.evaluation
    }

    /// Monthly HA cost of this point.
    #[must_use]
    pub fn ha_cost(&self) -> uptime_core::MoneyPerMonth {
        self.evaluation.tco().ha_cost()
    }

    /// Modeled uptime of this point.
    #[must_use]
    pub fn uptime(&self) -> uptime_core::Probability {
        self.evaluation.uptime().availability()
    }

    /// Expected failover downtime of this point, minutes/month — the
    /// coordinate SLO failover budgets are measured against.
    #[must_use]
    pub fn failover_minutes_per_month(&self) -> f64 {
        crate::pareto_bnb::failover_minutes(self.evaluation.uptime())
    }
}

/// Computes the Pareto frontier over HA cost (minimize) and uptime
/// (maximize), sorted by ascending cost.
///
/// A point is kept when no other point has both lower-or-equal cost and
/// strictly higher uptime, or strictly lower cost and equal-or-higher
/// uptime.
///
/// # Invariant
///
/// The result is deterministic and duplicate-free: points are returned
/// in strictly ascending `(cost, uptime)` order — equal
/// `(cost, uptime)` pairs are deduplicated — and when several
/// assignments achieve the same frontier point, the one with the
/// smallest flat (lexicographic) assignment index represents it. The
/// candidate sort key is explicitly `(cost ↑, uptime ↓, flat index ↑)`,
/// so the output never depends on sort stability or enumeration order.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{pareto, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let frontier = pareto::frontier(&space, &case_study::tco_model());
/// // The free no-HA option and the max-uptime option are always on it.
/// assert!(frontier.first().unwrap().ha_cost().value() == 0.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn frontier(space: &SearchSpace, model: &TcoModel) -> Vec<ParetoPoint> {
    let fast = FastEvaluator::new(space, model);

    // One streaming pass over the cached terms: compact facts only, no
    // Evaluation until a point survives the sweep.
    let mut facts: Vec<(MoneyPerMonth, Probability, u128)> = Vec::new();
    let mut cursor = fast.cursor();
    let mut index = 0u128;
    loop {
        let cost = MoneyPerMonth::new(cursor.accum().cost)
            .expect("candidate costs are finite and non-negative");
        facts.push((cost, cursor.rank_key().availability, index));
        index += 1;
        if !cursor.advance() {
            break;
        }
    }

    // Sort by cost ascending, uptime descending, flat index ascending:
    // the explicit index tie-break pins which assignment represents a
    // frontier point without leaning on sort stability.
    facts.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| b.1.cmp(&a.1))
            .then(a.2.cmp(&b.2))
    });

    // The strict `uptime > best` sweep both filters dominated points and
    // deduplicates equal `(cost, uptime)` pairs in one pass — a repeat of
    // the current best uptime is never an improvement.
    let mut out: Vec<ParetoPoint> = Vec::new();
    let mut best_uptime: Option<Probability> = None;
    for (_, uptime, flat_index) in facts {
        if best_uptime.is_none_or(|b| uptime > b) {
            best_uptime = Some(uptime);
            out.push(ParetoPoint {
                evaluation: fast.cursor_at(flat_index).evaluation(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_frontier() -> Vec<ParetoPoint> {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        frontier(&space, &case_study::tco_model())
    }

    #[test]
    fn frontier_is_sorted_and_strictly_improving() {
        let f = paper_frontier();
        assert!(!f.is_empty());
        for w in f.windows(2) {
            assert!(w[0].ha_cost() <= w[1].ha_cost());
            assert!(w[0].uptime() < w[1].uptime(), "uptime must strictly rise");
        }
    }

    #[test]
    fn frontier_endpoints() {
        let f = paper_frontier();
        // Cheapest point: the free no-HA deployment.
        assert_eq!(f.first().unwrap().ha_cost().value(), 0.0);
        assert!((f.first().unwrap().uptime().as_percent() - 92.17).abs() < 0.01);
        // Most expensive frontier point must be the global max uptime
        // (option #8, 99.65 % by exact evaluation).
        let last = f.last().unwrap();
        assert!((last.uptime().as_percent() - 99.65).abs() < 0.02);
    }

    #[test]
    fn dominated_options_excluded() {
        let f = paper_frontier();
        // Option #4 (VMware only, $2200, 93.04 %) is dominated by RAID-1
        // ($350, 96.78 %): must not be on the frontier.
        assert!(
            !f.iter().any(|p| (p.ha_cost().value() - 2200.0).abs() < 0.5),
            "VMware-only is dominated"
        );
    }

    #[test]
    fn paper_frontier_contents() {
        // Expect exactly: $0 (92.17), $350 (96.78), $1350 (98.71), $3550 (99.66).
        let costs: Vec<f64> = paper_frontier()
            .iter()
            .map(|p| p.ha_cost().value())
            .collect();
        assert_eq!(costs, vec![0.0, 350.0, 1350.0, 3550.0]);
    }

    #[test]
    fn frontier_matches_naive_dominance_filter() {
        // Differential: the streamed cached-term sweep must agree with the
        // definition applied naively — evaluate everything the slow way,
        // keep the points no other point dominates — on every catalog.
        use uptime_catalog::extended;
        let catalog = extended::hybrid_catalog();
        let model = case_study::tco_model();
        for cloud in [
            case_study::cloud_id(),
            extended::nimbus_id(),
            extended::stratus_id(),
        ] {
            let space =
                SearchSpace::from_catalog(&catalog, &cloud, &ComponentKind::paper_tiers()).unwrap();
            let evals: Vec<Evaluation> = space
                .assignments()
                .map(|a| Evaluation::evaluate(&space, &model, &a))
                .collect();
            let mut naive: Vec<_> = evals
                .iter()
                .filter(|e| {
                    !evals.iter().any(|o| {
                        (o.tco().ha_cost() <= e.tco().ha_cost()
                            && o.uptime().availability() > e.uptime().availability())
                            || (o.tco().ha_cost() < e.tco().ha_cost()
                                && o.uptime().availability() >= e.uptime().availability())
                    })
                })
                .map(|e| (e.tco().ha_cost(), e.uptime().availability()))
                .collect();
            naive.sort();
            naive.dedup();
            let swept: Vec<_> = frontier(&space, &model)
                .iter()
                .map(|p| (p.ha_cost(), p.uptime()))
                .collect();
            assert_eq!(swept, naive, "{cloud}");
        }
    }

    #[test]
    fn duplicate_points_are_deduplicated_deterministically() {
        // A space where two distinct assignments produce identical
        // (cost, uptime) pairs: two interchangeable copies of the same
        // HA candidate. The frontier must keep exactly one point per
        // value pair, represented by the lexicographically-first
        // assignment (the lower flat index).
        use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, Probability};

        use crate::space::{Candidate, ComponentChoices};

        let p = Probability::new(0.05).unwrap();
        let baseline = Candidate::new(
            "none",
            ClusterSpec::singleton("web", p, 2.0).unwrap(),
            MoneyPerMonth::ZERO,
            true,
        );
        let ha = |name: &str| {
            Candidate::new(
                name,
                ClusterSpec::builder("web-ha")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(p)
                    .failures_per_year(FailuresPerYear::new(2.0).unwrap())
                    .failover_time(Minutes::new(5.0).unwrap())
                    .build()
                    .unwrap(),
                MoneyPerMonth::new(400.0).unwrap(),
                false,
            )
        };
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "web",
            vec![baseline, ha("twin-a"), ha("twin-b")],
        )
        .unwrap()])
        .unwrap();
        let model = case_study::tco_model();

        let f = frontier(&space, &model);
        // Values must be strictly increasing — the twin pair collapses.
        for w in f.windows(2) {
            assert!(w[0].ha_cost() < w[1].ha_cost() || w[0].uptime() < w[1].uptime());
        }
        let twins: Vec<_> = f
            .iter()
            .filter(|pt| (pt.ha_cost().value() - 400.0).abs() < 1e-9)
            .collect();
        assert_eq!(twins.len(), 1, "equal-value twins must deduplicate");
        // twin-a (assignment [1]) beats twin-b ([2]) on flat index.
        assert_eq!(twins[0].evaluation().assignment(), &[1]);
    }

    #[test]
    fn every_non_frontier_point_is_dominated() {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let f = frontier(&space, &model);
        for a in space.assignments() {
            let e = Evaluation::evaluate(&space, &model, &a);
            let on_frontier = f
                .iter()
                .any(|p| p.evaluation().assignment() == e.assignment());
            if !on_frontier {
                let dominated = f.iter().any(|p| {
                    p.ha_cost() <= e.tco().ha_cost() && p.uptime() >= e.uptime().availability()
                });
                assert!(
                    dominated,
                    "{:?} neither on frontier nor dominated",
                    e.assignment()
                );
            }
        }
    }
}
