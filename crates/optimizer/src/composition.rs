//! Series–parallel composition search spaces — the fast-path algebra
//! generalized from serial chains to availability DAGs.
//!
//! The paper optimizes a *serial* chain (Fig. 1): every cluster is a
//! single point of failure, so Eqs. 2/3 fold per-component terms with one
//! running product. Real deployments (the Deployment Archetypes survey's
//! zonal → global ladder) replicate whole stacks *in parallel*:
//! `uptime_core::composition::Block` already evaluates such diagrams
//! analytically, but nothing could search over them. This module lifts
//! [`crate::fast`]'s factorization to series–parallel topologies:
//!
//! * a [`CompositionSpace`] attaches a per-leaf candidate set
//!   ([`crate::space::ComponentChoices`]) to every cluster position of a
//!   series–parallel shape;
//! * a [`CompositionEvaluator`] caches the same per-candidate
//!   `(a, φ, x, C_HA, baseline)` scalars as [`crate::fast::FastEvaluator`]
//!   and folds them bottom-up through the topology;
//! * a [`CompositionCursor`] walks assignments in odometer order with
//!   per-leaf fold-state snapshots, so advancing costs `O(1)` amortized
//!   exactly like the serial cursor.
//!
//! # The fold
//!
//! Leaves are linearized in depth-first order. A leaf whose ancestors are
//! all `Series` sits on the **spine**: its terms enter the serial
//! accumulators ([`crate::fast`]'s `V`, `X`, `S`) via the *identical*
//! `Accum::push` recurrence, so failover blips are charged exactly as
//! Eq. 3 charges them. A leaf under a `Parallel` ancestor is **masked**: a
//! sibling branch absorbs its blips, so only its breakdown availability
//! `a` participates, folded through its enclosing Series (product) and
//! Parallel (co-product of unavailabilities) frames. Each maximal parallel
//! subtree collapses to one availability factor `mask ← mask · A_subtree`
//! when it closes. The final artifacts are
//!
//! ```text
//! B = 1 − V·mask        F = S·mask        C = C_spine + C_masked
//! ```
//!
//! matching [`uptime_core::composition::Block::failover_aware_availability`]
//! (spine uptime × parallel breakdown factors). On a pure-series topology
//! `mask = 1.0` and the extra cost term is `0.0`, so every artifact is
//! **bit-identical** to [`crate::fast`] — the serial engines fall out as a
//! special case, which `crates/optimizer/tests/composition_differential.rs`
//! pins across seeds and thread counts.

use std::fmt;

use uptime_core::composition::Block;
use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::fast::{finish, Accum, CandidateTerms};
use crate::objective::{Objective, RankKey};
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::{ComponentChoices, SearchSpace, SpaceError};

/// A node of a composition search topology: the search-space analogue of
/// [`uptime_core::composition::Block`], with a candidate *set* at every
/// cluster position instead of a fixed cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum CompositionNode {
    /// A leaf: one component with its HA candidates.
    Component(ComponentChoices),
    /// All children must be up (serial chain).
    Series(Vec<CompositionNode>),
    /// At least one child must be up (site-level redundancy).
    Parallel(Vec<CompositionNode>),
}

impl CompositionNode {
    /// Convenience: a series node over per-component choice sets.
    #[must_use]
    pub fn series(components: Vec<ComponentChoices>) -> Self {
        CompositionNode::Series(
            components
                .into_iter()
                .map(CompositionNode::Component)
                .collect(),
        )
    }
}

/// The structural (non-leaf) fold operations, in linearized order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StructOp {
    /// Open a series frame (only emitted under a parallel ancestor — the
    /// spine needs no frame).
    EnterSeries,
    /// Close a series frame and absorb its availability into the parent.
    ExitSeries,
    /// Open a parallel frame.
    EnterParallel,
    /// Close a parallel frame; at spine level this multiplies the mask.
    ExitParallel,
}

/// The private shape tree over leaf ordinals (depth-first order).
#[derive(Debug, Clone, PartialEq)]
enum Shape {
    Leaf(usize),
    Series(Vec<Shape>),
    Parallel(Vec<Shape>),
}

/// A series–parallel search space: per-leaf candidate sets over a
/// [`Block`]-style topology.
///
/// An *assignment* is one candidate index per leaf, in depth-first leaf
/// order; the space holds `Π k_i` assignments.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{composition, CompositionNode, CompositionSpace, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let serial = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// // Two replica stacks of the paper's chain, in parallel.
/// let stack = || CompositionNode::series(serial.components().to_vec());
/// let space = CompositionSpace::new(CompositionNode::Parallel(vec![stack(), stack()]))?;
/// assert_eq!(space.leaf_count(), 6);
/// assert_eq!(space.assignment_count(), 64);
/// let outcome = composition::search(&space, &case_study::tco_model(), Default::default());
/// assert!(outcome.best().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompositionSpace {
    leaves: Vec<ComponentChoices>,
    shape: Shape,
    /// `segs[p]` = structural ops between leaf `p−1` and leaf `p`
    /// (`segs[0]`: before the first leaf); `segs[n]` = trailing ops.
    segs: Vec<Vec<StructOp>>,
    /// Whether each leaf sits on the unguarded serial spine.
    spine_leaf: Vec<bool>,
    /// Leaf ranges `[lo, hi)` of the *maximal* parallel subtrees (parallel
    /// nodes whose ancestors are all series), in order.
    par_ranges: Vec<(usize, usize)>,
}

impl CompositionSpace {
    /// Builds a space from a composition topology.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::EmptySpace`] if the topology contains an
    /// empty `Series`/`Parallel` node or no leaves at all.
    pub fn new(root: CompositionNode) -> Result<Self, SpaceError> {
        let mut leaves = Vec::new();
        let shape = flatten(root, &mut leaves)?;
        if leaves.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        let mut lin = Linearizer::new(leaves.len());
        lin.emit(&shape, false);
        lin.close();
        Ok(CompositionSpace {
            leaves,
            shape,
            segs: lin.segs,
            spine_leaf: lin.spine_leaf,
            par_ranges: lin.par_ranges,
        })
    }

    /// The pure-series space equivalent to a serial [`SearchSpace`] — the
    /// shape on which composition search is bit-identical to the serial
    /// engines.
    ///
    /// # Panics
    ///
    /// Never: a valid `SearchSpace` is non-empty by construction.
    #[must_use]
    pub fn from_serial(space: &SearchSpace) -> Self {
        CompositionSpace::new(CompositionNode::series(space.components().to_vec()))
            .expect("serial spaces are non-empty by construction")
    }

    /// Per-leaf choice sets, in depth-first leaf order.
    #[must_use]
    pub fn leaves(&self) -> &[ComponentChoices] {
        &self.leaves
    }

    /// Number of leaves `n`.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Total number of assignments `Π k_i`.
    #[must_use]
    pub fn assignment_count(&self) -> u128 {
        self.leaves.iter().map(|c| c.len() as u128).product()
    }

    /// Whether the topology is a pure serial chain (no parallel node).
    #[must_use]
    pub fn is_pure_series(&self) -> bool {
        self.par_ranges.is_empty() && self.segs.iter().all(Vec::is_empty)
    }

    /// The HA cardinality of an assignment: leaves using a non-baseline
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per leaf.
    #[must_use]
    pub fn cardinality(&self, assignment: &[usize]) -> usize {
        assignment
            .iter()
            .zip(&self.leaves)
            .filter(|(&idx, leaf)| !leaf.candidates()[idx].is_baseline())
            .count()
    }

    /// Iterates over every assignment in lexicographic (odometer) order.
    #[must_use]
    pub fn assignments(&self) -> CompositionAssignments<'_> {
        CompositionAssignments {
            space: self,
            next: Some(vec![0; self.leaves.len()]),
        }
    }

    /// Materializes the [`Block`] diagram an assignment selects — the
    /// naive reference the differential harness sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per leaf.
    #[must_use]
    pub fn to_block(&self, assignment: &[usize]) -> Block {
        assert_eq!(
            assignment.len(),
            self.leaves.len(),
            "assignment arity must match leaf count"
        );
        self.shape_to_block(&self.shape, assignment)
    }

    fn shape_to_block(&self, shape: &Shape, assignment: &[usize]) -> Block {
        match shape {
            Shape::Leaf(i) => Block::Cluster(
                self.leaves[*i].candidates()[assignment[*i]]
                    .cluster()
                    .clone(),
            ),
            Shape::Series(children) => Block::Series(
                children
                    .iter()
                    .map(|c| self.shape_to_block(c, assignment))
                    .collect(),
            ),
            Shape::Parallel(children) => Block::Parallel(
                children
                    .iter()
                    .map(|c| self.shape_to_block(c, assignment))
                    .collect(),
            ),
        }
    }

    /// Monthly cost of an assignment (sum over leaves) — context-free, so
    /// the naive sweep can price diagrams without an evaluator.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per leaf.
    #[must_use]
    pub fn monthly_cost(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .zip(&self.leaves)
            .map(|(&idx, leaf)| leaf.candidates()[idx].monthly_cost().value())
            .sum()
    }

    /// Whether leaf `p` sits on the serial spine.
    pub(crate) fn spine_leaf(&self) -> &[bool] {
        &self.spine_leaf
    }

    /// Maximal parallel subtree availability, per subtree `(lo, value)`,
    /// when every leaf takes the availability `leaf_avail[leaf]` — the
    /// monotone upper-completion the BnB bound folds through the remaining
    /// subtree.
    pub(crate) fn parallel_factors(&self, leaf_avail: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(self.par_ranges.len());
        collect_parallel_factors(&self.shape, leaf_avail, false, &mut out);
        debug_assert_eq!(out.len(), self.par_ranges.len());
        out
    }
}

impl fmt::Display for CompositionSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render(
            shape: &Shape,
            leaves: &[ComponentChoices],
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match shape {
                Shape::Leaf(i) => write!(f, "{}", leaves[*i].name()),
                Shape::Series(children) => {
                    write!(f, "series(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, " -> ")?;
                        }
                        render(c, leaves, f)?;
                    }
                    write!(f, ")")
                }
                Shape::Parallel(children) => {
                    write!(f, "parallel(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        render(c, leaves, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        render(&self.shape, &self.leaves, f)
    }
}

/// Flattens a topology into a shape over leaf ordinals.
fn flatten(node: CompositionNode, leaves: &mut Vec<ComponentChoices>) -> Result<Shape, SpaceError> {
    match node {
        CompositionNode::Component(choices) => {
            let i = leaves.len();
            leaves.push(choices);
            Ok(Shape::Leaf(i))
        }
        CompositionNode::Series(children) => {
            if children.is_empty() {
                return Err(SpaceError::EmptySpace);
            }
            Ok(Shape::Series(
                children
                    .into_iter()
                    .map(|c| flatten(c, leaves))
                    .collect::<Result<_, _>>()?,
            ))
        }
        CompositionNode::Parallel(children) => {
            if children.is_empty() {
                return Err(SpaceError::EmptySpace);
            }
            Ok(Shape::Parallel(
                children
                    .into_iter()
                    .map(|c| flatten(c, leaves))
                    .collect::<Result<_, _>>()?,
            ))
        }
    }
}

/// Availability of a shape when every leaf takes `leaf_avail[leaf]`.
fn shape_availability(shape: &Shape, leaf_avail: &[f64]) -> f64 {
    match shape {
        Shape::Leaf(i) => leaf_avail[*i],
        Shape::Series(children) => children
            .iter()
            .map(|c| shape_availability(c, leaf_avail))
            .product(),
        Shape::Parallel(children) => {
            1.0 - children
                .iter()
                .map(|c| 1.0 - shape_availability(c, leaf_avail))
                .product::<f64>()
        }
    }
}

/// Records `(lo, availability)` for each maximal parallel subtree.
fn collect_parallel_factors(
    shape: &Shape,
    leaf_avail: &[f64],
    under_parallel: bool,
    out: &mut Vec<(usize, f64)>,
) {
    match shape {
        Shape::Leaf(_) => {}
        Shape::Series(children) => {
            for c in children {
                collect_parallel_factors(c, leaf_avail, under_parallel, out);
            }
        }
        Shape::Parallel(children) => {
            if under_parallel {
                for c in children {
                    collect_parallel_factors(c, leaf_avail, true, out);
                }
            } else {
                out.push((first_leaf(shape), shape_availability(shape, leaf_avail)));
            }
        }
    }
}

fn first_leaf(shape: &Shape) -> usize {
    match shape {
        Shape::Leaf(i) => *i,
        Shape::Series(children) | Shape::Parallel(children) => first_leaf(&children[0]),
    }
}

/// Builds the linearized fold schedule: structural op segments between
/// leaves, spine flags, and maximal-parallel leaf ranges.
struct Linearizer {
    segs: Vec<Vec<StructOp>>,
    current: Vec<StructOp>,
    spine_leaf: Vec<bool>,
    par_ranges: Vec<(usize, usize)>,
    emitted: usize,
}

impl Linearizer {
    fn new(n: usize) -> Self {
        Linearizer {
            segs: Vec::with_capacity(n + 1),
            current: Vec::new(),
            spine_leaf: Vec::with_capacity(n),
            par_ranges: Vec::new(),
            emitted: 0,
        }
    }

    fn emit(&mut self, shape: &Shape, under_parallel: bool) {
        match shape {
            Shape::Leaf(_) => {
                self.segs.push(std::mem::take(&mut self.current));
                self.spine_leaf.push(!under_parallel);
                self.emitted += 1;
            }
            Shape::Series(children) => {
                if under_parallel {
                    self.current.push(StructOp::EnterSeries);
                    for c in children {
                        self.emit(c, true);
                    }
                    self.current.push(StructOp::ExitSeries);
                } else {
                    for c in children {
                        self.emit(c, false);
                    }
                }
            }
            Shape::Parallel(children) => {
                let lo = self.emitted;
                self.current.push(StructOp::EnterParallel);
                for c in children {
                    self.emit(c, true);
                }
                self.current.push(StructOp::ExitParallel);
                if !under_parallel {
                    self.par_ranges.push((lo, self.emitted));
                }
            }
        }
    }

    fn close(&mut self) {
        self.segs.push(std::mem::take(&mut self.current));
    }
}

/// One open composite frame during a fold.
#[derive(Debug, Clone, Copy)]
enum Frame {
    /// Product of child availabilities seen so far.
    Series { avail: f64 },
    /// Product of child *unavailabilities* seen so far.
    Parallel { miss: f64 },
}

/// Fold state after consuming a prefix of the linearized topology: the
/// serial accumulators of the spine, the mask of completed parallel
/// subtrees, the masked leaves' cost/cardinality, and the open frames.
#[derive(Debug, Clone)]
pub(crate) struct FoldState {
    /// Eq. 2/3/5 accumulators over spine leaves (the serial fast path).
    pub(crate) spine: Accum,
    /// Product of completed maximal parallel subtrees' availabilities.
    pub(crate) mask: f64,
    /// Cost contributed by masked (non-spine) leaves.
    pub(crate) extra_cost: f64,
    /// Non-baseline choices among masked leaves.
    pub(crate) extra_card: usize,
    stack: Vec<Frame>,
}

impl FoldState {
    pub(crate) fn identity() -> Self {
        FoldState {
            spine: Accum::IDENTITY,
            mask: 1.0,
            extra_cost: 0.0,
            extra_card: 0,
            stack: Vec::new(),
        }
    }

    /// Overwrites `self` with `other` without reallocating the frame stack
    /// once its capacity has grown.
    pub(crate) fn copy_from(&mut self, other: &FoldState) {
        self.spine = other.spine;
        self.mask = other.mask;
        self.extra_cost = other.extra_cost;
        self.extra_card = other.extra_card;
        self.stack.clear();
        self.stack.extend_from_slice(&other.stack);
    }

    /// Consumes the next leaf's chosen candidate terms.
    #[inline]
    pub(crate) fn apply_leaf(&mut self, t: &CandidateTerms) {
        match self.stack.last_mut() {
            // Spine leaf: the exact serial recurrence.
            None => self.spine = self.spine.push(t),
            // Masked leaf: breakdown availability only; blips are absorbed
            // by a parallel sibling.
            Some(frame) => {
                match frame {
                    Frame::Series { avail } => *avail *= t.availability,
                    Frame::Parallel { miss } => *miss *= 1.0 - t.availability,
                }
                self.extra_cost += t.cost;
                self.extra_card += usize::from(!t.baseline);
            }
        }
    }

    /// Consumes one structural op.
    #[inline]
    fn apply_struct(&mut self, op: StructOp) {
        match op {
            StructOp::EnterSeries => self.stack.push(Frame::Series { avail: 1.0 }),
            StructOp::EnterParallel => self.stack.push(Frame::Parallel { miss: 1.0 }),
            StructOp::ExitSeries | StructOp::ExitParallel => {
                let a = match self.stack.pop().expect("balanced fold schedule") {
                    Frame::Series { avail } => avail,
                    Frame::Parallel { miss } => 1.0 - miss,
                };
                self.absorb(a);
            }
        }
    }

    /// Folds a completed subtree's availability into the enclosing context.
    fn absorb(&mut self, a: f64) {
        match self.stack.last_mut() {
            None => self.mask *= a,
            Some(Frame::Series { avail }) => *avail *= a,
            Some(Frame::Parallel { miss }) => *miss *= 1.0 - a,
        }
    }

    /// Collapses the state into the serial accumulator shape
    /// [`crate::fast::finish`] consumes: `B = 1 − V·mask`, `F = S·mask`.
    /// With `mask = 1.0` and no masked leaves every field is bit-identical
    /// to the serial fold.
    #[inline]
    pub(crate) fn combined(&self) -> Accum {
        Accum {
            avail: self.spine.avail * self.mask,
            active: self.spine.active,
            failover: self.spine.failover * self.mask,
            cost: self.spine.cost + self.extra_cost,
            cardinality: self.spine.cardinality + self.extra_card,
        }
    }
}

/// A composition space with every candidate's Eq. 2/3/5 factors
/// precomputed — the topology-aware counterpart of
/// [`crate::fast::FastEvaluator`].
#[derive(Debug, Clone)]
pub struct CompositionEvaluator<'a> {
    space: &'a CompositionSpace,
    model: &'a TcoModel,
    terms: Vec<Vec<CandidateTerms>>,
}

impl<'a> CompositionEvaluator<'a> {
    /// Precomputes every candidate's per-leaf terms.
    #[must_use]
    pub fn new(space: &'a CompositionSpace, model: &'a TcoModel) -> Self {
        let terms = space
            .leaves
            .iter()
            .map(|comp| {
                comp.candidates()
                    .iter()
                    .map(|cand| {
                        let cluster = cand.cluster();
                        CandidateTerms {
                            availability: cluster.availability().value(),
                            failover_fraction: cluster.failover_year_fraction(),
                            active_up: cluster.all_active_up_probability().value(),
                            cost: cand.monthly_cost().value(),
                            baseline: cand.is_baseline(),
                        }
                    })
                    .collect()
            })
            .collect();
        CompositionEvaluator {
            space,
            model,
            terms,
        }
    }

    /// The space this evaluator was built for.
    #[must_use]
    pub fn space(&self) -> &'a CompositionSpace {
        self.space
    }

    /// The TCO model evaluations run under.
    #[must_use]
    pub fn model(&self) -> &'a TcoModel {
        self.model
    }

    /// The cached per-leaf candidate terms (crate-internal: the raw
    /// material `crate::composition_bnb` bounds and descends over).
    pub(crate) fn terms(&self) -> &[Vec<CandidateTerms>] {
        &self.terms
    }

    /// The fold state before any leaf: identity plus any structural ops
    /// preceding leaf 0.
    pub(crate) fn base_state(&self) -> FoldState {
        let mut state = FoldState::identity();
        for op in &self.space.segs[0] {
            state.apply_struct(*op);
        }
        state
    }

    /// Computes `states[i + 1]` from `states[i]`: apply leaf `i`'s chosen
    /// candidate, then the structural ops up to the next leaf (or the
    /// trailing ops when `i` is the last leaf).
    ///
    /// # Panics
    ///
    /// Panics if `states` is shorter than `i + 2`.
    pub(crate) fn step_into(&self, states: &mut [FoldState], i: usize, digit: usize) {
        let (head, tail) = states.split_at_mut(i + 1);
        let next = &mut tail[0];
        next.copy_from(&head[i]);
        next.apply_leaf(&self.terms[i][digit]);
        for op in &self.space.segs[i + 1] {
            next.apply_struct(*op);
        }
    }

    fn fold(&self, assignment: &[usize]) -> FoldState {
        assert_eq!(
            assignment.len(),
            self.terms.len(),
            "assignment arity must match leaf count"
        );
        let mut state = self.base_state();
        for (i, &idx) in assignment.iter().enumerate() {
            state.apply_leaf(&self.terms[i][idx]);
            for op in &self.space.segs[i + 1] {
                state.apply_struct(*op);
            }
        }
        state
    }

    /// Evaluates one assignment from cached terms — semantically the
    /// topology fold of `B`, `F`, cost, then the same Eq. 5 finish the
    /// serial engines use.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per leaf.
    #[must_use]
    pub fn evaluate(&self, assignment: &[usize]) -> Evaluation {
        let acc = self.fold(assignment).combined();
        let (uptime, tco, _) = finish(self.model, &acc);
        Evaluation::from_parts(assignment.to_vec(), acc.cardinality, uptime, tco)
    }

    /// The ranking facts for one assignment, without materializing an
    /// [`Evaluation`].
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per leaf.
    #[must_use]
    pub fn rank_key(&self, assignment: &[usize]) -> RankKey {
        finish(self.model, &self.fold(assignment).combined()).2
    }

    /// A cursor positioned at the all-zeros assignment.
    #[must_use]
    pub fn cursor(&self) -> CompositionCursor<'_, 'a> {
        self.cursor_at(0)
    }

    /// A cursor positioned at the given flat (mixed-radix, lexicographic)
    /// index — how parallel shards seed their odometer state.
    ///
    /// # Panics
    ///
    /// Panics if `flat_index >= space.assignment_count()`.
    #[must_use]
    pub fn cursor_at(&self, flat_index: u128) -> CompositionCursor<'_, 'a> {
        let n = self.terms.len();
        let mut digits = vec![0usize; n];
        let mut rem = flat_index;
        for pos in (0..n).rev() {
            let radix = self.terms[pos].len() as u128;
            digits[pos] = (rem % radix) as usize;
            rem /= radix;
        }
        assert_eq!(rem, 0, "flat index out of range for this space");
        let states = vec![self.base_state(); n + 1];
        let mut cursor = CompositionCursor {
            eval: self,
            digits,
            states,
            done: false,
        };
        cursor.refresh_from(0);
        cursor
    }
}

/// An odometer over a composition space's assignments with
/// incrementally-maintained fold-state snapshots per leaf position —
/// advancing replays only the suffix right of the carry, exactly like
/// [`crate::fast::FastCursor`].
#[derive(Debug)]
pub struct CompositionCursor<'e, 'a> {
    eval: &'e CompositionEvaluator<'a>,
    digits: Vec<usize>,
    /// `states[p]` is the fold state just before leaf `p` (structural ops
    /// up to it applied); `states[n]` is the final state after the
    /// trailing ops.
    states: Vec<FoldState>,
    done: bool,
}

impl CompositionCursor<'_, '_> {
    /// The current assignment, one candidate index per leaf.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.digits
    }

    /// Recomputes `states[p+1..]` after digits `p..` changed.
    fn refresh_from(&mut self, p: usize) {
        for i in p..self.digits.len() {
            self.eval.step_into(&mut self.states, i, self.digits[i]);
        }
    }

    /// Steps to the lexicographic successor. Returns `false` once the last
    /// assignment has been consumed; the cursor then stays exhausted.
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        let mut pos = self.digits.len();
        loop {
            if pos == 0 {
                self.done = true;
                return false;
            }
            pos -= 1;
            self.digits[pos] += 1;
            if self.digits[pos] < self.eval.terms[pos].len() {
                break;
            }
            self.digits[pos] = 0;
        }
        self.refresh_from(pos);
        true
    }

    /// The combined accumulator of the current assignment — the compact
    /// facts the frontier sweeps rank on without materializing an
    /// [`Evaluation`].
    pub(crate) fn accum(&self) -> Accum {
        self.states[self.digits.len()].combined()
    }

    /// The ranking facts for the current assignment. Allocation-free.
    #[must_use]
    pub fn rank_key(&self) -> RankKey {
        let acc = self.states[self.digits.len()].combined();
        finish(self.eval.model, &acc).2
    }

    /// Materializes the current assignment as a full [`Evaluation`].
    #[must_use]
    pub fn evaluation(&self) -> Evaluation {
        let acc = self.states[self.digits.len()].combined();
        let (uptime, tco, _) = finish(self.eval.model, &acc);
        Evaluation::from_parts(self.digits.clone(), acc.cardinality, uptime, tco)
    }
}

/// Iterator over all assignments of a [`CompositionSpace`], lexicographic.
#[derive(Debug)]
pub struct CompositionAssignments<'a> {
    space: &'a CompositionSpace,
    next: Option<Vec<usize>>,
}

impl Iterator for CompositionAssignments<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut pos = succ.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            succ[pos] += 1;
            if succ[pos] < self.space.leaves()[pos].len() {
                self.next = Some(succ);
                break;
            }
            succ[pos] = 0;
        }
        Some(current)
    }
}

/// Streams every assignment through one incremental cursor, keeping only
/// the running argmin — the topology-aware counterpart of
/// [`crate::fast::search`]. On pure-series spaces the winner is
/// bit-identical to the serial streaming search.
#[must_use]
pub fn search(space: &CompositionSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let eval = CompositionEvaluator::new(space, model);
    let mut cursor = eval.cursor();
    let mut best_key: Option<RankKey> = None;
    let mut best_digits: Vec<usize> = Vec::with_capacity(space.leaf_count());
    let mut evaluated: u64 = 0;
    loop {
        evaluated = evaluated.saturating_add(1);
        let key = cursor.rank_key();
        let improved = match &best_key {
            None => true,
            Some(b) => objective.better_key(&key, b),
        };
        if improved {
            best_key = Some(key);
            best_digits.clear();
            best_digits.extend_from_slice(cursor.assignment());
        }
        if !cursor.advance() {
            break;
        }
    }
    let best = eval.evaluate(&best_digits);
    SearchOutcome::from_evaluations(
        objective,
        vec![best],
        SearchStats {
            evaluated,
            skipped: 0,
        },
    )
}

/// [`search`] with observability: the identical streaming fold wrapped in
/// an `optimizer.composition.search` span, flushing
/// `optimizer.composition.variants` once at the end. `parent` hangs a
/// matching trace span (variant count attached) under the caller's
/// request trace; pass [`uptime_obs::TraceSpan::disabled`] outside one.
#[must_use]
pub fn search_recorded(
    space: &CompositionSpace,
    model: &TcoModel,
    objective: Objective,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.composition.search");
    let mut trace_span = parent.child("optimizer.composition.search");
    let outcome = search(space, model, objective);
    rec.counter_add("optimizer.composition.variants", outcome.stats().evaluated);
    trace_span.attr_u64("variants", outcome.stats().evaluated);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast;
    use crate::space::Candidate;
    use uptime_catalog::{case_study, ComponentKind};
    use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    fn component(name: &str, downs: &[f64], costs: &[f64]) -> ComponentChoices {
        let candidates = downs
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (&down, &cost))| {
                Candidate::new(
                    format!("{name}-{i}"),
                    ClusterSpec::singleton(
                        format!("{name}-{i}"),
                        Probability::new(down).unwrap(),
                        1.0,
                    )
                    .unwrap(),
                    MoneyPerMonth::new(cost).unwrap(),
                    i == 0,
                )
            })
            .collect();
        ComponentChoices::new(name, candidates).unwrap()
    }

    fn dual_site_space() -> CompositionSpace {
        let site = |tag: &str| {
            CompositionNode::Series(vec![
                CompositionNode::Component(component(
                    &format!("{tag}-web"),
                    &[0.02, 0.002],
                    &[0.0, 80.0],
                )),
                CompositionNode::Component(component(
                    &format!("{tag}-db"),
                    &[0.05, 0.004],
                    &[0.0, 120.0],
                )),
            ])
        };
        CompositionSpace::new(CompositionNode::Series(vec![
            CompositionNode::Component(component("gw", &[0.01, 0.001], &[0.0, 60.0])),
            CompositionNode::Parallel(vec![site("a"), site("b")]),
        ]))
        .unwrap()
    }

    #[test]
    fn empty_composites_rejected() {
        assert!(matches!(
            CompositionSpace::new(CompositionNode::Series(vec![])),
            Err(SpaceError::EmptySpace)
        ));
        assert!(matches!(
            CompositionSpace::new(CompositionNode::Parallel(vec![CompositionNode::Series(
                vec![]
            )])),
            Err(SpaceError::EmptySpace)
        ));
    }

    #[test]
    fn serial_space_is_pure_series() {
        let space = CompositionSpace::from_serial(&paper_space());
        assert!(space.is_pure_series());
        assert_eq!(space.leaf_count(), 3);
        assert_eq!(space.assignment_count(), 8);
        assert_eq!(space.spine_leaf(), &[true, true, true]);
    }

    #[test]
    fn dual_site_shape_facts() {
        let space = dual_site_space();
        assert!(!space.is_pure_series());
        assert_eq!(space.leaf_count(), 5);
        assert_eq!(space.assignment_count(), 32);
        assert_eq!(space.spine_leaf(), &[true, false, false, false, false]);
        assert_eq!(space.par_ranges, vec![(1, 5)]);
        assert_eq!(space.to_string().matches("parallel").count(), 1);
    }

    #[test]
    fn serial_fold_is_bit_identical_to_fast() {
        let serial = paper_space();
        let space = CompositionSpace::from_serial(&serial);
        let model = case_study::tco_model();
        let fast_eval = fast::FastEvaluator::new(&serial, &model);
        let comp_eval = CompositionEvaluator::new(&space, &model);
        for assignment in serial.assignments() {
            assert_eq!(
                comp_eval.evaluate(&assignment),
                fast_eval.evaluate(&assignment),
                "{assignment:?}"
            );
        }
    }

    #[test]
    fn fold_matches_block_evaluation_pointwise() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let eval = CompositionEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let block = space.to_block(&assignment);
            let direct = block.failover_aware_availability().value();
            let folded = eval.evaluate(&assignment).uptime().availability().value();
            assert!(
                (direct - folded).abs() < 1e-12,
                "{assignment:?}: block {direct} vs fold {folded}"
            );
        }
    }

    #[test]
    fn cursor_matches_from_scratch_fold() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let eval = CompositionEvaluator::new(&space, &model);
        let mut cursor = eval.cursor();
        let mut index = 0u128;
        loop {
            let seeded = eval.cursor_at(index);
            assert_eq!(seeded.assignment(), cursor.assignment());
            assert_eq!(seeded.evaluation(), cursor.evaluation());
            assert_eq!(cursor.evaluation(), eval.evaluate(cursor.assignment()));
            index += 1;
            if !cursor.advance() {
                break;
            }
        }
        assert_eq!(index, space.assignment_count());
        assert!(!cursor.advance());
    }

    #[test]
    fn search_finds_block_sweep_optimum() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let outcome = search(&space, &model, Objective::MinTco);
        let eval = CompositionEvaluator::new(&space, &model);
        // Naive reference: every assignment through the evaluator.
        let mut best: Option<Evaluation> = None;
        for assignment in space.assignments() {
            let e = eval.evaluate(&assignment);
            let better = match &best {
                None => true,
                Some(b) => e.tco().total() < b.tco().total(),
            };
            if better {
                best = Some(e);
            }
        }
        assert_eq!(
            outcome.best().unwrap().tco().total(),
            best.unwrap().tco().total()
        );
        assert_eq!(outcome.stats().evaluated, 32);
    }

    #[test]
    fn single_leaf_space_works() {
        let space = CompositionSpace::new(CompositionNode::Component(component(
            "solo",
            &[0.01, 0.001],
            &[0.0, 10.0],
        )))
        .unwrap();
        assert_eq!(space.leaf_count(), 1);
        let model = case_study::tco_model();
        let outcome = search(&space, &model, Objective::MinTco);
        assert_eq!(outcome.stats().evaluated, 2);
        assert!(outcome.best().is_some());
    }

    #[test]
    fn cardinality_and_cost_count_all_leaves() {
        let space = dual_site_space();
        assert_eq!(space.cardinality(&[0, 0, 0, 0, 0]), 0);
        assert_eq!(space.cardinality(&[1, 0, 1, 0, 1]), 3);
        assert!((space.monthly_cost(&[1, 1, 0, 0, 1]) - 260.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "flat index out of range")]
    fn cursor_at_rejects_out_of_range() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let eval = CompositionEvaluator::new(&space, &model);
        let _ = eval.cursor_at(space.assignment_count());
    }
}
