//! Exhaustive `k^n` enumeration — the paper's baseline algorithm (§II.C).
//!
//! Since PR 2 the enumeration is driven by the factorized [`crate::fast`]
//! engine: per-cluster terms are cached once and combined incrementally, so
//! the only per-assignment cost left is materializing the [`Evaluation`]
//! report itself. Callers that need just the optimum should prefer
//! [`crate::fast::search`], which skips even that.

use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::fast::FastEvaluator;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Evaluates **every** assignment of the space and returns the full
/// outcome. Exact by construction; `O(k^n)` evaluations.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{exhaustive, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = exhaustive::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert_eq!(outcome.stats().evaluated, 8);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_core(space, model, objective)
}

/// [`search`] with observability: the identical enumeration wrapped in an
/// `optimizer.exhaustive.search` span, flushing
/// `optimizer.exhaustive.variants` once at the end (never per variant).
/// `parent` hangs a matching trace span (variant count attached) under
/// the caller's request trace; pass
/// [`uptime_obs::TraceSpan::disabled`] outside a traced request.
#[must_use]
pub fn search_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.exhaustive.search");
    let mut trace_span = parent.child("optimizer.exhaustive.search");
    let outcome = search_core(space, model, objective);
    rec.counter_add("optimizer.exhaustive.variants", outcome.stats().evaluated);
    trace_span.attr_u64("variants", outcome.stats().evaluated);
    outcome
}

fn search_core(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let mut evaluations: Vec<Evaluation> =
        Vec::with_capacity(space.assignment_count().min(1 << 20) as usize);
    let fast = FastEvaluator::new(space, model);
    let mut cursor = fast.cursor();
    loop {
        evaluations.push(cursor.evaluation());
        if !cursor.advance() {
            break;
        }
    }
    let stats = SearchStats {
        evaluated: evaluations.len() as u64,
        skipped: 0,
    };
    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn evaluates_all_eight_options() {
        let outcome = search(&paper_space(), &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.evaluations().len(), 8);
        assert_eq!(outcome.stats().evaluated, 8);
        assert_eq!(outcome.stats().skipped, 0);
    }

    #[test]
    fn finds_paper_optimum() {
        let outcome = search(&paper_space(), &case_study::tco_model(), Objective::MinTco);
        let best = outcome.best().unwrap();
        assert_eq!(best.tco().total().value(), 1250.0);
        assert_eq!(best.assignment(), &[0, 1, 0]);
    }

    #[test]
    fn min_penalty_risk_finds_option5() {
        let outcome = search(
            &paper_space(),
            &case_study::tco_model(),
            Objective::MinPenaltyRisk,
        );
        assert_eq!(outcome.best().unwrap().tco().total().value(), 1350.0);
    }

    #[test]
    fn recorded_search_matches_and_counts() {
        let space = paper_space();
        let model = case_study::tco_model();
        let registry = uptime_obs::MetricsRegistry::new();
        let plain = search(&space, &model, Objective::MinTco);
        let recorded = search_recorded(
            &space,
            &model,
            Objective::MinTco,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(plain, recorded, "instrumentation must not change results");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("optimizer.exhaustive.variants"), Some(8));
        assert_eq!(snap.counter("optimizer.exhaustive.search.calls"), Some(1));
    }

    #[test]
    fn hybrid_space_is_36_wide() {
        let catalog = extended::hybrid_catalog();
        let space = SearchSpace::from_catalog(
            &catalog,
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        assert_eq!(space.assignment_count(), 36);
        let outcome = search(&space, &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.stats().evaluated, 36);
        // With more (cheap, fast-failover) choices the optimum can only
        // improve on the k=2 optimum.
        assert!(outcome.best().unwrap().tco().total().value() <= 1250.0);
    }
}
