//! The paper's §III.C superset-pruned search.
//!
//! > "The algorithm starts by evaluating all HA permutations where only one
//! > component is clustered, then proceeds to permutations where two
//! > components are clustered, and so on. If a particular permutation
//! > yields an uptime greater than what the contractual SLA stipulates,
//! > super-sets of that permutation can be pruned since those will increase
//! > uptime (beyond the SLA) while also increasing cost."
//!
//! A permutation `A` is a *superset* of `B` when `A` keeps every clustered
//! choice of `B` and additionally clusters one or more components that `B`
//! left at baseline.
//!
//! **Exactness.** The paper justifies pruning via uptime monotonicity,
//! which Eq. 3 does not strictly guarantee (adding HA introduces a failover
//! term). A sharper argument makes the pruning exact regardless: if `B`
//! meets the SLA then `TCO(B) = C_HA(B)`, and any superset `A` has
//! `C_HA(A) ≥ C_HA(B)` (it adds non-negatively-priced methods), hence
//! `TCO(A) = C_HA(A) + penalty(A) ≥ C_HA(B) = TCO(B)`. A pruned assignment
//! therefore can never beat the satisfier that pruned it, so the returned
//! optimum equals the exhaustive optimum under [`Objective::MinTco`].
//! (For ties, the satisfier itself is already in the result set.)

use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::fast::FastEvaluator;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Runs the superset-pruned search.
///
/// Components without a baseline candidate are treated as always-clustered:
/// they contribute to every permutation's cardinality and are never
/// eligible for the "upgrade from baseline" superset relation.
///
/// # Examples
///
/// The paper's example — after option #5 satisfies the SLA, option #8 (its
/// superset) is clipped:
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{pruned, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = pruned::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert!(outcome.stats().skipped >= 1, "option #8 must be clipped");
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_core(space, model, objective)
}

/// [`search`] with observability: an `optimizer.pruned.search` span around
/// the identical algorithm, flushing `optimizer.pruned.evaluated`,
/// `optimizer.pruned.skipped`, and the `optimizer.pruned.cut_rate` gauge
/// (skipped / considered) once at the end. `parent` hangs a matching
/// trace span (evaluated/skipped attached) under the caller's request
/// trace; pass [`uptime_obs::TraceSpan::disabled`] outside one.
#[must_use]
pub fn search_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.pruned.search");
    let mut trace_span = parent.child("optimizer.pruned.search");
    let outcome = search_core(space, model, objective);
    let stats = outcome.stats();
    rec.counter_add("optimizer.pruned.evaluated", stats.evaluated);
    rec.counter_add("optimizer.pruned.skipped", stats.skipped);
    let considered = stats.considered();
    if considered > 0 {
        rec.gauge_set(
            "optimizer.pruned.cut_rate",
            stats.skipped as f64 / considered as f64,
        );
    }
    trace_span.attr_u64("evaluated", stats.evaluated);
    trace_span.attr_u64("skipped", stats.skipped);
    outcome
}

fn search_core(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let sla = model.sla();
    let fast = FastEvaluator::new(space, model);
    let mut evaluations: Vec<Evaluation> = Vec::new();
    let mut satisfiers: Vec<Vec<usize>> = Vec::new();
    let mut stats = SearchStats::default();

    // Group assignments by ascending cardinality, as the paper prescribes.
    let mut by_cardinality: Vec<Vec<Vec<usize>>> = vec![Vec::new(); space.len() + 1];
    for assignment in space.assignments() {
        let c = space.cardinality(&assignment);
        by_cardinality[c].push(assignment);
    }

    for level in by_cardinality {
        for assignment in level {
            if satisfiers
                .iter()
                .any(|b| is_superset(space, &assignment, b))
            {
                stats.skipped += 1;
                continue;
            }
            let evaluation = fast.evaluate(&assignment);
            stats.evaluated += 1;
            if sla.is_met_by(evaluation.uptime().availability()) {
                satisfiers.push(assignment);
            }
            evaluations.push(evaluation);
        }
    }

    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

/// Whether `a` is a strict superset of `b`: identical wherever `b` is
/// clustered, and clustered somewhere `b` is baseline.
fn is_superset(space: &SearchSpace, a: &[usize], b: &[usize]) -> bool {
    let mut strictly_more = false;
    for ((&ai, &bi), comp) in a.iter().zip(b).zip(space.components()) {
        let b_is_baseline = comp.candidates()[bi].is_baseline();
        if ai == bi {
            continue;
        }
        if !b_is_baseline {
            // b clustered this component differently: not a superset.
            return false;
        }
        if comp.candidates()[ai].is_baseline() {
            // a downgraded to a different baseline (impossible with one
            // baseline per component, defensive anyway).
            return false;
        }
        strictly_more = true;
    }
    strictly_more
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn clips_option8_after_option5() {
        let outcome = search(&paper_space(), &case_study::tco_model(), Objective::MinTco);
        // Option #5 ([0,1,1], cardinality 2) meets the SLA; its only strict
        // superset is option #8 ([1,1,1]).
        assert_eq!(outcome.stats().skipped, 1);
        assert_eq!(outcome.stats().evaluated, 7);
        assert!(
            !outcome
                .evaluations()
                .iter()
                .any(|e| e.assignment() == [1, 1, 1]),
            "option #8 must not be evaluated"
        );
    }

    #[test]
    fn agrees_with_exhaustive_on_paper_space() {
        let space = paper_space();
        let model = case_study::tco_model();
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let fast = search(&space, &model, Objective::MinTco);
        assert_eq!(
            full.best().unwrap().tco().total(),
            fast.best().unwrap().tco().total()
        );
        assert_eq!(
            full.best().unwrap().assignment(),
            fast.best().unwrap().assignment()
        );
    }

    #[test]
    fn agrees_with_exhaustive_on_hybrid_space() {
        let catalog = extended::hybrid_catalog();
        let model = case_study::tco_model();
        for cloud in [
            case_study::cloud_id(),
            extended::nimbus_id(),
            extended::stratus_id(),
        ] {
            let space =
                SearchSpace::from_catalog(&catalog, &cloud, &ComponentKind::paper_tiers()).unwrap();
            let full = exhaustive::search(&space, &model, Objective::MinTco);
            let fast = search(&space, &model, Objective::MinTco);
            assert_eq!(
                full.best().unwrap().tco().total(),
                fast.best().unwrap().tco().total(),
                "{cloud}"
            );
            assert!(fast.stats().evaluated <= full.stats().evaluated, "{cloud}");
        }
    }

    #[test]
    fn recorded_search_reports_cut_rate() {
        let space = paper_space();
        let model = case_study::tco_model();
        let registry = uptime_obs::MetricsRegistry::new();
        let plain = search(&space, &model, Objective::MinTco);
        let recorded = search_recorded(
            &space,
            &model,
            Objective::MinTco,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(plain, recorded, "instrumentation must not change results");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("optimizer.pruned.evaluated"), Some(7));
        assert_eq!(snap.counter("optimizer.pruned.skipped"), Some(1));
        let cut = snap.gauge("optimizer.pruned.cut_rate").unwrap();
        assert!((cut - 1.0 / 8.0).abs() < 1e-12, "{cut}");
    }

    #[test]
    fn superset_relation() {
        let space = paper_space();
        // [1,1,1] ⊃ [0,1,1].
        assert!(is_superset(&space, &[1, 1, 1], &[0, 1, 1]));
        // Not a superset of itself.
        assert!(!is_superset(&space, &[0, 1, 1], &[0, 1, 1]));
        // Sibling, not superset.
        assert!(!is_superset(&space, &[1, 0, 1], &[0, 1, 1]));
        // Subset, not superset.
        assert!(!is_superset(&space, &[0, 1, 0], &[0, 1, 1]));
    }

    #[test]
    fn evaluated_plus_skipped_covers_space() {
        let space = paper_space();
        let outcome = search(&space, &case_study::tco_model(), Objective::MinTco);
        assert_eq!(
            u128::from(outcome.stats().considered()),
            space.assignment_count()
        );
    }

    #[test]
    fn impossible_sla_prunes_nothing() {
        use uptime_core::{PenaltyClause, SlaTarget, TcoModel};
        let space = paper_space();
        let model = TcoModel::new(
            SlaTarget::from_percent(100.0).unwrap(),
            PenaltyClause::per_hour(100.0).unwrap(),
        );
        let outcome = search(&space, &model, Objective::MinTco);
        assert_eq!(outcome.stats().skipped, 0);
        assert_eq!(outcome.stats().evaluated, 8);
    }

    #[test]
    fn trivial_sla_prunes_aggressively() {
        use uptime_core::{PenaltyClause, SlaTarget, TcoModel};
        let space = paper_space();
        // A 1% SLA is met even with no HA: every non-baseline permutation
        // is a superset of the all-baseline satisfier.
        let model = TcoModel::new(
            SlaTarget::from_percent(1.0).unwrap(),
            PenaltyClause::per_hour(100.0).unwrap(),
        );
        let outcome = search(&space, &model, Objective::MinTco);
        assert_eq!(outcome.stats().evaluated, 1);
        assert_eq!(outcome.stats().skipped, 7);
        assert_eq!(outcome.best().unwrap().assignment(), &[0, 0, 0]);
    }
}
