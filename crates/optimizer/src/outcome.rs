//! Search outcomes and instrumentation.

use serde::{Deserialize, Serialize};

use crate::evaluate::Evaluation;
use crate::objective::Objective;

/// Instrumentation counters for one search run, used by the §III.C
/// complexity experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SearchStats {
    /// Assignments fully evaluated (system built + TCO computed).
    pub evaluated: u64,
    /// Assignments skipped by pruning/bounding without evaluation.
    pub skipped: u64,
}

impl SearchStats {
    /// Total assignments considered (evaluated + skipped).
    #[must_use]
    pub fn considered(&self) -> u64 {
        self.evaluated + self.skipped
    }
}

/// The result of a search: the winning evaluation, everything evaluated
/// (for reporting), and counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    objective: Objective,
    best: Option<Evaluation>,
    evaluations: Vec<Evaluation>,
    stats: SearchStats,
}

impl SearchOutcome {
    /// Assembles an outcome, selecting the best evaluation under
    /// `objective`.
    #[must_use]
    pub fn from_evaluations(
        objective: Objective,
        evaluations: Vec<Evaluation>,
        stats: SearchStats,
    ) -> Self {
        let best = objective.best(&evaluations).cloned();
        SearchOutcome {
            objective,
            best,
            evaluations,
            stats,
        }
    }

    /// The objective the search ran under.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The winning evaluation (`OptCh`), if the space was non-empty.
    #[must_use]
    pub fn best(&self) -> Option<&Evaluation> {
        self.best.as_ref()
    }

    /// Every evaluation the search performed, in visit order.
    #[must_use]
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evaluations
    }

    /// Instrumentation counters.
    #[must_use]
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Evaluations sorted by ascending TCO (for Fig. 10-style summaries).
    #[must_use]
    pub fn ranked(&self) -> Vec<&Evaluation> {
        let mut v: Vec<&Evaluation> = self.evaluations.iter().collect();
        v.sort_by(|a, b| {
            a.tco()
                .total()
                .cmp(&b.tco().total())
                .then_with(|| a.cardinality().cmp(&b.cardinality()))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use uptime_catalog::{case_study, ComponentKind};

    fn outcome() -> SearchOutcome {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let evals: Vec<_> = space
            .assignments()
            .map(|a| Evaluation::evaluate(&space, &model, &a))
            .collect();
        let stats = SearchStats {
            evaluated: evals.len() as u64,
            skipped: 0,
        };
        SearchOutcome::from_evaluations(Objective::MinTco, evals, stats)
    }

    #[test]
    fn stats_arithmetic() {
        let s = SearchStats {
            evaluated: 5,
            skipped: 3,
        };
        assert_eq!(s.considered(), 8);
        assert_eq!(SearchStats::default().considered(), 0);
    }

    #[test]
    fn best_is_min_tco() {
        let o = outcome();
        assert_eq!(o.best().unwrap().tco().total().value(), 1250.0);
        assert_eq!(o.objective(), Objective::MinTco);
        assert_eq!(o.stats().evaluated, 8);
    }

    #[test]
    fn ranked_matches_fig10_order() {
        let o = outcome();
        let tcos: Vec<f64> = o.ranked().iter().map(|e| e.tco().total().value()).collect();
        assert_eq!(
            tcos,
            vec![1250.0, 1350.0, 2850.0, 3550.0, 4000.0, 4300.0, 5500.0, 5900.0]
        );
    }

    #[test]
    fn empty_outcome_has_no_best() {
        let o =
            SearchOutcome::from_evaluations(Objective::MinTco, Vec::new(), SearchStats::default());
        assert!(o.best().is_none());
        assert!(o.evaluations().is_empty());
        assert!(o.ranked().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let o = outcome();
        let json = serde_json::to_string(&o).unwrap();
        let back: SearchOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }
}
