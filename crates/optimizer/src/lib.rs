//! # uptime-optimizer
//!
//! Searches the space of HA-enabled variants of a base cloud architecture
//! for the minimum-TCO deployment (the paper's Eq. 6, `OptCh = min TCO_i`).
//!
//! A [`SearchSpace`] holds, per serial component, the list of [`Candidate`]
//! HA constructs (cluster spec + monthly cost). The optimizers enumerate
//! assignments — one candidate per component — and evaluate each with
//! [`uptime_core::TcoModel`]:
//!
//! * [`exhaustive::search`] — all `k^n` permutations (paper §II.C),
//!   driven by the factorized [`fast`] engine.
//! * [`fast::search`] — streaming argmin over the same space: amortized
//!   `O(1)` work per variant from cached per-cluster terms, no
//!   per-assignment allocation.
//! * [`pruned::search`] — the paper's §III.C optimization: evaluate by
//!   ascending number of clustered components and skip supersets of any
//!   SLA-satisfying permutation. Exact (see module docs for the cost
//!   argument, which is sharper than the paper's uptime argument).
//! * [`branch_bound::search`] — tight-bound branch-and-bound: cost plus an
//!   admissible penalty lower bound from best-case suffix survival, with a
//!   work-stealing parallel variant
//!   ([`branch_bound::search_with_threads`]) pruning against a shared
//!   incumbent. Exact for `MinTco`, thread-count-independent results.
//! * [`greedy::search`] / [`anneal::search`] — inexact heuristics used as
//!   ablation baselines in the benchmarks.
//! * [`pareto::frontier`] — the cost/uptime Pareto front.
//! * [`pareto_bnb::search`] — the same frontier on the bounded fast
//!   path: epsilon-dominance branch-and-bound with hard SLO box
//!   constraints, thread-count-independent output.
//!
//! Beyond serial chains, [`composition`] searches series–parallel
//! topologies ([`CompositionSpace`] over a `Block` diagram) with the same
//! factorized-term machinery, [`composition_bnb`] runs the exact
//! branch-and-bound over them, and [`archetypes`] generates the deployment-
//! archetype survey's six shapes as ready-made composition spaces.
//!
//! # Example: the paper's case study
//!
//! ```
//! use uptime_catalog::{case_study, ComponentKind};
//! use uptime_optimizer::{exhaustive, Objective, SearchSpace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let catalog = case_study::catalog();
//! let space = SearchSpace::from_catalog(
//!     &catalog,
//!     &case_study::cloud_id(),
//!     &ComponentKind::paper_tiers(),
//! )?;
//! let outcome = exhaustive::search(&space, &case_study::tco_model(), Objective::MinTco);
//! let best = outcome.best().expect("non-empty space");
//! // Paper Fig. 10: option #3 (RAID-1 only) wins at $1250/month.
//! assert_eq!(best.tco().total().value(), 1250.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod archetypes;
pub mod branch_bound;
pub mod composition;
pub mod composition_bnb;
pub mod evaluate;
pub mod exhaustive;
pub mod fast;
pub mod greedy;
pub mod objective;
pub mod outcome;
pub mod parallel;
pub mod pareto;
pub mod pareto_bnb;
pub mod pruned;
pub mod space;
pub mod sweep;

pub use archetypes::Archetype;
pub use branch_bound::BnbStats;
pub use composition::{CompositionCursor, CompositionEvaluator, CompositionNode, CompositionSpace};
pub use evaluate::Evaluation;
pub use fast::{FastCursor, FastEvaluator};
pub use objective::{Objective, RankKey};
pub use outcome::{SearchOutcome, SearchStats};
pub use pareto::ParetoPoint;
pub use pareto_bnb::{FrontierConstraints, FrontierOutcome, ParetoStats};
pub use space::{Candidate, ComponentChoices, SearchSpace, SpaceError};
pub use sweep::{SlaSweep, SweepPoint};
