//! Branch-and-bound search with an admissible cost lower bound.
//!
//! A depth-first traversal assigns components left to right. For a partial
//! assignment, `TCO ≥ cost-so-far + Σ min-cost(remaining components)`
//! because the penalty term is non-negative. Whenever that bound meets or
//! exceeds the best complete TCO found so far, the whole subtree is pruned.
//!
//! Exact for [`Objective::MinTco`]; the outcome's evaluation list contains
//! only the assignments actually visited, so Fig. 10-style full tables
//! should use [`crate::exhaustive`] or [`crate::pruned`] instead.

use uptime_core::{MoneyPerMonth, TcoModel};

use crate::evaluate::Evaluation;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Runs branch-and-bound minimization of total TCO.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{branch_bound, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = branch_bound::search(&space, &case_study::tco_model());
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel) -> SearchOutcome {
    // Suffix minima of component costs: tail_min[i] = Σ_{j≥i} min_cost(j).
    let n = space.len();
    let mut tail_min = vec![MoneyPerMonth::ZERO; n + 1];
    for i in (0..n).rev() {
        tail_min[i] = tail_min[i + 1] + space.components()[i].min_cost();
    }

    let mut state = State {
        space,
        model,
        tail_min,
        best: None,
        evaluations: Vec::new(),
        stats: SearchStats::default(),
        assignment: vec![0; n],
    };
    descend(&mut state, 0, MoneyPerMonth::ZERO);

    let State {
        evaluations, stats, ..
    } = state;
    SearchOutcome::from_evaluations(Objective::MinTco, evaluations, stats)
}

struct State<'a> {
    space: &'a SearchSpace,
    model: &'a TcoModel,
    tail_min: Vec<MoneyPerMonth>,
    best: Option<MoneyPerMonth>,
    evaluations: Vec<Evaluation>,
    stats: SearchStats,
    assignment: Vec<usize>,
}

fn subtree_size(space: &SearchSpace, depth: usize) -> u64 {
    space.components()[depth..]
        .iter()
        .map(|c| c.len() as u64)
        .product()
}

fn descend(state: &mut State<'_>, depth: usize, cost_so_far: MoneyPerMonth) {
    // Admissible bound: no subtree can undercut cost-so-far + cheapest tail.
    if let Some(best) = state.best {
        let bound = cost_so_far + state.tail_min[depth];
        if bound >= best {
            state.stats.skipped += subtree_size(state.space, depth);
            return;
        }
    }

    if depth == state.space.len() {
        let evaluation = Evaluation::evaluate(state.space, state.model, &state.assignment);
        state.stats.evaluated += 1;
        let total = evaluation.tco().total();
        if state.best.is_none_or(|b| total < b) {
            state.best = Some(total);
        }
        state.evaluations.push(evaluation);
        return;
    }

    for idx in 0..state.space.components()[depth].len() {
        state.assignment[depth] = idx;
        let candidate_cost = state.space.components()[depth].candidates()[idx].monthly_cost();
        descend(state, depth + 1, cost_so_far + candidate_cost);
    }
    state.assignment[depth] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn finds_paper_optimum() {
        let outcome = search(&paper_space(), &case_study::tco_model());
        let best = outcome.best().unwrap();
        assert_eq!(best.tco().total().value(), 1250.0);
        assert_eq!(best.assignment(), &[0, 1, 0]);
    }

    #[test]
    fn visits_no_more_than_exhaustive() {
        let space = paper_space();
        let model = case_study::tco_model();
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let bb = search(&space, &model);
        assert!(bb.stats().evaluated <= full.stats().evaluated);
        assert_eq!(
            u128::from(bb.stats().considered()),
            space.assignment_count(),
            "evaluated + skipped must cover the space"
        );
    }

    #[test]
    fn prunes_expensive_subtrees() {
        // With costs dominating penalties, entire subtrees get bounded away.
        let space = paper_space();
        let bb = search(&space, &case_study::tco_model());
        assert!(bb.stats().skipped > 0, "expected pruning on the case study");
    }

    #[test]
    fn agrees_with_exhaustive_on_hybrid_clouds() {
        let catalog = extended::hybrid_catalog();
        let model = case_study::tco_model();
        for cloud in [
            case_study::cloud_id(),
            extended::nimbus_id(),
            extended::stratus_id(),
        ] {
            let space =
                SearchSpace::from_catalog(&catalog, &cloud, &ComponentKind::paper_tiers()).unwrap();
            let full = exhaustive::search(&space, &model, Objective::MinTco);
            let bb = search(&space, &model);
            assert_eq!(
                full.best().unwrap().tco().total(),
                bb.best().unwrap().tco().total(),
                "{cloud}"
            );
        }
    }

    #[test]
    fn single_candidate_components() {
        use crate::space::{Candidate, ComponentChoices};
        use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "solo",
            vec![Candidate::new(
                "only",
                ClusterSpec::singleton("solo", Probability::new(0.01).unwrap(), 1.0).unwrap(),
                MoneyPerMonth::new(10.0).unwrap(),
                false,
            )],
        )
        .unwrap()])
        .unwrap();
        let outcome = search(&space, &case_study::tco_model());
        assert_eq!(outcome.stats().evaluated, 1);
        assert!(outcome.best().is_some());
    }
}
