//! Tight-bound, work-stealing parallel branch-and-bound — exact `MinTco`
//! over spaces enumeration cannot touch.
//!
//! The previous incarnation of this module bounded a partial assignment by
//! cost alone (`TCO ≥ cost-so-far + Σ min-cost(tail)`), which is admissible
//! but blind: on penalty-dominated spaces the cheap subtrees are exactly
//! the ones whose uptime collapses, and the cost bound never sees that
//! coming. This version keeps the cost term and adds the penalty term the
//! factorized evaluator makes cheap.
//!
//! # The bound
//!
//! For a prefix `p` (components `0..p` chosen) with [`crate::fast`]
//! accumulators `V_p = Π a_i` and `C_p = Σ C_HA,i`, and precomputed suffix
//! aggregates `minC_p = Σ_{i≥p} min_j cost(i,j)` and
//! `maxA_p = Π_{i≥p} max_j a(i,j)`, every completion `c` of `p` satisfies
//!
//! ```text
//! TCO(c) ≥ C_p + minC_p + penalty_lb(V_p · maxA_p)
//! ```
//!
//! because `U_s(c) ≤ Π a_i ≤ V_p · maxA_p` (Eq. 3's failover term only
//! subtracts uptime) and the Eq. 5 penalty is monotone non-increasing in
//! uptime. `penalty_lb` charges the clause for the *unrounded* slippage
//! hours (minus half an hour under nearest-hour billing), so billing
//! round-up can only increase the true penalty above the bound — see
//! DESIGN.md §12 for the full admissibility derivation, which mirrors the
//! §III.C exactness argument in [`crate::pruned`].
//!
//! # Exactness and determinism
//!
//! Pruning is strict — a subtree dies only when its bound exceeds the
//! incumbent (an *achieved* TCO) by more than a fixed slack — so every
//! leaf whose TCO ties the optimum survives in every execution, and the
//! [`crate::objective::RankKey`] tie-breakers (fewer clustered components,
//! then higher availability, then lexicographic-first) decide among them
//! exactly as [`crate::fast::search`] decides. Workers steal prefix tasks
//! from a shared counter and publish improvements to a process-wide
//! incumbent (`AtomicU64` over the bit pattern of a non-negative `f64`,
//! which orders like the float), so scheduling affects only *how much* is
//! pruned, never *what wins*: results are bit-identical across thread
//! counts. Visit/prune counters, by contrast, are timing-dependent under
//! parallelism and are reported for observability, not compared for
//! equality.
//!
//! Exact for [`Objective::MinTco`] only; the outcome is streaming (the
//! evaluation list holds just the winner), so Fig. 10-style full tables
//! should use [`crate::exhaustive`] or [`crate::pruned`] instead.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::thread;
use serde::{Deserialize, Serialize};
use uptime_core::{Probability, RoundingPolicy, TcoModel};

use crate::fast::{self, Accum, CandidateTerms, FastEvaluator};
use crate::objective::{Objective, RankKey};
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Absolute slack (dollars) subtracted from every bound before comparing
/// against the incumbent. The bound and the leaf evaluation associate
/// floating-point sums differently, so a bound can exceed the true TCO of
/// its own subtree's optimum by a few ulps; the slack absorbs that noise
/// (≤ ~1e-10 for realistic magnitudes) without giving up measurable
/// pruning power. Without it, an ulp-high bound could prune a tie-optimal
/// leaf and flip a tie-break.
const BOUND_SLACK: f64 = 1e-6;

/// How many prefix tasks to aim for per worker. More tasks → finer work
/// stealing (better load balance when subtree costs are skewed by
/// pruning); fewer → less per-task overhead.
const TASKS_PER_THREAD: usize = 8;

/// Branch-and-bound instrumentation beyond [`SearchStats`] — the shape of
/// the search tree actually walked. Exposed as `optimizer.bnb.*` counters
/// by [`search_with_threads_recorded`] and serialized into `BENCH_PR5.json`.
///
/// Under parallelism these counts depend on incumbent-propagation timing
/// and are **not** deterministic across runs or thread counts (the argmin
/// is — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BnbStats {
    /// Worker threads the search ran on.
    pub threads: u64,
    /// Prefix tasks pulled from the steal queue.
    pub tasks: u64,
    /// Interior tree nodes expanded (bound computed, children considered).
    pub nodes_visited: u64,
    /// Complete assignments evaluated at leaves.
    pub leaves_evaluated: u64,
    /// Bound cutoffs: subtrees discarded without descending.
    pub subtrees_pruned: u64,
    /// Complete assignments inside those discarded subtrees.
    pub variants_skipped: u64,
}

/// Per-component suffix aggregates the bound is built from. Shared with
/// [`crate::pareto_bnb`], whose frontier prune reuses the same admissible
/// per-prefix cost floor and availability ceiling.
pub(crate) struct Bounds {
    /// `minC_p = Σ_{i≥p} min_j cost(i, j)`; index `n` is 0.
    pub(crate) suffix_min_cost: Vec<f64>,
    /// `maxA_p = Π_{i≥p} max_j a(i, j)`; index `n` is 1.
    pub(crate) suffix_max_avail: Vec<f64>,
    /// `Π_{i≥p} k_i` (saturating): variants under a depth-`p` node.
    pub(crate) suffix_size: Vec<u64>,
}

impl Bounds {
    pub(crate) fn new(terms: &[Vec<CandidateTerms>]) -> Self {
        let n = terms.len();
        let mut suffix_min_cost = vec![0.0; n + 1];
        let mut suffix_max_avail = vec![1.0; n + 1];
        let mut suffix_size = vec![1u64; n + 1];
        for p in (0..n).rev() {
            let min_cost = terms[p]
                .iter()
                .map(|t| t.cost)
                .fold(f64::INFINITY, f64::min);
            let max_avail = terms[p]
                .iter()
                .map(|t| t.availability)
                .fold(0.0f64, f64::max);
            suffix_min_cost[p] = suffix_min_cost[p + 1] + min_cost;
            suffix_max_avail[p] = suffix_max_avail[p + 1] * max_avail;
            suffix_size[p] = suffix_size[p + 1].saturating_mul(terms[p].len() as u64);
        }
        Bounds {
            suffix_min_cost,
            suffix_max_avail,
            suffix_size,
        }
    }

    /// Admissible lower bound on the TCO of every completion of a prefix
    /// whose accumulators are `acc` and whose next unassigned component is
    /// `depth`.
    fn lower_bound(&self, model: &TcoModel, depth: usize, acc: &Accum) -> f64 {
        let uptime_ub = Probability::saturating(acc.avail * self.suffix_max_avail[depth]);
        let raw_hours = model.sla().slippage_hours_per_month(uptime_ub);
        // Billing can only round the true raw hours *up* under Exact/Ceil;
        // NearestHour can shave at most half an hour off.
        let hours_lb = match model.rounding() {
            RoundingPolicy::NearestHour => (raw_hours - 0.5).max(0.0),
            RoundingPolicy::Exact | RoundingPolicy::CeilHour => raw_hours,
        };
        let penalty_lb = model.penalty().charge(hours_lb).value();
        acc.cost + self.suffix_min_cost[depth] + penalty_lb
    }
}

/// The admissible lower bound for a partial assignment, exposed so the
/// property suite can check `bound(prefix) ≤ TCO(completion)` for every
/// completion of random prefixes (`crates/optimizer/tests/bnb_properties.rs`).
///
/// `prefix` assigns candidates to components `0..prefix.len()`; the bound
/// covers all ways of completing the remaining components.
///
/// # Panics
///
/// Panics if `prefix` is longer than the component list or indexes a
/// candidate out of range.
#[must_use]
pub fn prefix_bound(space: &SearchSpace, model: &TcoModel, prefix: &[usize]) -> f64 {
    let fast = FastEvaluator::new(space, model);
    let terms = fast.terms();
    assert!(
        prefix.len() <= terms.len(),
        "prefix longer than component list"
    );
    let bounds = Bounds::new(terms);
    let mut acc = Accum::IDENTITY;
    for (i, &idx) in prefix.iter().enumerate() {
        acc = acc.push(&terms[i][idx]);
    }
    bounds.lower_bound(model, prefix.len(), &acc)
}

/// Single-threaded branch-and-bound minimization of total TCO. Exact:
/// returns the same winner as [`crate::fast::search`] under
/// [`Objective::MinTco`], visiting (usually far) fewer assignments.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{branch_bound, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = branch_bound::search(&space, &case_study::tco_model());
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel) -> SearchOutcome {
    search_with_threads(space, model, 1)
}

/// [`search`] across `threads` workers stealing prefix tasks; `0` means
/// the machine's available parallelism. The winner is bit-identical for
/// every thread count.
#[must_use]
pub fn search_with_threads(space: &SearchSpace, model: &TcoModel, threads: usize) -> SearchOutcome {
    search_with_stats(space, model, threads).0
}

/// [`search_with_threads`] with observability: wraps the run in an
/// `optimizer.bnb.search` span and flushes the [`BnbStats`] counters
/// (`optimizer.bnb.{tasks,nodes_visited,leaves_evaluated,subtrees_pruned,`
/// `variants_skipped}` plus the `optimizer.bnb.threads` gauge) when it
/// finishes. The descent itself never touches the recorder. `parent`
/// hangs a matching trace span carrying the same tree-shape counters as
/// attributes under the caller's request trace; pass
/// [`uptime_obs::TraceSpan::disabled`] outside a traced request.
#[must_use]
pub fn search_with_threads_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.bnb.search");
    let mut trace_span = parent.child("optimizer.bnb.search");
    let (outcome, stats) = search_with_stats(space, model, threads);
    rec.gauge_set("optimizer.bnb.threads", stats.threads as f64);
    rec.counter_add("optimizer.bnb.tasks", stats.tasks);
    rec.counter_add("optimizer.bnb.nodes_visited", stats.nodes_visited);
    rec.counter_add("optimizer.bnb.leaves_evaluated", stats.leaves_evaluated);
    rec.counter_add("optimizer.bnb.subtrees_pruned", stats.subtrees_pruned);
    rec.counter_add("optimizer.bnb.variants_skipped", stats.variants_skipped);
    trace_span.attr_u64("tasks", stats.tasks);
    trace_span.attr_u64("nodes_visited", stats.nodes_visited);
    trace_span.attr_u64("leaves_evaluated", stats.leaves_evaluated);
    trace_span.attr_u64("subtrees_pruned", stats.subtrees_pruned);
    trace_span.attr_u64("variants_skipped", stats.variants_skipped);
    outcome
}

/// [`search_with_threads`] returning the tree-shape instrumentation
/// alongside the outcome — what the bench bin serializes.
#[must_use]
pub fn search_with_stats(
    space: &SearchSpace,
    model: &TcoModel,
    threads: usize,
) -> (SearchOutcome, BnbStats) {
    let threads = if threads == 0 {
        crate::parallel::default_threads()
    } else {
        threads
    };
    let fast = FastEvaluator::new(space, model);
    let terms = fast.terms();
    let n = terms.len();
    let bounds = Bounds::new(terms);

    // Seed the incumbent with two cheap achieved TCOs so the very first
    // tasks already prune: the all-min-cost assignment (wins when
    // penalties stay small) and the all-max-availability assignment (wins
    // when penalties dominate).
    let min_cost_seed: Vec<usize> = terms
        .iter()
        .map(|comp| argmin_by(comp, |t| t.cost))
        .collect();
    let max_avail_seed: Vec<usize> = terms
        .iter()
        .map(|comp| argmin_by(comp, |t| -t.availability))
        .collect();
    let seed_total = fast
        .rank_key(&min_cost_seed)
        .total
        .value()
        .min(fast.rank_key(&max_avail_seed).total.value());
    let incumbent = AtomicU64::new(seed_total.to_bits());

    // Shard the top of the tree into prefix tasks: the smallest depth
    // whose prefix count gives every worker several tasks to steal. Never
    // split the last level — leaves must stay under an interior node so
    // the bound gets a chance to cut them.
    let target_tasks = threads.saturating_mul(TASKS_PER_THREAD).max(1);
    let mut split_depth = 0usize;
    let mut task_count = 1usize;
    while split_depth + 1 < n && task_count < target_tasks {
        task_count = task_count.saturating_mul(terms[split_depth].len());
        split_depth += 1;
    }

    let next_task = AtomicUsize::new(0);
    let run_worker = || -> (TaskWins, BnbStats) {
        let mut walker = Walker {
            model,
            terms,
            bounds: &bounds,
            incumbent: &incumbent,
            digits: vec![0usize; n],
            best: None,
            stats: BnbStats::default(),
        };
        let mut found = Vec::new();
        loop {
            let task = next_task.fetch_add(1, Ordering::Relaxed);
            if task >= task_count {
                break;
            }
            walker.stats.tasks += 1;
            walker.best = None;
            let acc = walker.seed_prefix(task, split_depth);
            walker.enter(split_depth, acc);
            if let Some((key, digits)) = walker.best.take() {
                found.push((task, key, digits));
            }
        }
        (found, walker.stats)
    };

    let per_worker: Vec<(TaskWins, BnbStats)> = if threads == 1 {
        vec![run_worker()]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|_| run_worker()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("branch-and-bound worker panicked"))
                .collect()
        })
        .expect("thread scope panicked")
    };

    let mut stats = BnbStats {
        threads: threads as u64,
        ..BnbStats::default()
    };
    let mut candidates: TaskWins = Vec::new();
    for (found, worker_stats) in per_worker {
        stats.tasks += worker_stats.tasks;
        stats.nodes_visited += worker_stats.nodes_visited;
        stats.leaves_evaluated += worker_stats.leaves_evaluated;
        stats.subtrees_pruned += worker_stats.subtrees_pruned;
        stats.variants_skipped += worker_stats.variants_skipped;
        candidates.extend(found);
    }

    // Merge in task (= lexicographic prefix) order with strict
    // replacement: among equal keys the earliest assignment wins, exactly
    // as the streaming enumeration tie-breaks.
    candidates.sort_by_key(|(task, _, _)| *task);
    let objective = Objective::MinTco;
    let mut best: Option<(RankKey, Vec<usize>)> = None;
    for (_, key, digits) in candidates {
        let improved = match &best {
            None => true,
            Some((b, _)) => objective.better_key(&key, b),
        };
        if improved {
            best = Some((key, digits));
        }
    }
    let (_, best_digits) = best.expect("non-empty spaces always yield a winner");
    let winner = fast.evaluate(&best_digits);
    let outcome = SearchOutcome::from_evaluations(
        objective,
        vec![winner],
        SearchStats {
            evaluated: stats.leaves_evaluated,
            skipped: stats.variants_skipped,
        },
    );
    (outcome, stats)
}

/// Per-task winners one worker collected: `(task index, rank key, digits)`.
type TaskWins = Vec<(usize, RankKey, Vec<usize>)>;

fn argmin_by(comp: &[CandidateTerms], score: impl Fn(&CandidateTerms) -> f64) -> usize {
    let mut best = 0usize;
    for (idx, t) in comp.iter().enumerate().skip(1) {
        if score(t) < score(&comp[best]) {
            best = idx;
        }
    }
    best
}

/// One worker's depth-first descent state. The digit/accumulator stacks
/// are reused across tasks, so the hot loop allocates nothing.
struct Walker<'a> {
    model: &'a TcoModel,
    terms: &'a [Vec<CandidateTerms>],
    bounds: &'a Bounds,
    incumbent: &'a AtomicU64,
    digits: Vec<usize>,
    best: Option<(RankKey, Vec<usize>)>,
    stats: BnbStats,
}

impl Walker<'_> {
    /// Decodes a prefix task index (mixed radix over components
    /// `0..split_depth`, most significant first — the same flat-index
    /// layout [`FastEvaluator::cursor_at`] shards by) into the digit stack
    /// and returns the prefix accumulators.
    fn seed_prefix(&mut self, task: usize, split_depth: usize) -> Accum {
        let mut rem = task;
        for pos in (0..split_depth).rev() {
            let radix = self.terms[pos].len();
            self.digits[pos] = rem % radix;
            rem /= radix;
        }
        debug_assert_eq!(rem, 0, "task index out of range");
        let mut acc = Accum::IDENTITY;
        for pos in 0..split_depth {
            acc = acc.push(&self.terms[pos][self.digits[pos]]);
        }
        acc
    }

    /// Bound-checks the subtree rooted at `depth`, then descends into it.
    fn enter(&mut self, depth: usize, acc: Accum) {
        if depth < self.digits.len() {
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            if self.bounds.lower_bound(self.model, depth, &acc) - BOUND_SLACK > incumbent {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth];
                return;
            }
        }
        self.descend(depth, acc);
    }

    fn descend(&mut self, depth: usize, acc: Accum) {
        if depth == self.digits.len() {
            self.leaf(&acc);
            return;
        }
        self.stats.nodes_visited += 1;
        let last = depth + 1 == self.digits.len();
        for idx in 0..self.terms[depth].len() {
            self.digits[depth] = idx;
            let child = acc.push(&self.terms[depth][idx]);
            if last {
                self.leaf(&child);
                continue;
            }
            // Bound each child before recursing: one prune here skips the
            // whole child subtree without a stack frame.
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            if self.bounds.lower_bound(self.model, depth + 1, &child) - BOUND_SLACK > incumbent {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth + 1];
                continue;
            }
            self.descend(depth + 1, child);
        }
    }

    fn leaf(&mut self, acc: &Accum) {
        self.stats.leaves_evaluated += 1;
        let key = fast::finish(self.model, acc).2;
        let improved = match &self.best {
            None => true,
            Some((b, _)) => Objective::MinTco.better_key(&key, b),
        };
        if improved {
            let total = key.total.value();
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            if total < incumbent {
                self.incumbent.fetch_min(total.to_bits(), Ordering::Relaxed);
            }
            if let Some((k, d)) = &mut self.best {
                *k = key;
                d.clear();
                d.extend_from_slice(&self.digits);
            } else {
                self.best = Some((key, self.digits.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn finds_paper_optimum() {
        let outcome = search(&paper_space(), &case_study::tco_model());
        let best = outcome.best().unwrap();
        assert_eq!(best.tco().total().value(), 1250.0);
        assert_eq!(best.assignment(), &[0, 1, 0]);
    }

    #[test]
    fn visits_no_more_than_exhaustive() {
        let space = paper_space();
        let model = case_study::tco_model();
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let bb = search(&space, &model);
        assert!(bb.stats().evaluated <= full.stats().evaluated);
        assert_eq!(
            u128::from(bb.stats().considered()),
            space.assignment_count(),
            "evaluated + skipped must cover the space"
        );
    }

    #[test]
    fn prunes_expensive_subtrees() {
        use crate::space::{Candidate, ComponentChoices};
        use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};
        // Component 0 offers a cheap and a ruinously expensive candidate
        // with the same availability; once any cheap-side leaf becomes the
        // incumbent, the expensive prefix's cost bound alone exceeds it
        // and that whole subtree must die unvisited.
        let component = |name: &str, costs: &[f64]| {
            ComponentChoices::new(
                name,
                costs
                    .iter()
                    .enumerate()
                    .map(|(i, &cost)| {
                        Candidate::new(
                            format!("{name}-{i}"),
                            ClusterSpec::singleton(name, Probability::new(0.0001).unwrap(), 1.0)
                                .unwrap(),
                            MoneyPerMonth::new(cost).unwrap(),
                            false,
                        )
                    })
                    .collect(),
            )
            .unwrap()
        };
        let space = SearchSpace::new(vec![
            component("gate", &[100.0, 1_000_000.0]),
            component("tail", &[10.0, 20.0, 30.0]),
        ])
        .unwrap();
        let (outcome, stats) = search_with_stats(&space, &case_study::tco_model(), 1);
        assert!(stats.subtrees_pruned > 0, "expected a bound cutoff");
        assert!(
            outcome.stats().skipped >= 3,
            "expensive subtree has 3 leaves"
        );
        assert_eq!(
            u128::from(outcome.stats().considered()),
            space.assignment_count()
        );
    }

    #[test]
    fn agrees_with_exhaustive_on_hybrid_clouds() {
        let catalog = extended::hybrid_catalog();
        let model = case_study::tco_model();
        for cloud in [
            case_study::cloud_id(),
            extended::nimbus_id(),
            extended::stratus_id(),
        ] {
            let space =
                SearchSpace::from_catalog(&catalog, &cloud, &ComponentKind::paper_tiers()).unwrap();
            let full = exhaustive::search(&space, &model, Objective::MinTco);
            let bb = search(&space, &model);
            assert_eq!(
                full.best().unwrap().tco().total(),
                bb.best().unwrap().tco().total(),
                "{cloud}"
            );
        }
    }

    #[test]
    fn single_candidate_components() {
        use crate::space::{Candidate, ComponentChoices};
        use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "solo",
            vec![Candidate::new(
                "only",
                ClusterSpec::singleton("solo", Probability::new(0.01).unwrap(), 1.0).unwrap(),
                MoneyPerMonth::new(10.0).unwrap(),
                false,
            )],
        )
        .unwrap()])
        .unwrap();
        let outcome = search(&space, &case_study::tco_model());
        assert_eq!(outcome.stats().evaluated, 1);
        assert!(outcome.best().is_some());
    }

    #[test]
    fn thread_counts_agree_bit_identically() {
        let catalog = extended::hybrid_catalog();
        let model = case_study::tco_model();
        let space = SearchSpace::from_catalog(
            &catalog,
            &extended::nimbus_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let serial = search_with_threads(&space, &model, 1);
        for threads in [2, 4, 8] {
            let parallel = search_with_threads(&space, &model, threads);
            assert_eq!(
                serial.best().unwrap(),
                parallel.best().unwrap(),
                "{threads} threads"
            );
            assert_eq!(
                u128::from(parallel.stats().considered()),
                space.assignment_count(),
                "{threads} threads must still cover the space"
            );
        }
    }

    #[test]
    fn matches_fast_search_winner_exactly() {
        let space = paper_space();
        let model = case_study::tco_model();
        let streaming = fast::search(&space, &model, Objective::MinTco);
        let bb = search(&space, &model);
        assert_eq!(streaming.best().unwrap(), bb.best().unwrap());
    }

    #[test]
    fn prefix_bound_is_admissible_on_the_case_study() {
        let space = paper_space();
        let model = case_study::tco_model();
        let fast_eval = FastEvaluator::new(&space, &model);
        for depth in 0..=space.len() {
            for assignment in space.assignments() {
                let prefix = &assignment[..depth];
                let bound = prefix_bound(&space, &model, prefix);
                // Every full assignment extending this prefix must cost at
                // least the bound.
                for completion in space.assignments() {
                    if completion[..depth] == *prefix {
                        let tco = fast_eval.evaluate(&completion).tco().total().value();
                        assert!(
                            bound <= tco + 1e-9,
                            "bound {bound} > tco {tco} for prefix {prefix:?} -> {completion:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recorded_search_is_bit_identical_and_counts() {
        let space = paper_space();
        let model = case_study::tco_model();
        let registry = uptime_obs::MetricsRegistry::new();
        let plain = search_with_threads(&space, &model, 1);
        let recorded = search_with_threads_recorded(
            &space,
            &model,
            1,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(
            plain.best().unwrap(),
            recorded.best().unwrap(),
            "instrumentation must not change results"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("optimizer.bnb.search.calls"), Some(1));
        assert_eq!(snap.histogram("optimizer.bnb.search.ns").unwrap().count, 1);
        let visited = snap.counter("optimizer.bnb.leaves_evaluated").unwrap();
        let skipped = snap.counter("optimizer.bnb.variants_skipped").unwrap();
        assert_eq!(u128::from(visited + skipped), space.assignment_count());
        assert_eq!(snap.gauge("optimizer.bnb.threads"), Some(1.0));
    }
}
