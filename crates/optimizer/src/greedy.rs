//! Greedy hill-climbing heuristic (ablation baseline).
//!
//! Starts from the all-baseline assignment (or all-zeros when a component
//! lacks a baseline) and repeatedly applies the single-component change
//! that most improves the objective, stopping at a local optimum. Runs in
//! `O(rounds × n × k)` evaluations — polynomial, unlike the exact searches —
//! but can miss the global optimum when improvements require changing two
//! components at once (e.g. a 100 % SLA where only the full-HA permutation
//! avoids a huge penalty).

use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Runs greedy hill climbing.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{greedy, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = greedy::search(&space, &case_study::tco_model(), Objective::MinTco);
/// // On the case study the greedy path happens to find the optimum.
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let mut stats = SearchStats::default();
    let mut evaluations = Vec::new();

    let start = space
        .baseline_assignment()
        .unwrap_or_else(|| vec![0; space.len()]);
    let mut current = Evaluation::evaluate(space, model, &start);
    stats.evaluated += 1;
    evaluations.push(current.clone());

    loop {
        let mut best_move: Option<Evaluation> = None;
        for (i, comp) in space.components().iter().enumerate() {
            for idx in 0..comp.len() {
                if current.assignment()[i] == idx {
                    continue;
                }
                let mut assignment = current.assignment().to_vec();
                assignment[i] = idx;
                let candidate = Evaluation::evaluate(space, model, &assignment);
                stats.evaluated += 1;
                let beats_current = objective.better(&candidate, &current);
                let beats_best = best_move
                    .as_ref()
                    .is_none_or(|b| objective.better(&candidate, b));
                if beats_current && beats_best {
                    best_move = Some(candidate.clone());
                }
                evaluations.push(candidate);
            }
        }
        match best_move {
            Some(next) => current = next,
            None => break,
        }
    }

    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn finds_paper_optimum_on_case_study() {
        // On the case study the greedy path happens to reach the optimum:
        // baseline ($4300) → RAID-1 ($1250) → no better single move.
        let outcome = search(&paper_space(), &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
    }

    #[test]
    fn never_beats_exhaustive() {
        let space = paper_space();
        let model = case_study::tco_model();
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let greedy = search(&space, &model, Objective::MinTco);
        assert!(greedy.best().unwrap().tco().total() >= full.best().unwrap().tco().total());
    }

    #[test]
    fn min_penalty_risk_objective() {
        let outcome = search(
            &paper_space(),
            &case_study::tco_model(),
            Objective::MinPenaltyRisk,
        );
        // Greedy under MinPenaltyRisk reaches option #5.
        let best = outcome.best().unwrap();
        assert!(!best.tco().expects_penalty());
        assert_eq!(best.tco().total().value(), 1350.0);
    }

    #[test]
    fn terminates_on_single_choice_space() {
        use crate::space::{Candidate, ComponentChoices};
        use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "solo",
            vec![Candidate::new(
                "only",
                ClusterSpec::singleton("solo", Probability::new(0.01).unwrap(), 1.0).unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )],
        )
        .unwrap()])
        .unwrap();
        let outcome = search(&space, &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.stats().evaluated, 1);
    }
}
