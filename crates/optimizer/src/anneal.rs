//! Simulated-annealing heuristic (ablation baseline).
//!
//! Deterministically seeded so that benchmark runs are reproducible.
//! Useful once spaces grow past exhaustive reach (`k^n` in the millions);
//! on the paper's n = 3 space it is pure overhead and exists as a
//! comparison point.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Starting temperature, in TCO dollars.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// Total proposal steps.
    pub steps: u32,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            initial_temperature: 2000.0,
            cooling: 0.995,
            steps: 2000,
        }
    }
}

/// Runs simulated annealing from the baseline assignment with the given
/// seed and schedule.
#[must_use]
pub fn search_with(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    seed: u64,
    schedule: Schedule,
) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SearchStats::default();

    let start = space
        .baseline_assignment()
        .unwrap_or_else(|| vec![0; space.len()]);
    let mut current = Evaluation::evaluate(space, model, &start);
    stats.evaluated += 1;
    let mut best = current.clone();
    let mut evaluations = vec![current.clone()];

    let mut temperature = schedule.initial_temperature;
    for _ in 0..schedule.steps {
        // Propose: re-pick one component's candidate uniformly.
        let comp = rng.random_range(0..space.len());
        let k = space.components()[comp].len();
        if k == 1 {
            temperature *= schedule.cooling;
            continue;
        }
        let mut idx = rng.random_range(0..k);
        if idx == current.assignment()[comp] {
            idx = (idx + 1) % k;
        }
        let mut assignment = current.assignment().to_vec();
        assignment[comp] = idx;
        let proposal = Evaluation::evaluate(space, model, &assignment);
        stats.evaluated += 1;

        let delta = proposal.tco().total().value() - current.tco().total().value();
        let accept = delta <= 0.0 || {
            let u: f64 = rng.random();
            u < (-delta / temperature.max(f64::MIN_POSITIVE)).exp()
        };
        if accept {
            current = proposal.clone();
            if objective.better(&current, &best) {
                best = current.clone();
            }
        }
        evaluations.push(proposal);
        temperature *= schedule.cooling;
    }

    // Ensure the recorded best is in the evaluation list exactly once at
    // minimum; SearchOutcome re-derives best from the list, which includes
    // it already.
    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

/// Runs simulated annealing with the default schedule and a fixed seed.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{anneal, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = anneal::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert!(outcome.best().is_some());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_with(space, model, objective, 0x5EED, Schedule::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, extended, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn reaches_paper_optimum() {
        let outcome = search(&paper_space(), &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = paper_space();
        let model = case_study::tco_model();
        let a = search_with(&space, &model, Objective::MinTco, 7, Schedule::default());
        let b = search_with(&space, &model, Objective::MinTco, 7, Schedule::default());
        assert_eq!(
            a.best().unwrap().assignment(),
            b.best().unwrap().assignment()
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn never_beats_exhaustive() {
        let catalog = extended::hybrid_catalog();
        let space = SearchSpace::from_catalog(
            &catalog,
            &extended::nimbus_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        for seed in [1u64, 2, 3] {
            let sa = search_with(&space, &model, Objective::MinTco, seed, Schedule::default());
            assert!(
                sa.best().unwrap().tco().total() >= full.best().unwrap().tco().total(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn respects_step_budget() {
        let space = paper_space();
        let model = case_study::tco_model();
        let schedule = Schedule {
            steps: 50,
            ..Schedule::default()
        };
        let outcome = search_with(&space, &model, Objective::MinTco, 1, schedule);
        assert!(outcome.stats().evaluated <= 51);
    }

    #[test]
    fn single_choice_components_do_not_loop() {
        use crate::space::{Candidate, ComponentChoices};
        use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "solo",
            vec![Candidate::new(
                "only",
                ClusterSpec::singleton("solo", Probability::new(0.01).unwrap(), 1.0).unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )],
        )
        .unwrap()])
        .unwrap();
        let outcome = search(&space, &case_study::tco_model(), Objective::MinTco);
        assert_eq!(outcome.stats().evaluated, 1);
    }
}
