//! Branch-and-bound over series–parallel composition spaces — the
//! [`crate::branch_bound`] engine lifted to the topology fold.
//!
//! # The bound
//!
//! For a prefix `p` (leaves `0..p` chosen, in depth-first order) the fold
//! state carries the spine accumulators `V_p`, `C_p` and the mask `M_p`
//! (product of *completed* maximal parallel subtrees). Precompute, over
//! the remaining leaves:
//!
//! * `minC_p = Σ_{i≥p} min_j cost(i, j)` — costs add leaf-by-leaf
//!   regardless of context;
//! * `spineMaxA_p = Π_{i≥p, i on spine} max_j a(i, j)` — the spine product
//!   can only shrink by at most each remaining spine leaf's best factor;
//! * `parMaxA_p = Π_{s: lo_s ≥ p} A_s^max` over maximal parallel subtrees
//!   entirely right of `p`, where `A_s^max` folds every leaf of `s` at its
//!   maximum availability — admissible because series–parallel
//!   availability is monotone non-decreasing in each leaf availability.
//!
//! A parallel subtree *straddling* `p` is bounded by `1.0` (its factor is
//! a probability). Every completion `c` then satisfies
//!
//! ```text
//! U(c) ≤ V_p · M_p · spineMaxA_p · parMaxA_p
//! TCO(c) ≥ C_p + minC_p + penalty_lb(U_ub)
//! ```
//!
//! with the same rounding-conservative `penalty_lb` as the serial bound
//! (see DESIGN.md §14 for the derivation). On a pure-series space
//! `M_p = parMaxA_p = 1.0` and `spineMaxA_p` is the serial suffix product,
//! so the bound — and therefore the winner — degenerates bit-identically
//! to [`crate::branch_bound`].
//!
//! Exactness and thread-count independence follow exactly as in the
//! serial engine: strict pruning against an achieved incumbent with a
//! fixed slack, per-task winners merged in lexicographic prefix order.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::thread;
use uptime_core::{Probability, RoundingPolicy, TcoModel};

use crate::branch_bound::BnbStats;
use crate::composition::{CompositionEvaluator, CompositionSpace, FoldState};
use crate::fast::{self, CandidateTerms};
use crate::objective::{Objective, RankKey};
use crate::outcome::{SearchOutcome, SearchStats};

/// Same slack as the serial engine: absorbs association noise between the
/// bound's and the leaf's floating-point sums without pruning tie-optimal
/// leaves.
const BOUND_SLACK: f64 = 1e-6;

/// Prefix tasks per worker, matching the serial engine's stealing grain.
const TASKS_PER_THREAD: usize = 8;

/// Per-leaf suffix aggregates of the composition bound. Shared with
/// [`crate::pareto_bnb`]'s composition frontier prune.
pub(crate) struct Bounds {
    /// `minC_p = Σ_{i≥p} min_j cost(i, j)`; index `n` is 0.
    pub(crate) suffix_min_cost: Vec<f64>,
    /// `spineMaxA_p = Π_{i≥p, spine} max_j a(i, j)`; index `n` is 1.
    pub(crate) spine_suffix_max: Vec<f64>,
    /// `parMaxA_p = Π_{s: lo_s ≥ p} A_s^max`; index `n` is 1.
    pub(crate) par_suffix_max: Vec<f64>,
    /// `Π_{i≥p} k_i` (saturating): variants under a depth-`p` node.
    pub(crate) suffix_size: Vec<u64>,
}

impl Bounds {
    pub(crate) fn new(space: &CompositionSpace, terms: &[Vec<CandidateTerms>]) -> Self {
        let n = terms.len();
        let leaf_max: Vec<f64> = terms
            .iter()
            .map(|comp| comp.iter().map(|t| t.availability).fold(0.0f64, f64::max))
            .collect();
        let factors = space.parallel_factors(&leaf_max);

        let mut suffix_min_cost = vec![0.0; n + 1];
        let mut spine_suffix_max = vec![1.0; n + 1];
        let mut par_suffix_max = vec![1.0; n + 1];
        let mut suffix_size = vec![1u64; n + 1];
        let spine = space.spine_leaf();
        for p in (0..n).rev() {
            let min_cost = terms[p]
                .iter()
                .map(|t| t.cost)
                .fold(f64::INFINITY, f64::min);
            suffix_min_cost[p] = suffix_min_cost[p + 1] + min_cost;
            spine_suffix_max[p] = if spine[p] {
                spine_suffix_max[p + 1] * leaf_max[p]
            } else {
                spine_suffix_max[p + 1]
            };
            par_suffix_max[p] = par_suffix_max[p + 1];
            for &(lo, a) in &factors {
                if lo == p {
                    par_suffix_max[p] *= a;
                }
            }
            suffix_size[p] = suffix_size[p + 1].saturating_mul(terms[p].len() as u64);
        }
        Bounds {
            suffix_min_cost,
            spine_suffix_max,
            par_suffix_max,
            suffix_size,
        }
    }

    /// Admissible lower bound on the TCO of every completion of a prefix
    /// whose fold state is `state` and whose next unassigned leaf is
    /// `depth`.
    fn lower_bound(&self, model: &TcoModel, depth: usize, state: &FoldState) -> f64 {
        let avail_ub = state.spine.avail
            * state.mask
            * self.spine_suffix_max[depth]
            * self.par_suffix_max[depth];
        let uptime_ub = Probability::saturating(avail_ub);
        let raw_hours = model.sla().slippage_hours_per_month(uptime_ub);
        let hours_lb = match model.rounding() {
            RoundingPolicy::NearestHour => (raw_hours - 0.5).max(0.0),
            RoundingPolicy::Exact | RoundingPolicy::CeilHour => raw_hours,
        };
        let penalty_lb = model.penalty().charge(hours_lb).value();
        state.spine.cost + state.extra_cost + self.suffix_min_cost[depth] + penalty_lb
    }
}

/// The admissible lower bound for a partial assignment, exposed so the
/// property suite can check `bound(prefix) ≤ TCO(completion)` for every
/// completion over DAG topologies
/// (`crates/optimizer/tests/composition_properties.rs`).
///
/// # Panics
///
/// Panics if `prefix` is longer than the leaf list or indexes a candidate
/// out of range.
#[must_use]
pub fn prefix_bound(space: &CompositionSpace, model: &TcoModel, prefix: &[usize]) -> f64 {
    let eval = CompositionEvaluator::new(space, model);
    let terms = eval.terms();
    assert!(prefix.len() <= terms.len(), "prefix longer than leaf list");
    let bounds = Bounds::new(space, terms);
    let mut states = vec![eval.base_state(); prefix.len() + 1];
    for (i, &idx) in prefix.iter().enumerate() {
        eval.step_into(&mut states, i, idx);
    }
    bounds.lower_bound(model, prefix.len(), &states[prefix.len()])
}

/// Single-threaded exact `MinTco` branch-and-bound over a composition
/// space. On pure-series spaces the winner is bit-identical to
/// [`crate::branch_bound::search`].
#[must_use]
pub fn search(space: &CompositionSpace, model: &TcoModel) -> SearchOutcome {
    search_with_threads(space, model, 1)
}

/// [`search`] across `threads` workers stealing prefix tasks; `0` means
/// the machine's available parallelism. The winner is bit-identical for
/// every thread count.
#[must_use]
pub fn search_with_threads(
    space: &CompositionSpace,
    model: &TcoModel,
    threads: usize,
) -> SearchOutcome {
    search_with_stats(space, model, threads).0
}

/// [`search_with_threads`] with observability: the run wrapped in an
/// `optimizer.composition_bnb.search` span, the [`BnbStats`] counters
/// flushed as `optimizer.composition_bnb.*` once at the end. `parent`
/// hangs a matching trace span carrying the same tree-shape counters as
/// attributes under the caller's request trace; pass
/// [`uptime_obs::TraceSpan::disabled`] outside a traced request.
#[must_use]
pub fn search_with_threads_recorded(
    space: &CompositionSpace,
    model: &TcoModel,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.composition_bnb.search");
    let mut trace_span = parent.child("optimizer.composition_bnb.search");
    let (outcome, stats) = search_with_stats(space, model, threads);
    rec.gauge_set("optimizer.composition_bnb.threads", stats.threads as f64);
    rec.counter_add("optimizer.composition_bnb.tasks", stats.tasks);
    rec.counter_add(
        "optimizer.composition_bnb.nodes_visited",
        stats.nodes_visited,
    );
    rec.counter_add(
        "optimizer.composition_bnb.leaves_evaluated",
        stats.leaves_evaluated,
    );
    rec.counter_add(
        "optimizer.composition_bnb.subtrees_pruned",
        stats.subtrees_pruned,
    );
    rec.counter_add(
        "optimizer.composition_bnb.variants_skipped",
        stats.variants_skipped,
    );
    trace_span.attr_u64("tasks", stats.tasks);
    trace_span.attr_u64("nodes_visited", stats.nodes_visited);
    trace_span.attr_u64("leaves_evaluated", stats.leaves_evaluated);
    trace_span.attr_u64("subtrees_pruned", stats.subtrees_pruned);
    trace_span.attr_u64("variants_skipped", stats.variants_skipped);
    outcome
}

/// [`search_with_threads`] returning the tree-shape instrumentation
/// alongside the outcome — what `composition_bench` serializes.
#[must_use]
pub fn search_with_stats(
    space: &CompositionSpace,
    model: &TcoModel,
    threads: usize,
) -> (SearchOutcome, BnbStats) {
    let threads = if threads == 0 {
        crate::parallel::default_threads()
    } else {
        threads
    };
    let eval = CompositionEvaluator::new(space, model);
    let terms = eval.terms();
    let n = terms.len();
    let bounds = Bounds::new(space, terms);

    // Seed the incumbent with the all-min-cost and all-max-availability
    // assignments, as the serial engine does.
    let min_cost_seed: Vec<usize> = terms
        .iter()
        .map(|comp| argmin_by(comp, |t| t.cost))
        .collect();
    let max_avail_seed: Vec<usize> = terms
        .iter()
        .map(|comp| argmin_by(comp, |t| -t.availability))
        .collect();
    let seed_total = eval
        .rank_key(&min_cost_seed)
        .total
        .value()
        .min(eval.rank_key(&max_avail_seed).total.value());
    let incumbent = AtomicU64::new(seed_total.to_bits());

    let target_tasks = threads.saturating_mul(TASKS_PER_THREAD).max(1);
    let mut split_depth = 0usize;
    let mut task_count = 1usize;
    while split_depth + 1 < n && task_count < target_tasks {
        task_count = task_count.saturating_mul(terms[split_depth].len());
        split_depth += 1;
    }

    let next_task = AtomicUsize::new(0);
    let run_worker = || -> (TaskWins, BnbStats) {
        let mut walker = Walker {
            model,
            eval: &eval,
            bounds: &bounds,
            incumbent: &incumbent,
            digits: vec![0usize; n],
            states: vec![eval.base_state(); n + 1],
            best: None,
            stats: BnbStats::default(),
        };
        let mut found = Vec::new();
        loop {
            let task = next_task.fetch_add(1, Ordering::Relaxed);
            if task >= task_count {
                break;
            }
            walker.stats.tasks += 1;
            walker.best = None;
            walker.seed_prefix(task, split_depth);
            walker.enter(split_depth);
            if let Some((key, digits)) = walker.best.take() {
                found.push((task, key, digits));
            }
        }
        (found, walker.stats)
    };

    let per_worker: Vec<(TaskWins, BnbStats)> = if threads == 1 {
        vec![run_worker()]
    } else {
        thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|_| run_worker()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("composition BnB worker panicked"))
                .collect()
        })
        .expect("thread scope panicked")
    };

    let mut stats = BnbStats {
        threads: threads as u64,
        ..BnbStats::default()
    };
    let mut candidates: TaskWins = Vec::new();
    for (found, worker_stats) in per_worker {
        stats.tasks += worker_stats.tasks;
        stats.nodes_visited += worker_stats.nodes_visited;
        stats.leaves_evaluated += worker_stats.leaves_evaluated;
        stats.subtrees_pruned += worker_stats.subtrees_pruned;
        stats.variants_skipped += worker_stats.variants_skipped;
        candidates.extend(found);
    }

    // Merge in task (= lexicographic prefix) order with strict
    // replacement, exactly as the serial engine tie-breaks.
    candidates.sort_by_key(|(task, _, _)| *task);
    let objective = Objective::MinTco;
    let mut best: Option<(RankKey, Vec<usize>)> = None;
    for (_, key, digits) in candidates {
        let improved = match &best {
            None => true,
            Some((b, _)) => objective.better_key(&key, b),
        };
        if improved {
            best = Some((key, digits));
        }
    }
    let (_, best_digits) = best.expect("non-empty spaces always yield a winner");
    let winner = eval.evaluate(&best_digits);
    let outcome = SearchOutcome::from_evaluations(
        objective,
        vec![winner],
        SearchStats {
            evaluated: stats.leaves_evaluated,
            skipped: stats.variants_skipped,
        },
    );
    (outcome, stats)
}

/// Per-task winners one worker collected: `(task index, rank key, digits)`.
type TaskWins = Vec<(usize, RankKey, Vec<usize>)>;

fn argmin_by(comp: &[CandidateTerms], score: impl Fn(&CandidateTerms) -> f64) -> usize {
    let mut best = 0usize;
    for (idx, t) in comp.iter().enumerate().skip(1) {
        if score(t) < score(&comp[best]) {
            best = idx;
        }
    }
    best
}

/// One worker's depth-first descent. The digit stack and per-depth fold
/// states are reused across tasks, so the hot loop allocates nothing once
/// frame stacks have grown to the topology depth.
struct Walker<'a> {
    model: &'a TcoModel,
    eval: &'a CompositionEvaluator<'a>,
    bounds: &'a Bounds,
    incumbent: &'a AtomicU64,
    digits: Vec<usize>,
    /// `states[d]` = fold state just before leaf `d`; `states[n]` = final.
    states: Vec<FoldState>,
    best: Option<(RankKey, Vec<usize>)>,
    stats: BnbStats,
}

impl Walker<'_> {
    /// Decodes a prefix task index (mixed radix over leaves
    /// `0..split_depth`, most significant first) into the digit stack and
    /// folds the prefix states.
    fn seed_prefix(&mut self, task: usize, split_depth: usize) {
        let terms = self.eval.terms();
        let mut rem = task;
        for pos in (0..split_depth).rev() {
            let radix = terms[pos].len();
            self.digits[pos] = rem % radix;
            rem /= radix;
        }
        debug_assert_eq!(rem, 0, "task index out of range");
        for pos in 0..split_depth {
            self.eval.step_into(&mut self.states, pos, self.digits[pos]);
        }
    }

    /// Bound-checks the subtree rooted at `depth`, then descends into it.
    fn enter(&mut self, depth: usize) {
        if depth < self.digits.len() {
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            let bound = self
                .bounds
                .lower_bound(self.model, depth, &self.states[depth]);
            if bound - BOUND_SLACK > incumbent {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth];
                return;
            }
        }
        self.descend(depth);
    }

    fn descend(&mut self, depth: usize) {
        if depth == self.digits.len() {
            self.leaf();
            return;
        }
        self.stats.nodes_visited += 1;
        let last = depth + 1 == self.digits.len();
        for idx in 0..self.eval.terms()[depth].len() {
            self.digits[depth] = idx;
            self.eval.step_into(&mut self.states, depth, idx);
            if last {
                self.leaf();
                continue;
            }
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            let bound = self
                .bounds
                .lower_bound(self.model, depth + 1, &self.states[depth + 1]);
            if bound - BOUND_SLACK > incumbent {
                self.stats.subtrees_pruned += 1;
                self.stats.variants_skipped += self.bounds.suffix_size[depth + 1];
                continue;
            }
            self.descend(depth + 1);
        }
    }

    fn leaf(&mut self) {
        self.stats.leaves_evaluated += 1;
        let acc = self.states[self.digits.len()].combined();
        let key = fast::finish(self.model, &acc).2;
        let improved = match &self.best {
            None => true,
            Some((b, _)) => Objective::MinTco.better_key(&key, b),
        };
        if improved {
            let total = key.total.value();
            let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
            if total < incumbent {
                self.incumbent.fetch_min(total.to_bits(), Ordering::Relaxed);
            }
            if let Some((k, d)) = &mut self.best {
                *k = key;
                d.clear();
                d.extend_from_slice(&self.digits);
            } else {
                self.best = Some((key, self.digits.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound;
    use crate::composition::{self, CompositionNode};
    use crate::space::{Candidate, ComponentChoices, SearchSpace};
    use uptime_catalog::{case_study, ComponentKind};
    use uptime_core::{ClusterSpec, MoneyPerMonth, Probability};

    fn component(name: &str, downs: &[f64], costs: &[f64]) -> ComponentChoices {
        let candidates = downs
            .iter()
            .zip(costs)
            .enumerate()
            .map(|(i, (&down, &cost))| {
                Candidate::new(
                    format!("{name}-{i}"),
                    ClusterSpec::singleton(
                        format!("{name}-{i}"),
                        Probability::new(down).unwrap(),
                        1.0,
                    )
                    .unwrap(),
                    MoneyPerMonth::new(cost).unwrap(),
                    i == 0,
                )
            })
            .collect();
        ComponentChoices::new(name, candidates).unwrap()
    }

    fn dual_site_space() -> CompositionSpace {
        let site = |tag: &str| {
            CompositionNode::Series(vec![
                CompositionNode::Component(component(
                    &format!("{tag}-web"),
                    &[0.02, 0.002, 0.0004],
                    &[0.0, 80.0, 400.0],
                )),
                CompositionNode::Component(component(
                    &format!("{tag}-db"),
                    &[0.05, 0.004],
                    &[0.0, 120.0],
                )),
            ])
        };
        CompositionSpace::new(CompositionNode::Series(vec![
            CompositionNode::Component(component("gw", &[0.01, 0.001], &[0.0, 60.0])),
            CompositionNode::Parallel(vec![site("a"), site("b")]),
        ]))
        .unwrap()
    }

    #[test]
    fn pure_series_matches_serial_bnb_bit_identically() {
        let serial = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let space = CompositionSpace::from_serial(&serial);
        let model = case_study::tco_model();
        let serial_win = branch_bound::search(&serial, &model);
        let comp_win = search(&space, &model);
        assert_eq!(serial_win.best().unwrap(), comp_win.best().unwrap());
    }

    #[test]
    fn matches_streaming_composition_search() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let streaming = composition::search(&space, &model, Objective::MinTco);
        let bb = search(&space, &model);
        assert_eq!(streaming.best().unwrap(), bb.best().unwrap());
        assert_eq!(
            u128::from(bb.stats().considered()),
            space.assignment_count(),
            "evaluated + skipped must cover the space"
        );
    }

    #[test]
    fn thread_counts_agree_bit_identically() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let serial = search_with_threads(&space, &model, 1);
        for threads in [2, 4, 8] {
            let parallel = search_with_threads(&space, &model, threads);
            assert_eq!(
                serial.best().unwrap(),
                parallel.best().unwrap(),
                "{threads} threads"
            );
            assert_eq!(
                u128::from(parallel.stats().considered()),
                space.assignment_count(),
                "{threads} threads must still cover the space"
            );
        }
    }

    #[test]
    fn prefix_bound_is_admissible_on_a_dag() {
        let space = dual_site_space();
        let model = case_study::tco_model();
        let eval = CompositionEvaluator::new(&space, &model);
        for depth in 0..=space.leaf_count() {
            for assignment in space.assignments() {
                let prefix = &assignment[..depth];
                let bound = prefix_bound(&space, &model, prefix);
                for completion in space.assignments() {
                    if completion[..depth] == *prefix {
                        let tco = eval.evaluate(&completion).tco().total().value();
                        assert!(
                            bound <= tco + 1e-9,
                            "bound {bound} > tco {tco} for prefix {prefix:?} -> {completion:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prunes_on_skewed_costs() {
        let space = CompositionSpace::new(CompositionNode::Series(vec![
            CompositionNode::Component(component("gate", &[0.0001, 0.0001], &[100.0, 1_000_000.0])),
            CompositionNode::Parallel(vec![
                CompositionNode::Component(component("a", &[0.01, 0.001], &[10.0, 20.0])),
                CompositionNode::Component(component("b", &[0.01, 0.001], &[10.0, 20.0])),
            ]),
        ]))
        .unwrap();
        let (outcome, stats) = search_with_stats(&space, &case_study::tco_model(), 1);
        assert!(stats.subtrees_pruned > 0, "expected a bound cutoff");
        assert_eq!(
            u128::from(outcome.stats().considered()),
            space.assignment_count()
        );
    }
}
