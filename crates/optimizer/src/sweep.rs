//! SLA sweeps: how the recommended architecture changes with the target.
//!
//! The paper fixes `U_SLA = 98 %`. A broker negotiating a contract wants
//! the whole curve: for each candidate SLA, which HA permutation is
//! `OptCh` and what does it cost? Because an assignment's *uptime* and
//! *HA cost* are SLA-independent, the sweep evaluates the space once and
//! re-prices cheaply per target, then reports where the winner changes
//! (the crossovers).

use serde::{Deserialize, Serialize};
use uptime_core::{MoneyPerMonth, PenaltyClause, Probability, RoundingPolicy, SlaTarget, TcoModel};

use crate::evaluate::Evaluation;
use crate::space::SearchSpace;

/// One point of an SLA sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The SLA target, as a percentage.
    pub sla_percent: f64,
    /// The winning assignment at this target.
    pub best_assignment: Vec<usize>,
    /// The winner's modeled uptime.
    pub best_uptime: Probability,
    /// The winner's total TCO at this target.
    pub best_tco: MoneyPerMonth,
    /// Whether the winner meets the target (no expected penalty).
    pub meets_sla: bool,
}

/// Result of sweeping SLA targets over a search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaSweep {
    points: Vec<SweepPoint>,
}

impl SlaSweep {
    /// The sweep points, in the order the targets were given.
    #[must_use]
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Consecutive target pairs between which the winning assignment
    /// changes — the crossovers.
    #[must_use]
    pub fn crossovers(&self) -> Vec<(f64, f64)> {
        self.points
            .windows(2)
            .filter(|w| w[0].best_assignment != w[1].best_assignment)
            .map(|w| (w[0].sla_percent, w[1].sla_percent))
            .collect()
    }
}

/// Runs the sweep: for each `targets` percentage, find the min-TCO
/// assignment under the given penalty clause and rounding policy.
///
/// # Panics
///
/// Panics if a target is outside `(0, 100]` — pass validated percentages.
///
/// # Examples
///
/// The paper's case study: at a lax 93 % SLA no HA wins; at 98 % RAID-1
/// wins; at ~98.7 %+ the dual-HA option #5 takes over.
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_core::PenaltyClause;
/// use uptime_optimizer::{sweep, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let result = sweep::sla_sweep(
///     &space,
///     &PenaltyClause::per_hour(100.0)?,
///     uptime_core::RoundingPolicy::CeilHour,
///     &[92.0, 98.0, 99.0],
/// );
/// assert_eq!(result.points().len(), 3);
/// assert!(!result.crossovers().is_empty());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn sla_sweep(
    space: &SearchSpace,
    penalty: &PenaltyClause,
    rounding: RoundingPolicy,
    targets: &[f64],
) -> SlaSweep {
    // Evaluate uptime and HA cost once per assignment (SLA-independent).
    let fixed: Vec<(Vec<usize>, MoneyPerMonth, Probability)> = space
        .assignments()
        .map(|assignment| {
            // Reuse the standard evaluation for the uptime/cost parts; the
            // TCO inside is computed against a dummy SLA and discarded.
            let dummy = TcoModel::with_rounding(
                SlaTarget::from_percent(50.0).expect("constant"),
                PenaltyClause::per_hour(0.0).expect("constant"),
                rounding,
            );
            let e = Evaluation::evaluate(space, &dummy, &assignment);
            (assignment, e.tco().ha_cost(), e.uptime().availability())
        })
        .collect();

    let points = targets
        .iter()
        .map(|&percent| {
            let sla = SlaTarget::from_percent(percent)
                .unwrap_or_else(|_| panic!("invalid SLA target {percent}"));
            let model = TcoModel::with_rounding(sla, penalty.clone(), rounding);
            let mut best: Option<SweepPoint> = None;
            for (assignment, ha_cost, uptime) in &fixed {
                let tco = model.evaluate(*ha_cost, *uptime).total();
                let candidate_better = best.as_ref().is_none_or(|b| tco < b.best_tco);
                if candidate_better {
                    best = Some(SweepPoint {
                        sla_percent: percent,
                        best_assignment: assignment.clone(),
                        best_uptime: *uptime,
                        best_tco: tco,
                        meets_sla: sla.is_met_by(*uptime),
                    });
                }
            }
            best.expect("space is non-empty by construction")
        })
        .collect();
    SlaSweep { points }
}

/// Convenience: sweep a linear range `[from, to]` with `steps` points
/// (inclusive endpoints).
///
/// # Panics
///
/// Panics if `steps < 2` or the range is invalid.
#[must_use]
pub fn sla_sweep_range(
    space: &SearchSpace,
    penalty: &PenaltyClause,
    rounding: RoundingPolicy,
    from: f64,
    to: f64,
    steps: usize,
) -> SlaSweep {
    assert!(steps >= 2, "need at least the two endpoints");
    assert!(from < to, "range must be increasing");
    let targets: Vec<f64> = (0..steps)
        .map(|i| from + (to - from) * i as f64 / (steps - 1) as f64)
        .collect();
    sla_sweep(space, penalty, rounding, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    fn penalty() -> PenaltyClause {
        PenaltyClause::per_hour(100.0).unwrap()
    }

    #[test]
    fn paper_target_reproduces_option3() {
        let result = sla_sweep(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            &[98.0],
        );
        let point = &result.points()[0];
        assert_eq!(point.best_assignment, vec![0, 1, 0]);
        assert_eq!(point.best_tco.value(), 1250.0);
        assert!(!point.meets_sla, "option #3 violates the 98 % SLA");
    }

    #[test]
    fn lax_sla_prefers_no_ha() {
        // At a 90 % target the bare system (92.17 %) already complies:
        // zero cost wins.
        let result = sla_sweep(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            &[90.0],
        );
        let point = &result.points()[0];
        assert_eq!(point.best_assignment, vec![0, 0, 0]);
        assert_eq!(point.best_tco.value(), 0.0);
        assert!(point.meets_sla);
    }

    #[test]
    fn strict_sla_prefers_more_redundancy() {
        // At 99 % no option complies; option #5 (98.71 %) minimizes
        // cost + small penalty.
        let result = sla_sweep(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            &[99.0],
        );
        let point = &result.points()[0];
        assert!(point.best_uptime.as_percent() > 98.0);
        assert!(!point.meets_sla);
    }

    #[test]
    fn sweep_finds_crossovers() {
        let result = sla_sweep_range(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            90.0,
            99.5,
            39,
        );
        let crossovers = result.crossovers();
        assert!(
            !crossovers.is_empty(),
            "winner must change somewhere between 90 % and 99.5 %"
        );
        // Winners become (weakly) more redundant as the target tightens.
        let mut prev_cost = MoneyPerMonth::ZERO;
        for point in result.points() {
            let cost: MoneyPerMonth = point
                .best_assignment
                .iter()
                .zip(paper_space().components())
                .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
                .collect::<Vec<_>>()
                .into_iter()
                .sum();
            assert!(
                cost >= prev_cost,
                "HA spend must not shrink as SLA tightens"
            );
            prev_cost = cost;
        }
    }

    #[test]
    fn tco_curve_is_monotone_in_target() {
        // A stricter SLA can never make the optimal TCO cheaper.
        let result = sla_sweep_range(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            90.0,
            99.9,
            50,
        );
        let mut prev = MoneyPerMonth::ZERO;
        for point in result.points() {
            assert!(point.best_tco >= prev, "at {}%", point.sla_percent);
            prev = point.best_tco;
        }
    }

    #[test]
    #[should_panic(expected = "at least the two endpoints")]
    fn range_needs_two_steps() {
        let _ = sla_sweep_range(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            90.0,
            99.0,
            1,
        );
    }

    #[test]
    fn serde_roundtrip() {
        let result = sla_sweep(
            &paper_space(),
            &penalty(),
            RoundingPolicy::CeilHour,
            &[95.0, 98.0],
        );
        let json = serde_json::to_string(&result).unwrap();
        let back: SlaSweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }
}
