//! Parallel exhaustive search for large spaces.
//!
//! The paper waves `O(k^n)` away because "`n` in practice is usually low".
//! For hybrid-brokerage spaces (many clouds × many methods) the product
//! still grows; this module shards the **flat index range** `[0, k^n)`
//! across threads. Each worker seeds a [`crate::fast::FastCursor`] at its
//! shard's starting index via [`FastEvaluator::cursor_at`] and walks
//! forward incrementally, so no assignment list is ever materialized — the
//! old implementation collected all `k^n` `Vec<usize>` assignments up
//! front, which on a 6⁶ space already meant ~47k heap vectors before any
//! evaluation ran, and scaled to gigabytes on joint metacloud spaces.
//!
//! Two entry points with different memory contracts:
//!
//! * [`search_with_threads`] / [`search`] — materialize every
//!   [`Evaluation`], exactly like [`crate::exhaustive::search`], and merge
//!   shards in index order so the result is bit-identical to the serial
//!   enumeration. `O(k^n)` output memory, inherent to "report everything".
//! * [`search_best_with_threads`] / [`search_best`] — streaming: each
//!   worker keeps only its running argmin, the merge keeps the global one.
//!   `O(threads · n)` memory regardless of space size, and ties resolve to
//!   the lexicographically-first winner — the same assignment every other
//!   exact strategy returns.

use crossbeam::thread;
use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::fast::FastEvaluator;
use crate::objective::{Objective, RankKey};
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// A worker's contiguous slice of the flat assignment index space.
#[derive(Debug, Clone, Copy)]
struct Shard {
    start: u128,
    len: u128,
}

/// Splits `[0, total)` into at most `workers` contiguous, non-empty shards.
fn shards(total: u128, workers: usize) -> Vec<Shard> {
    let workers = u128::try_from(workers.max(1))
        .unwrap_or(1)
        .min(total.max(1));
    let base = total / workers;
    let extra = total % workers;
    let mut out = Vec::with_capacity(workers as usize);
    let mut start = 0u128;
    for w in 0..workers {
        let len = base + u128::from(w < extra);
        if len == 0 {
            break;
        }
        out.push(Shard { start, len });
        start += len;
    }
    out
}

/// Evaluates every assignment using up to `threads` worker threads.
///
/// `threads = 0` is treated as 1; thread counts beyond the number of
/// assignments are clamped down so no worker starts empty.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
#[must_use]
pub fn search_with_threads(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
) -> SearchOutcome {
    search_with_threads_core(space, model, objective, threads, &uptime_obs::NOOP)
}

/// [`search_with_threads`] with observability: an
/// `optimizer.parallel.search` span plus per-shard wall-clock timings
/// (`optimizer.parallel.shard_ns` histogram, `optimizer.parallel.shards` /
/// `optimizer.parallel.variants` counters). Workers time themselves; the
/// recorder is only touched after the join, so results and merge order are
/// untouched.
#[must_use]
pub fn search_with_threads_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.parallel.search");
    let mut trace_span = parent.child("optimizer.parallel.search");
    let outcome = search_with_threads_core(space, model, objective, threads, rec);
    trace_span.attr_u64("variants", outcome.stats().evaluated);
    outcome
}

fn search_with_threads_core(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
) -> SearchOutcome {
    let fast = FastEvaluator::new(space, model);
    let total = space.assignment_count();
    let plan = shards(total, threads);

    let shard_outputs: Vec<(Vec<Evaluation>, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = plan
            .iter()
            .map(|&Shard { start, len }| {
                let fast = &fast;
                scope.spawn(move |_| {
                    let started = std::time::Instant::now();
                    let mut cursor = fast.cursor_at(start);
                    let mut out = Vec::with_capacity(usize::try_from(len).unwrap_or(usize::MAX));
                    for step in 0..len {
                        out.push(cursor.evaluation());
                        if step + 1 < len {
                            assert!(cursor.advance(), "shard overran the space");
                        }
                    }
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (out, ns)
                })
            })
            .collect();
        // Shards are joined in index order, reassembling the exact
        // lexicographic sequence the serial enumeration produces.
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
    .expect("thread scope panicked");

    rec.counter_add("optimizer.parallel.shards", shard_outputs.len() as u64);
    let mut evaluations = Vec::new();
    for (shard_evals, ns) in shard_outputs {
        rec.observe("optimizer.parallel.shard_ns", ns as f64);
        evaluations.extend(shard_evals);
    }
    rec.counter_add("optimizer.parallel.variants", evaluations.len() as u64);

    let stats = SearchStats {
        evaluated: evaluations.len() as u64,
        skipped: 0,
    };
    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

/// Evaluates every assignment using the machine's available parallelism.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{parallel, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = parallel::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_with_threads(space, model, objective, default_threads())
}

/// Streaming parallel argmin: like [`search_with_threads`] but each worker
/// keeps only its best assignment, so memory stays `O(threads · n)` no
/// matter how wide the space is. The returned outcome carries just the
/// winning [`Evaluation`]; `stats().evaluated` counts the full space
/// (saturating at `u64::MAX`).
///
/// Ties resolve to the lexicographically-first best assignment — identical
/// to every materializing strategy — because the shard merge only replaces
/// the incumbent when a later shard's key is *strictly* better.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
#[must_use]
pub fn search_best_with_threads(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
) -> SearchOutcome {
    search_best_with_threads_core(space, model, objective, threads, &uptime_obs::NOOP)
}

/// [`search_best_with_threads`] with observability: an
/// `optimizer.parallel.search_best` span plus the same per-shard metrics
/// as [`search_with_threads_recorded`]. The shard loops and the merge are
/// bit-identical to the unrecorded path.
#[must_use]
pub fn search_best_with_threads_recorded(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
    parent: &uptime_obs::TraceSpan,
) -> SearchOutcome {
    let _span = uptime_obs::span!(rec, "optimizer.parallel.search_best");
    let mut trace_span = parent.child("optimizer.parallel.search_best");
    let outcome = search_best_with_threads_core(space, model, objective, threads, rec);
    trace_span.attr_u64("variants", outcome.stats().evaluated);
    outcome
}

fn search_best_with_threads_core(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
    rec: &dyn uptime_obs::Recorder,
) -> SearchOutcome {
    let fast = FastEvaluator::new(space, model);
    let total = space.assignment_count();
    let plan = shards(total, threads);

    let shard_bests: Vec<(RankKey, Vec<usize>, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = plan
            .iter()
            .map(|&Shard { start, len }| {
                let fast = &fast;
                scope.spawn(move |_| {
                    let started = std::time::Instant::now();
                    let mut cursor = fast.cursor_at(start);
                    let mut best_key = cursor.rank_key();
                    let mut best_digits = cursor.assignment().to_vec();
                    for _ in 1..len {
                        assert!(cursor.advance(), "shard overran the space");
                        let key = cursor.rank_key();
                        if objective.better_key(&key, &best_key) {
                            best_key = key;
                            best_digits.clear();
                            best_digits.extend_from_slice(cursor.assignment());
                        }
                    }
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    (best_key, best_digits, ns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
    .expect("thread scope panicked");

    rec.counter_add("optimizer.parallel.shards", shard_bests.len() as u64);
    for (_, _, ns) in &shard_bests {
        rec.observe("optimizer.parallel.shard_ns", *ns as f64);
    }
    rec.counter_add(
        "optimizer.parallel.variants",
        u64::try_from(total).unwrap_or(u64::MAX),
    );

    // Earlier shards hold lexicographically-earlier assignments; strict
    // comparison therefore preserves first-wins tie-breaking.
    let (_, best_digits, _) = shard_bests
        .into_iter()
        .reduce(|acc, cand| {
            if objective.better_key(&cand.0, &acc.0) {
                cand
            } else {
                acc
            }
        })
        .expect("spaces always contain at least one assignment");

    let stats = SearchStats {
        evaluated: u64::try_from(total).unwrap_or(u64::MAX),
        skipped: 0,
    };
    SearchOutcome::from_evaluations(objective, vec![fast.evaluate(&best_digits)], stats)
}

/// [`search_best_with_threads`] at the machine's available parallelism.
#[must_use]
pub fn search_best(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    search_best_with_threads(space, model, objective, default_threads())
}

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive, fast};
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn matches_serial_exhaustive() {
        let space = paper_space();
        let model = case_study::tco_model();
        let serial = exhaustive::search(&space, &model, Objective::MinTco);
        let parallel = search(&space, &model, Objective::MinTco);
        assert_eq!(
            serial.best().unwrap().assignment(),
            parallel.best().unwrap().assignment()
        );
        assert_eq!(serial.evaluations().len(), parallel.evaluations().len());
        // Deterministic merge: shards are joined in index order, so the
        // result reassembles the lexicographic order bit-for-bit.
        assert_eq!(serial.evaluations(), parallel.evaluations());
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let space = paper_space();
        let model = case_study::tco_model();
        let one = search_with_threads(&space, &model, Objective::MinTco, 1);
        let many = search_with_threads(&space, &model, Objective::MinTco, 8);
        assert_eq!(one.evaluations(), many.evaluations());
    }

    #[test]
    fn oversubscribed_threads_clamped() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search_with_threads(&space, &model, Objective::MinTco, 1000);
        assert_eq!(outcome.stats().evaluated, 8);
    }

    #[test]
    fn zero_threads_treated_as_one() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search_with_threads(&space, &model, Objective::MinTco, 0);
        assert_eq!(outcome.stats().evaluated, 8);
        assert_eq!(outcome.best().unwrap().assignment(), &[0, 1, 0]);
        let streaming = search_best_with_threads(&space, &model, Objective::MinTco, 0);
        assert_eq!(streaming.best().unwrap().assignment(), &[0, 1, 0]);
    }

    #[test]
    fn recorded_searches_match_and_time_shards() {
        let space = paper_space();
        let model = case_study::tco_model();
        let registry = uptime_obs::MetricsRegistry::new();

        let plain = search_with_threads(&space, &model, Objective::MinTco, 3);
        let recorded = search_with_threads_recorded(
            &space,
            &model,
            Objective::MinTco,
            3,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(plain, recorded, "instrumentation must not change results");

        let plain_best = search_best_with_threads(&space, &model, Objective::MinTco, 3);
        let recorded_best = search_best_with_threads_recorded(
            &space,
            &model,
            Objective::MinTco,
            3,
            &registry,
            &uptime_obs::TraceSpan::disabled(),
        );
        assert_eq!(plain_best.best(), recorded_best.best());

        let snap = registry.snapshot();
        assert_eq!(snap.counter("optimizer.parallel.shards"), Some(6));
        assert_eq!(snap.counter("optimizer.parallel.variants"), Some(16));
        assert_eq!(
            snap.histogram("optimizer.parallel.shard_ns").unwrap().count,
            6
        );
        assert_eq!(snap.counter("optimizer.parallel.search.calls"), Some(1));
        assert_eq!(
            snap.counter("optimizer.parallel.search_best.calls"),
            Some(1)
        );
    }

    #[test]
    fn shard_plan_covers_range_without_overlap() {
        for (total, workers) in [(8u128, 3usize), (8, 8), (8, 1000), (1, 4), (47, 7), (6, 6)] {
            let plan = shards(total, workers);
            assert!(plan.len() <= workers.max(1));
            let mut next = 0u128;
            for s in &plan {
                assert_eq!(s.start, next, "contiguous");
                assert!(s.len > 0, "no empty shards");
                next += s.len;
            }
            assert_eq!(next, total, "full coverage");
        }
    }

    #[test]
    fn streaming_matches_materializing_best() {
        let space = paper_space();
        let model = case_study::tco_model();
        for objective in [Objective::MinTco, Objective::MinPenaltyRisk] {
            let full = search_with_threads(&space, &model, objective, 3);
            for threads in [1, 2, 5, 100] {
                let slim = search_best_with_threads(&space, &model, objective, threads);
                assert_eq!(
                    slim.best().unwrap(),
                    full.best().unwrap(),
                    "{objective:?} x{threads}"
                );
                assert_eq!(slim.stats().evaluated, 8);
                assert_eq!(slim.evaluations().len(), 1);
            }
        }
    }

    #[test]
    fn streaming_matches_serial_fast_search() {
        let space = paper_space();
        let model = case_study::tco_model();
        let serial = fast::search(&space, &model, Objective::MinTco);
        let parallel = search_best(&space, &model, Objective::MinTco);
        assert_eq!(serial.best().unwrap(), parallel.best().unwrap());
    }
}
