//! Parallel exhaustive search for large spaces.
//!
//! The paper waves `O(k^n)` away because "`n` in practice is usually low".
//! For hybrid-brokerage spaces (many clouds × many methods) the product
//! still grows; this module shards the assignment enumeration across
//! threads. Results are identical to [`crate::exhaustive::search`] —
//! assignments are evaluated independently and merged deterministically.

use crossbeam::thread;
use uptime_core::TcoModel;

use crate::evaluate::Evaluation;
use crate::objective::Objective;
use crate::outcome::{SearchOutcome, SearchStats};
use crate::space::SearchSpace;

/// Evaluates every assignment using up to `threads` worker threads.
///
/// # Panics
///
/// Panics if a worker thread panics (propagated).
#[must_use]
pub fn search_with_threads(
    space: &SearchSpace,
    model: &TcoModel,
    objective: Objective,
    threads: usize,
) -> SearchOutcome {
    let assignments: Vec<Vec<usize>> = space.assignments().collect();
    let workers = threads.clamp(1, assignments.len().max(1));
    let chunk = assignments.len().div_ceil(workers).max(1);

    let evaluations: Vec<Evaluation> = thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .chunks(chunk)
            .map(|batch| {
                scope.spawn(move |_| {
                    batch
                        .iter()
                        .map(|a| Evaluation::evaluate(space, model, a))
                        .collect::<Vec<Evaluation>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("search worker panicked"))
            .collect()
    })
    .expect("thread scope panicked");

    let stats = SearchStats {
        evaluated: evaluations.len() as u64,
        skipped: 0,
    };
    SearchOutcome::from_evaluations(objective, evaluations, stats)
}

/// Evaluates every assignment using the machine's available parallelism.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{case_study, ComponentKind};
/// use uptime_optimizer::{parallel, Objective, SearchSpace};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let space = SearchSpace::from_catalog(
///     &case_study::catalog(),
///     &case_study::cloud_id(),
///     &ComponentKind::paper_tiers(),
/// )?;
/// let outcome = parallel::search(&space, &case_study::tco_model(), Objective::MinTco);
/// assert_eq!(outcome.best().unwrap().tco().total().value(), 1250.0);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn search(space: &SearchSpace, model: &TcoModel, objective: Objective) -> SearchOutcome {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    search_with_threads(space, model, objective, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use uptime_catalog::{case_study, ComponentKind};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    #[test]
    fn matches_serial_exhaustive() {
        let space = paper_space();
        let model = case_study::tco_model();
        let serial = exhaustive::search(&space, &model, Objective::MinTco);
        let parallel = search(&space, &model, Objective::MinTco);
        assert_eq!(
            serial.best().unwrap().assignment(),
            parallel.best().unwrap().assignment()
        );
        assert_eq!(serial.evaluations().len(), parallel.evaluations().len());
        // Deterministic merge: evaluation multisets are identical, and in
        // fact the chunked order reassembles the lexicographic order.
        assert_eq!(serial.evaluations(), parallel.evaluations());
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let space = paper_space();
        let model = case_study::tco_model();
        let one = search_with_threads(&space, &model, Objective::MinTco, 1);
        let many = search_with_threads(&space, &model, Objective::MinTco, 8);
        assert_eq!(one.evaluations(), many.evaluations());
    }

    #[test]
    fn oversubscribed_threads_clamped() {
        let space = paper_space();
        let model = case_study::tco_model();
        let outcome = search_with_threads(&space, &model, Objective::MinTco, 1000);
        assert_eq!(outcome.stats().evaluated, 8);
    }
}
