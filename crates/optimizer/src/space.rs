//! The search space: per-component HA candidates.

use std::fmt;

use serde::{Deserialize, Serialize};
use uptime_catalog::{CatalogError, CatalogStore, CloudId, ComponentKind};
use uptime_core::{ClusterSpec, MoneyPerMonth};

/// Errors in search-space construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpaceError {
    /// A component was declared with no candidates.
    EmptyComponent {
        /// Component display name.
        name: String,
    },
    /// The space has no components.
    EmptySpace,
    /// Catalog lookup failed while building from a catalog.
    Catalog(CatalogError),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::EmptyComponent { name } => {
                write!(f, "component `{name}` has no HA candidates")
            }
            SpaceError::EmptySpace => write!(f, "search space has no components"),
            SpaceError::Catalog(err) => write!(f, "catalog error: {err}"),
        }
    }
}

impl std::error::Error for SpaceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpaceError::Catalog(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CatalogError> for SpaceError {
    fn from(err: CatalogError) -> Self {
        SpaceError::Catalog(err)
    }
}

/// One deployable HA construct for a component: the cluster it engineers
/// and what it costs per month.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    label: String,
    cluster: ClusterSpec,
    monthly_cost: MoneyPerMonth,
    is_baseline: bool,
}

impl Candidate {
    /// Creates a candidate. `is_baseline` marks the "no HA" choice used by
    /// the superset-pruning search to define permutation cardinality.
    pub fn new(
        label: impl Into<String>,
        cluster: ClusterSpec,
        monthly_cost: MoneyPerMonth,
        is_baseline: bool,
    ) -> Self {
        Candidate {
            label: label.into(),
            cluster,
            monthly_cost,
            is_baseline,
        }
    }

    /// Display label (e.g. "RAID 1").
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The engineered cluster.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Monthly cost `C_HA` contribution of this candidate.
    #[must_use]
    pub fn monthly_cost(&self) -> MoneyPerMonth {
        self.monthly_cost
    }

    /// Whether this is the component's "no HA" baseline.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.is_baseline
    }
}

/// The candidate choices for one serial component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentChoices {
    name: String,
    candidates: Vec<Candidate>,
}

impl ComponentChoices {
    /// Creates the choice set for a component.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::EmptyComponent`] if `candidates` is empty.
    pub fn new(name: impl Into<String>, candidates: Vec<Candidate>) -> Result<Self, SpaceError> {
        let name = name.into();
        if candidates.is_empty() {
            return Err(SpaceError::EmptyComponent { name });
        }
        Ok(ComponentChoices { name, candidates })
    }

    /// Component display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidates.
    #[must_use]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of choices `k` for this component.
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Always `false` after construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Index of the baseline candidate, if any.
    #[must_use]
    pub fn baseline_index(&self) -> Option<usize> {
        self.candidates.iter().position(Candidate::is_baseline)
    }

    /// The cheapest candidate cost (used for branch-and-bound lower bounds).
    #[must_use]
    pub fn min_cost(&self) -> MoneyPerMonth {
        self.candidates
            .iter()
            .map(Candidate::monthly_cost)
            .min()
            .expect("non-empty by construction")
    }
}

/// The full search space: choices per serial component.
///
/// An *assignment* is one index per component, selecting a candidate each;
/// the space contains `Π k_i` assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    components: Vec<ComponentChoices>,
}

impl SearchSpace {
    /// Creates a space from per-component choices.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::EmptySpace`] if `components` is empty.
    pub fn new(components: Vec<ComponentChoices>) -> Result<Self, SpaceError> {
        if components.is_empty() {
            return Err(SpaceError::EmptySpace);
        }
        Ok(SearchSpace { components })
    }

    /// Builds the space for a serial chain of component kinds on one cloud,
    /// taking every applicable catalog method as a candidate.
    ///
    /// # Errors
    ///
    /// Propagates catalog lookup failures; a component kind with no
    /// registered methods yields [`SpaceError::EmptyComponent`].
    pub fn from_catalog(
        catalog: &CatalogStore,
        cloud: &CloudId,
        tiers: &[ComponentKind],
    ) -> Result<Self, SpaceError> {
        let mut components = Vec::with_capacity(tiers.len());
        for kind in tiers {
            let methods = catalog.methods_for(*kind);
            let mut candidates = Vec::with_capacity(methods.len());
            for method in methods {
                let cluster = catalog.cluster_spec(cloud, *kind, method.id())?;
                let cost = catalog.quote(cloud, method.id())?.total();
                candidates.push(Candidate::new(
                    method.display_name(),
                    cluster,
                    cost,
                    method.is_none(),
                ));
            }
            components.push(ComponentChoices::new(kind.label(), candidates)?);
        }
        SearchSpace::new(components)
    }

    /// Per-component choice sets, in serial order.
    #[must_use]
    pub fn components(&self) -> &[ComponentChoices] {
        &self.components
    }

    /// Number of serial components `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Always `false` after construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Total number of assignments `Π k_i`.
    #[must_use]
    pub fn assignment_count(&self) -> u128 {
        self.components.iter().map(|c| c.len() as u128).product()
    }

    /// The all-baseline assignment, if every component has a baseline.
    #[must_use]
    pub fn baseline_assignment(&self) -> Option<Vec<usize>> {
        self.components
            .iter()
            .map(ComponentChoices::baseline_index)
            .collect()
    }

    /// Iterates over every assignment in lexicographic order.
    #[must_use]
    pub fn assignments(&self) -> Assignments<'_> {
        Assignments {
            space: self,
            next: Some(vec![0; self.components.len()]),
        }
    }

    /// The HA cardinality of an assignment: how many components use a
    /// non-baseline candidate (the paper's "number of clustered
    /// components").
    #[must_use]
    pub fn cardinality(&self, assignment: &[usize]) -> usize {
        assignment
            .iter()
            .zip(&self.components)
            .filter(|(&idx, comp)| !comp.candidates()[idx].is_baseline())
            .count()
    }
}

/// Iterator over all assignments of a [`SearchSpace`], lexicographic.
#[derive(Debug)]
pub struct Assignments<'a> {
    space: &'a SearchSpace,
    next: Option<Vec<usize>>,
}

impl Iterator for Assignments<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        // Compute the successor (odometer increment from the right).
        let mut succ = current.clone();
        let mut pos = succ.len();
        loop {
            if pos == 0 {
                self.next = None;
                break;
            }
            pos -= 1;
            succ[pos] += 1;
            if succ[pos] < self.space.components()[pos].len() {
                self.next = Some(succ);
                break;
            }
            succ[pos] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::Probability;

    fn cluster(name: &str, p: f64) -> ClusterSpec {
        ClusterSpec::singleton(name, Probability::new(p).unwrap(), 1.0).unwrap()
    }

    fn money(v: f64) -> MoneyPerMonth {
        MoneyPerMonth::new(v).unwrap()
    }

    fn two_by_three() -> SearchSpace {
        SearchSpace::new(vec![
            ComponentChoices::new(
                "a",
                vec![
                    Candidate::new("none", cluster("a0", 0.01), money(0.0), true),
                    Candidate::new("ha", cluster("a1", 0.001), money(100.0), false),
                ],
            )
            .unwrap(),
            ComponentChoices::new(
                "b",
                vec![
                    Candidate::new("none", cluster("b0", 0.02), money(0.0), true),
                    Candidate::new("ha1", cluster("b1", 0.002), money(50.0), false),
                    Candidate::new("ha2", cluster("b2", 0.0002), money(500.0), false),
                ],
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_space_and_component_rejected() {
        assert!(matches!(
            SearchSpace::new(vec![]).unwrap_err(),
            SpaceError::EmptySpace
        ));
        assert!(matches!(
            ComponentChoices::new("x", vec![]).unwrap_err(),
            SpaceError::EmptyComponent { .. }
        ));
    }

    #[test]
    fn assignment_count_is_product() {
        let s = two_by_three();
        assert_eq!(s.assignment_count(), 6);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn assignments_enumerate_lexicographically() {
        let s = two_by_three();
        let all: Vec<_> = s.assignments().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
    }

    #[test]
    fn cardinality_counts_non_baseline() {
        let s = two_by_three();
        assert_eq!(s.cardinality(&[0, 0]), 0);
        assert_eq!(s.cardinality(&[1, 0]), 1);
        assert_eq!(s.cardinality(&[0, 2]), 1);
        assert_eq!(s.cardinality(&[1, 1]), 2);
    }

    #[test]
    fn baseline_assignment_found() {
        let s = two_by_three();
        assert_eq!(s.baseline_assignment(), Some(vec![0, 0]));
    }

    #[test]
    fn baseline_assignment_absent_when_no_baseline() {
        let s = SearchSpace::new(vec![ComponentChoices::new(
            "a",
            vec![Candidate::new("ha", cluster("a", 0.01), money(10.0), false)],
        )
        .unwrap()])
        .unwrap();
        assert_eq!(s.baseline_assignment(), None);
    }

    #[test]
    fn min_cost_per_component() {
        let s = two_by_three();
        assert_eq!(s.components()[0].min_cost(), money(0.0));
        assert_eq!(s.components()[1].min_cost(), money(0.0));
    }

    #[test]
    fn from_catalog_builds_paper_space() {
        use uptime_catalog::case_study;
        let catalog = case_study::catalog();
        let space = SearchSpace::from_catalog(
            &catalog,
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        assert_eq!(space.len(), 3);
        assert_eq!(space.assignment_count(), 8, "paper: 2^3 options");
        // Baseline-first ordering from the catalog.
        for comp in space.components() {
            assert!(comp.candidates()[0].is_baseline());
            assert_eq!(comp.candidates()[0].monthly_cost(), money(0.0));
        }
        // VMware candidate costs $2200.
        let compute_ha = &space.components()[0].candidates()[1];
        assert!((compute_ha.monthly_cost().value() - 2200.0).abs() < 1.0);
    }

    #[test]
    fn from_catalog_unknown_cloud_errors() {
        use uptime_catalog::case_study;
        let catalog = case_study::catalog();
        let err = SearchSpace::from_catalog(
            &catalog,
            &CloudId::new("ghost"),
            &ComponentKind::paper_tiers(),
        )
        .unwrap_err();
        assert!(matches!(err, SpaceError::Catalog(_)));
    }

    #[test]
    fn serde_roundtrip() {
        let s = two_by_three();
        let json = serde_json::to_string(&s).unwrap();
        let back: SearchSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
