//! Assignment evaluation: assignment → system → uptime → TCO.

use serde::{Deserialize, Serialize};
use uptime_core::{MoneyPerMonth, SystemSpec, TcoBreakdown, TcoModel, UptimeBreakdown};

use crate::objective::RankKey;
use crate::space::SearchSpace;

/// The fully-evaluated result for one assignment: which candidates were
/// chosen, the modeled uptime, and the itemized TCO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    assignment: Vec<usize>,
    cardinality: usize,
    uptime: UptimeBreakdown,
    tco: TcoBreakdown,
}

impl Evaluation {
    /// Evaluates one assignment of the space under the given TCO model.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not have one in-range index per
    /// component — assignments must come from the same [`SearchSpace`].
    #[must_use]
    pub fn evaluate(space: &SearchSpace, model: &TcoModel, assignment: &[usize]) -> Self {
        assert_eq!(
            assignment.len(),
            space.len(),
            "assignment arity must match component count"
        );
        let clusters: Vec<_> = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].cluster().clone())
            .collect();
        let system = SystemSpec::new(clusters).expect("space components are non-empty");
        let uptime = system.uptime();
        let ha_cost: MoneyPerMonth = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
            .sum();
        let tco = model.evaluate(ha_cost, uptime.availability());
        Evaluation {
            assignment: assignment.to_vec(),
            cardinality: space.cardinality(assignment),
            uptime,
            tco,
        }
    }

    /// Assembles an evaluation from parts already computed elsewhere.
    ///
    /// Used by [`crate::fast`] to package results combined from cached
    /// per-cluster terms; semantics are identical to [`Evaluation::evaluate`]
    /// when the parts are consistent with the space.
    pub(crate) fn from_parts(
        assignment: Vec<usize>,
        cardinality: usize,
        uptime: UptimeBreakdown,
        tco: TcoBreakdown,
    ) -> Self {
        Evaluation {
            assignment,
            cardinality,
            uptime,
            tco,
        }
    }

    /// The scalar facts objectives rank by.
    #[must_use]
    pub fn rank_key(&self) -> RankKey {
        RankKey {
            total: self.tco.total(),
            expects_penalty: self.tco.expects_penalty(),
            cardinality: self.cardinality,
            availability: self.uptime.availability(),
        }
    }

    /// The assignment indices, one per component.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of components using a non-baseline candidate.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// The modeled uptime breakdown (`B_s`, `F_s`, `U_s`).
    #[must_use]
    pub fn uptime(&self) -> &UptimeBreakdown {
        &self.uptime
    }

    /// The itemized TCO.
    #[must_use]
    pub fn tco(&self) -> &TcoBreakdown {
        &self.tco
    }

    /// Candidate labels for display, resolved against the space.
    #[must_use]
    pub fn labels<'a>(&self, space: &'a SearchSpace) -> Vec<&'a str> {
        self.assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].label())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Candidate, ComponentChoices};
    use uptime_catalog::{case_study, ComponentKind};
    use uptime_core::{ClusterSpec, PenaltyClause, Probability, SlaTarget};

    fn paper_space() -> SearchSpace {
        SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap()
    }

    /// The paper's 8 options keyed by (compute, storage, network) booleans.
    fn assignment(compute_ha: bool, storage_ha: bool, network_ha: bool) -> Vec<usize> {
        vec![
            compute_ha as usize,
            storage_ha as usize,
            network_ha as usize,
        ]
    }

    #[test]
    fn paper_option_tcos_reproduce_fig10() {
        let space = paper_space();
        let model = case_study::tco_model();
        // (assignment, expected U_s %, expected TCO $) per Figs. 3–10.
        let cases = [
            (assignment(false, false, false), 92.17, 4300.0), // #1
            (assignment(false, false, true), 94.01, 4000.0),  // #2
            (assignment(false, true, false), 96.78, 1250.0),  // #3
            (assignment(true, false, false), 93.04, 5900.0),  // #4
            (assignment(false, true, true), 98.71, 1350.0),   // #5
            (assignment(true, false, true), 94.91, 5500.0),   // #6
            (assignment(true, true, false), 97.70, 2850.0),   // #7
            (assignment(true, true, true), 99.66, 3550.0),    // #8
        ];
        for (a, uptime_pct, tco) in cases {
            let e = Evaluation::evaluate(&space, &model, &a);
            assert!(
                (e.uptime().availability().as_percent() - uptime_pct).abs() < 0.02,
                "{a:?}: uptime {} want {uptime_pct}",
                e.uptime().availability().as_percent()
            );
            assert!(
                (e.tco().total().value() - tco).abs() < 0.5,
                "{a:?}: tco {} want {tco}",
                e.tco().total()
            );
        }
    }

    #[test]
    fn option5_and_8_meet_sla() {
        let space = paper_space();
        let model = case_study::tco_model();
        for (a, meets) in [
            (assignment(false, true, true), true),
            (assignment(true, true, true), true),
            (assignment(false, true, false), false),
            (assignment(false, false, false), false),
        ] {
            let e = Evaluation::evaluate(&space, &model, &a);
            assert_eq!(!e.tco().expects_penalty(), meets, "{a:?}");
        }
    }

    #[test]
    fn cardinality_recorded() {
        let space = paper_space();
        let model = case_study::tco_model();
        assert_eq!(
            Evaluation::evaluate(&space, &model, &assignment(false, false, false)).cardinality(),
            0
        );
        assert_eq!(
            Evaluation::evaluate(&space, &model, &assignment(true, true, true)).cardinality(),
            3
        );
    }

    #[test]
    fn labels_resolve() {
        let space = paper_space();
        let model = case_study::tco_model();
        let e = Evaluation::evaluate(&space, &model, &assignment(false, true, true));
        let labels = e.labels(&space);
        assert_eq!(labels, vec!["None", "RAID 1", "Dual Node GW Cluster"]);
    }

    #[test]
    #[should_panic(expected = "assignment arity")]
    fn wrong_arity_panics() {
        let space = paper_space();
        let model = case_study::tco_model();
        let _ = Evaluation::evaluate(&space, &model, &[0, 0]);
    }

    #[test]
    fn single_component_space() {
        let cluster = ClusterSpec::singleton("only", Probability::new(0.01).unwrap(), 1.0).unwrap();
        let space = SearchSpace::new(vec![ComponentChoices::new(
            "only",
            vec![Candidate::new("none", cluster, MoneyPerMonth::ZERO, true)],
        )
        .unwrap()])
        .unwrap();
        let model = uptime_core::TcoModel::new(
            SlaTarget::from_percent(99.9).unwrap(),
            PenaltyClause::per_hour(10.0).unwrap(),
        );
        let e = Evaluation::evaluate(&space, &model, &[0]);
        assert!((e.uptime().availability().value() - 0.99).abs() < 1e-12);
        assert!(e.tco().expects_penalty());
    }

    #[test]
    fn serde_roundtrip() {
        let space = paper_space();
        let model = case_study::tco_model();
        let e = Evaluation::evaluate(&space, &model, &assignment(false, true, false));
        let json = serde_json::to_string(&e).unwrap();
        let back: Evaluation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
