//! Optimization objectives.

use serde::{Deserialize, Serialize};
use uptime_core::{MoneyPerMonth, Probability};

use crate::evaluate::Evaluation;

/// The scalar facts an [`Objective`] ranks by, decoupled from the full
/// [`Evaluation`] so streaming searches can compare variants without
/// materializing per-assignment heap state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankKey {
    /// Total monthly TCO (Eq. 5).
    pub total: MoneyPerMonth,
    /// Whether any slippage penalty is expected.
    pub expects_penalty: bool,
    /// Number of components using a non-baseline candidate.
    pub cardinality: usize,
    /// Modeled uptime `U_s`.
    pub availability: Probability,
}

/// What "best" means when ranking evaluated deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total monthly TCO — the paper's Eq. 6 (`OptCh`). This is
    /// what picks option #3 ($1250) in Fig. 10.
    #[default]
    MinTco,
    /// Among deployments with no expected penalty, minimize TCO; when none
    /// meets the SLA, fall back to minimum TCO. This is the paper's "if the
    /// possibility of slippage penalty is to be minimized" alternative that
    /// picks option #5 ($1350) in Fig. 10.
    MinPenaltyRisk,
}

impl Objective {
    /// Returns `true` if `a` is strictly better than `b` under this
    /// objective. Ties broken toward fewer clustered components, then by
    /// higher uptime (cheaper to operate, better margin).
    #[must_use]
    pub fn better(&self, a: &Evaluation, b: &Evaluation) -> bool {
        self.better_key(&a.rank_key(), &b.rank_key())
    }

    /// [`Objective::better`] on bare [`RankKey`]s — the single source of
    /// truth for ranking, shared by the materializing and streaming search
    /// paths so they can never disagree on an argmin.
    #[must_use]
    pub fn better_key(&self, a: &RankKey, b: &RankKey) -> bool {
        match self {
            Objective::MinTco => Self::better_by_tco(a, b),
            Objective::MinPenaltyRisk => {
                let a_safe = !a.expects_penalty;
                let b_safe = !b.expects_penalty;
                match (a_safe, b_safe) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => Self::better_by_tco(a, b),
                }
            }
        }
    }

    fn better_by_tco(a: &RankKey, b: &RankKey) -> bool {
        if a.total != b.total {
            return a.total < b.total;
        }
        if a.cardinality != b.cardinality {
            return a.cardinality < b.cardinality;
        }
        a.availability > b.availability
    }

    /// Selects the best of an iterator of evaluations, if any.
    #[must_use]
    pub fn best<'a, I>(&self, evaluations: I) -> Option<&'a Evaluation>
    where
        I: IntoIterator<Item = &'a Evaluation>,
    {
        let mut best: Option<&Evaluation> = None;
        for e in evaluations {
            match best {
                None => best = Some(e),
                Some(b) if self.better(e, b) => best = Some(e),
                _ => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use uptime_catalog::{case_study, ComponentKind};

    fn evals() -> (SearchSpace, Vec<Evaluation>) {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let evals = space
            .assignments()
            .map(|a| Evaluation::evaluate(&space, &model, &a))
            .collect();
        (space, evals)
    }

    #[test]
    fn min_tco_picks_option3() {
        let (_, evals) = evals();
        let best = Objective::MinTco.best(&evals).unwrap();
        assert_eq!(best.assignment(), &[0, 1, 0], "RAID-1 only");
        assert_eq!(best.tco().total().value(), 1250.0);
    }

    #[test]
    fn min_penalty_risk_picks_option5() {
        let (_, evals) = evals();
        let best = Objective::MinPenaltyRisk.best(&evals).unwrap();
        assert_eq!(best.assignment(), &[0, 1, 1], "RAID-1 + dual GW");
        assert_eq!(best.tco().total().value(), 1350.0);
        assert!(!best.tco().expects_penalty());
    }

    #[test]
    fn min_penalty_risk_falls_back_to_min_tco() {
        let (_, evals) = evals();
        // Keep only SLA-violating options: fallback must equal MinTco choice
        // among them (option #3 at $1250).
        let violating: Vec<_> = evals
            .into_iter()
            .filter(|e| e.tco().expects_penalty())
            .collect();
        let best = Objective::MinPenaltyRisk.best(&violating).unwrap();
        assert_eq!(best.tco().total().value(), 1250.0);
    }

    #[test]
    fn best_of_empty_is_none() {
        let empty: Vec<Evaluation> = Vec::new();
        assert!(Objective::MinTco.best(&empty).is_none());
    }

    #[test]
    fn better_is_asymmetric() {
        let (_, evals) = evals();
        for a in &evals {
            assert!(!Objective::MinTco.better(a, a), "irreflexive");
            for b in &evals {
                if Objective::MinTco.better(a, b) {
                    assert!(!Objective::MinTco.better(b, a));
                }
            }
        }
    }

    #[test]
    fn default_objective_is_min_tco() {
        assert_eq!(Objective::default(), Objective::MinTco);
    }
}
