//! Optimization objectives.

use serde::{Deserialize, Serialize};

use crate::evaluate::Evaluation;

/// What "best" means when ranking evaluated deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize total monthly TCO — the paper's Eq. 6 (`OptCh`). This is
    /// what picks option #3 ($1250) in Fig. 10.
    #[default]
    MinTco,
    /// Among deployments with no expected penalty, minimize TCO; when none
    /// meets the SLA, fall back to minimum TCO. This is the paper's "if the
    /// possibility of slippage penalty is to be minimized" alternative that
    /// picks option #5 ($1350) in Fig. 10.
    MinPenaltyRisk,
}

impl Objective {
    /// Returns `true` if `a` is strictly better than `b` under this
    /// objective. Ties broken toward fewer clustered components, then by
    /// higher uptime (cheaper to operate, better margin).
    #[must_use]
    pub fn better(&self, a: &Evaluation, b: &Evaluation) -> bool {
        match self {
            Objective::MinTco => Self::better_by_tco(a, b),
            Objective::MinPenaltyRisk => {
                let a_safe = !a.tco().expects_penalty();
                let b_safe = !b.tco().expects_penalty();
                match (a_safe, b_safe) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => Self::better_by_tco(a, b),
                }
            }
        }
    }

    fn better_by_tco(a: &Evaluation, b: &Evaluation) -> bool {
        let (ta, tb) = (a.tco().total(), b.tco().total());
        if ta != tb {
            return ta < tb;
        }
        if a.cardinality() != b.cardinality() {
            return a.cardinality() < b.cardinality();
        }
        a.uptime().availability() > b.uptime().availability()
    }

    /// Selects the best of an iterator of evaluations, if any.
    #[must_use]
    pub fn best<'a, I>(&self, evaluations: I) -> Option<&'a Evaluation>
    where
        I: IntoIterator<Item = &'a Evaluation>,
    {
        let mut best: Option<&Evaluation> = None;
        for e in evaluations {
            match best {
                None => best = Some(e),
                Some(b) if self.better(e, b) => best = Some(e),
                _ => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use uptime_catalog::{case_study, ComponentKind};

    fn evals() -> (SearchSpace, Vec<Evaluation>) {
        let space = SearchSpace::from_catalog(
            &case_study::catalog(),
            &case_study::cloud_id(),
            &ComponentKind::paper_tiers(),
        )
        .unwrap();
        let model = case_study::tco_model();
        let evals = space
            .assignments()
            .map(|a| Evaluation::evaluate(&space, &model, &a))
            .collect();
        (space, evals)
    }

    #[test]
    fn min_tco_picks_option3() {
        let (_, evals) = evals();
        let best = Objective::MinTco.best(&evals).unwrap();
        assert_eq!(best.assignment(), &[0, 1, 0], "RAID-1 only");
        assert_eq!(best.tco().total().value(), 1250.0);
    }

    #[test]
    fn min_penalty_risk_picks_option5() {
        let (_, evals) = evals();
        let best = Objective::MinPenaltyRisk.best(&evals).unwrap();
        assert_eq!(best.assignment(), &[0, 1, 1], "RAID-1 + dual GW");
        assert_eq!(best.tco().total().value(), 1350.0);
        assert!(!best.tco().expects_penalty());
    }

    #[test]
    fn min_penalty_risk_falls_back_to_min_tco() {
        let (_, evals) = evals();
        // Keep only SLA-violating options: fallback must equal MinTco choice
        // among them (option #3 at $1250).
        let violating: Vec<_> = evals
            .into_iter()
            .filter(|e| e.tco().expects_penalty())
            .collect();
        let best = Objective::MinPenaltyRisk.best(&violating).unwrap();
        assert_eq!(best.tco().total().value(), 1250.0);
    }

    #[test]
    fn best_of_empty_is_none() {
        let empty: Vec<Evaluation> = Vec::new();
        assert!(Objective::MinTco.best(&empty).is_none());
    }

    #[test]
    fn better_is_asymmetric() {
        let (_, evals) = evals();
        for a in &evals {
            assert!(!Objective::MinTco.better(a, a), "irreflexive");
            for b in &evals {
                if Objective::MinTco.better(a, b) {
                    assert!(!Objective::MinTco.better(b, a));
                }
            }
        }
    }

    #[test]
    fn default_objective_is_min_tco() {
        assert_eq!(Objective::default(), Objective::MinTco);
    }
}
