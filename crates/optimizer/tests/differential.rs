//! Cross-strategy differential harness.
//!
//! Generates random-but-valid search spaces from seeded entropy and checks
//! that every exact strategy agrees:
//!
//! * `fast` (streaming), `parallel::search_best` (sharded streaming),
//!   `pruned`, and `branch_bound` must pick the **same argmin** as the
//!   naive exhaustive reference, with TCO and uptime within `1e-12`.
//! * `parallel::search_with_threads` must reproduce the exhaustive
//!   evaluation list **exactly** (bit-for-bit), at several thread counts.
//! * `branch_bound::search_with_threads` must return a winner bit-identical
//!   to `fast::search` at 1, 2, and 8 worker threads, with
//!   `evaluated + skipped` covering the whole space.
//! * `greedy` is a heuristic: its result must be a valid assignment whose
//!   TCO is an **upper bound** on (never better than) the true optimum.
//!
//! Parameters are drawn from continuous ranges, so exact objective ties —
//! the only case where "same argmin" could legitimately diverge — occur
//! with probability zero unless two candidates are structurally identical,
//! and identical candidates rank identically under the shared `RankKey`
//! tie-breakers (cardinality, then uptime), resolving to the first in
//! lexicographic visit order for every strategy.

use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    branch_bound, exhaustive, fast, greedy, parallel, pruned, Candidate, ComponentChoices,
    Evaluation, Objective, SearchSpace,
};

/// Deterministic splitmix64 — self-contained so the harness does not
/// depend on any RNG crate's stream staying stable.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }
}

/// A random HA candidate: `K ∈ [2,5]`, `K̂ ∈ [1, K−1]`, continuous `P`,
/// `f`, `t`, and cost.
fn random_ha_candidate(rng: &mut Rng, comp: usize, idx: usize) -> Candidate {
    let total = rng.int(2, 5);
    let standby = rng.int(1, total - 1);
    let cluster = ClusterSpec::builder(format!("c{comp}-m{idx}"))
        .total_nodes(total)
        .standby_budget(standby)
        .node_down_probability(Probability::new(rng.range(0.001, 0.2)).unwrap())
        .failures_per_year(FailuresPerYear::new(rng.range(0.5, 20.0)).unwrap())
        .failover_time(Minutes::new(rng.range(0.1, 30.0)).unwrap())
        .build()
        .unwrap();
    Candidate::new(
        format!("ha-{comp}-{idx}"),
        cluster,
        MoneyPerMonth::new(rng.range(50.0, 5000.0)).unwrap(),
        false,
    )
}

/// A random space: `n ∈ [1,4]` components, `k ∈ [2,4]` candidates each
/// (baseline + HA options).
fn random_space(rng: &mut Rng) -> SearchSpace {
    let n = rng.int(1, 4) as usize;
    let components = (0..n)
        .map(|comp| {
            let baseline = Candidate::new(
                format!("none-{comp}"),
                ClusterSpec::singleton(
                    format!("c{comp}-base"),
                    Probability::new(rng.range(0.01, 0.15)).unwrap(),
                    rng.range(1.0, 15.0),
                )
                .unwrap(),
                MoneyPerMonth::ZERO,
                true,
            );
            let k = rng.int(2, 4) as usize;
            let mut candidates = vec![baseline];
            for idx in 1..k {
                candidates.push(random_ha_candidate(rng, comp, idx));
            }
            ComponentChoices::new(format!("tier-{comp}"), candidates).unwrap()
        })
        .collect();
    SearchSpace::new(components).unwrap()
}

fn random_model(rng: &mut Rng) -> TcoModel {
    TcoModel::new(
        SlaTarget::from_percent(rng.range(90.0, 99.9)).unwrap(),
        PenaltyClause::per_hour(rng.range(10.0, 500.0)).unwrap(),
    )
}

fn assert_same_optimum(label: &str, reference: &Evaluation, candidate: &Evaluation) {
    assert_eq!(
        candidate.assignment(),
        reference.assignment(),
        "{label}: argmin diverged"
    );
    assert!(
        (candidate.tco().total().value() - reference.tco().total().value()).abs() <= 1e-12,
        "{label}: TCO {} vs reference {}",
        candidate.tco().total(),
        reference.tco().total()
    );
    assert!(
        (candidate.uptime().availability().value() - reference.uptime().availability().value())
            .abs()
            <= 1e-12,
        "{label}: U_s {} vs reference {}",
        candidate.uptime().availability().value(),
        reference.uptime().availability().value()
    );
}

/// The naive exhaustive reference: per-assignment `Evaluation::evaluate`
/// (clusters cloned, `SystemSpec` rebuilt), best picked by the objective.
fn naive_reference(space: &SearchSpace, model: &TcoModel, objective: Objective) -> Evaluation {
    let evaluations: Vec<Evaluation> = space
        .assignments()
        .map(|a| Evaluation::evaluate(space, model, &a))
        .collect();
    objective.best(&evaluations).unwrap().clone()
}

fn run_differential(seed: u64) {
    let mut rng = Rng::new(seed);
    let space = random_space(&mut rng);
    let model = random_model(&mut rng);

    for objective in [Objective::MinTco, Objective::MinPenaltyRisk] {
        let reference = naive_reference(&space, &model, objective);

        // Fast streaming search: same argmin, ≤1e-12 on TCO and uptime.
        let streamed = fast::search(&space, &model, objective);
        assert_same_optimum("fast::search", &reference, streamed.best().unwrap());
        assert_eq!(
            u128::from(streamed.stats().evaluated),
            space.assignment_count(),
            "fast::search must visit the whole space"
        );

        // Sharded streaming search at several thread counts.
        for threads in [1, 2, 3, 7] {
            let slim = parallel::search_best_with_threads(&space, &model, objective, threads);
            assert_same_optimum(
                &format!("parallel::search_best x{threads}"),
                &reference,
                slim.best().unwrap(),
            );
        }

        // Materializing parallel search must equal serial exhaustive
        // bit-for-bit (assignments, uptime, TCO — the whole list).
        let serial = exhaustive::search(&space, &model, objective);
        for threads in [1, 2, 5] {
            let sharded = parallel::search_with_threads(&space, &model, objective, threads);
            assert_eq!(
                serial.evaluations(),
                sharded.evaluations(),
                "parallel x{threads}: evaluation list diverged from serial"
            );
        }
        assert_same_optimum(
            "exhaustive (fast-backed)",
            &reference,
            serial.best().unwrap(),
        );

        // Greedy is a heuristic lower bound on quality: never better than
        // the true optimum, always a valid full assignment.
        let heuristic = greedy::search(&space, &model, objective);
        let greedy_best = heuristic.best().unwrap();
        assert_eq!(greedy_best.assignment().len(), space.len());
        assert!(
            !objective.better(greedy_best, &reference),
            "greedy beat the exhaustive optimum: {} < {}",
            greedy_best.tco().total(),
            reference.tco().total()
        );
    }

    // Pruned and branch-and-bound are MinTco-exact (their pruning argument
    // is cost-based); compare under MinTco only.
    let reference = naive_reference(&space, &model, Objective::MinTco);
    let clipped = pruned::search(&space, &model, Objective::MinTco);
    let best = clipped.best().unwrap();
    assert!(
        (best.tco().total().value() - reference.tco().total().value()).abs() <= 1e-12,
        "pruned: optimum TCO {} vs reference {}",
        best.tco().total(),
        reference.tco().total()
    );
    assert_eq!(
        u128::from(clipped.stats().considered()),
        space.assignment_count(),
        "pruned: evaluated + skipped must cover the space"
    );
    let bounded = branch_bound::search(&space, &model);
    assert_same_optimum("branch_bound", &reference, bounded.best().unwrap());
    assert_eq!(
        u128::from(bounded.stats().considered()),
        space.assignment_count(),
        "branch_bound: evaluated + skipped must cover the space"
    );

    // The bounded search shares the factorized evaluator with `fast`, so
    // its winner must be bit-identical (not merely within tolerance) to
    // the streaming argmin — and independent of the worker count.
    let streaming = fast::search(&space, &model, Objective::MinTco);
    let serial_best = bounded.best().unwrap();
    assert_eq!(
        serial_best,
        streaming.best().unwrap(),
        "branch_bound: winner must equal fast::search bit-for-bit"
    );
    for threads in [2, 8] {
        let sharded = branch_bound::search_with_threads(&space, &model, threads);
        assert_eq!(
            sharded.best().unwrap(),
            serial_best,
            "branch_bound x{threads}: winner diverged from single-threaded run"
        );
        assert_eq!(
            u128::from(sharded.stats().considered()),
            space.assignment_count(),
            "branch_bound x{threads}: evaluated + skipped must cover the space"
        );
    }
}

#[test]
fn seed_0() {
    run_differential(0);
}

#[test]
fn seed_1() {
    run_differential(1);
}

#[test]
fn seed_2() {
    run_differential(2);
}

#[test]
fn seed_3() {
    run_differential(3);
}

#[test]
fn seed_4() {
    run_differential(4);
}

/// A wider sweep beyond the contract seeds — cheap insurance against the
/// first five seeds being structurally lucky.
#[test]
fn seeds_5_through_24() {
    for seed in 5..25 {
        run_differential(seed);
    }
}

/// Every assignment (not just the argmin) of a random space evaluates
/// identically under the naive and factorized paths.
#[test]
fn fast_matches_naive_pointwise() {
    for seed in 0..10 {
        let mut rng = Rng::new(seed ^ 0xD1F7);
        let space = random_space(&mut rng);
        let model = random_model(&mut rng);
        let fast = uptime_optimizer::FastEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let naive = Evaluation::evaluate(&space, &model, &assignment);
            let quick = fast.evaluate(&assignment);
            assert_eq!(quick.assignment(), naive.assignment());
            assert_eq!(quick.cardinality(), naive.cardinality());
            assert!(
                (quick.tco().total().value() - naive.tco().total().value()).abs() <= 1e-12,
                "seed {seed} {assignment:?}"
            );
            assert!(
                (quick.uptime().availability().value() - naive.uptime().availability().value())
                    .abs()
                    <= 1e-12,
                "seed {seed} {assignment:?}"
            );
        }
    }
}
