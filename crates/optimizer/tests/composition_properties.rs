//! Property tests for the series–parallel composition algebra (ISSUE PR 7):
//!
//! * **Probability closure** — every assignment of every generated DAG
//!   space folds to an availability in `[0, 1]` and a non-negative cost.
//! * **Lattice monotonicity** — a `Series` composite is never more
//!   available than its weakest child; a `Parallel` composite is never
//!   less available than its best child.
//! * **Flattening invariance** — `Series[Series[..], ..]` and
//!   `Parallel[Parallel[..], ..]` evaluate identically to their flattened
//!   forms (associativity of the fold's frames).
//! * **Bound admissibility** — `composition_bnb::prefix_bound` never
//!   exceeds the true TCO of any completion, over every prefix of every
//!   assignment of a DAG space — the invariant exact pruning rests on.
//! * **Fold/Block agreement** — the factorized fold equals the naive
//!   [`uptime_core::composition::Block::failover_aware_availability`]
//!   evaluation pointwise.

use proptest::prelude::*;
use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    composition_bnb, Candidate, ComponentChoices, CompositionEvaluator, CompositionNode,
    CompositionSpace,
};

/// Strategy: one component with a free baseline plus up to 3 HA options,
/// all parameters drawn from continuous ranges (the same family
/// `bnb_properties.rs` exercises on serial spaces).
fn component_strategy(tag: String) -> impl Strategy<Value = ComponentChoices> {
    (
        0.001f64..0.25, // node down probability
        0.1f64..10.0,   // failures/year
        1usize..=3,     // number of candidates
        0.1f64..25.0,   // failover minutes for HA candidates
        1.0f64..4000.0, // cost scale
        2u32..=5,       // cluster width for HA candidates
    )
        .prop_map(move |(p, f, k, failover, cost, width)| {
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("{tag}-base"), Probability::new(p).unwrap(), f)
                    .unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let standby = (level as u32).min(width - 1);
                let cluster = ClusterSpec::builder(format!("{tag}-ha{level}"))
                    .total_nodes(width)
                    .standby_budget(standby)
                    .node_down_probability(Probability::new(p).unwrap())
                    .failures_per_year(FailuresPerYear::new(f).unwrap())
                    .failover_time(Minutes::new(failover).unwrap())
                    .build()
                    .unwrap();
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(cost * level as f64).unwrap(),
                    false,
                ));
            }
            ComponentChoices::new(tag.clone(), candidates).unwrap()
        })
}

/// Strategy: candidates that are all singleton clusters (`φ = 0`), so the
/// fold reduces to the pure breakdown algebra the lattice laws quantify
/// over.
fn singleton_component_strategy(tag: String) -> impl Strategy<Value = ComponentChoices> {
    prop::collection::vec((0.001f64..0.3, 0.0f64..500.0), 2..=3).prop_map(move |params| {
        let candidates = params
            .iter()
            .enumerate()
            .map(|(i, &(down, cost))| {
                Candidate::new(
                    format!("{tag}-{i}"),
                    ClusterSpec::singleton(
                        format!("{tag}-{i}"),
                        Probability::new(down).unwrap(),
                        1.0,
                    )
                    .unwrap(),
                    MoneyPerMonth::new(cost).unwrap(),
                    i == 0,
                )
            })
            .collect();
        ComponentChoices::new(tag.clone(), candidates).unwrap()
    })
}

/// A gateway spine leaf in series with 2–3 parallel branches of 1–2
/// components each — the archetype family's shape, randomized.
fn dag_space_strategy() -> impl Strategy<Value = CompositionSpace> {
    (
        component_strategy("gw".into()),
        prop::collection::vec(
            prop::collection::vec(component_strategy("site".into()), 1..=2),
            2..=3,
        ),
    )
        .prop_map(|(gw, branches)| {
            let branches = branches
                .into_iter()
                .map(|comps| {
                    CompositionNode::Series(
                        comps.into_iter().map(CompositionNode::Component).collect(),
                    )
                })
                .collect();
            CompositionSpace::new(CompositionNode::Series(vec![
                CompositionNode::Component(gw),
                CompositionNode::Parallel(branches),
            ]))
            .unwrap()
        })
}

/// A smaller DAG (gateway + two single-component branches) for the
/// quadratic prefix × completion admissibility sweep.
fn small_dag_space_strategy() -> impl Strategy<Value = CompositionSpace> {
    (
        component_strategy("gw".into()),
        component_strategy("a".into()),
        component_strategy("b".into()),
    )
        .prop_map(|(gw, a, b)| {
            CompositionSpace::new(CompositionNode::Series(vec![
                CompositionNode::Component(gw),
                CompositionNode::Parallel(vec![
                    CompositionNode::Component(a),
                    CompositionNode::Component(b),
                ]),
            ]))
            .unwrap()
        })
}

fn model_strategy() -> impl Strategy<Value = TcoModel> {
    (85.0f64..99.99, 1.0f64..500.0).prop_map(|(sla, rate)| {
        TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        )
    })
}

/// Availability of every assignment of a single-topology space.
fn availabilities(space: &CompositionSpace, model: &TcoModel) -> Vec<f64> {
    let eval = CompositionEvaluator::new(space, model);
    space
        .assignments()
        .map(|a| eval.evaluate(&a).uptime().availability().value())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Closure: the fold always lands in `[0, 1]` with non-negative cost,
    /// whatever the topology and candidate mix.
    #[test]
    fn fold_stays_in_probability_range(
        space in dag_space_strategy(),
        model in model_strategy(),
    ) {
        let eval = CompositionEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let e = eval.evaluate(&assignment);
            let avail = e.uptime().availability().value();
            prop_assert!((0.0..=1.0).contains(&avail), "{assignment:?}: {avail}");
            prop_assert!(e.tco().ha_cost().value() >= 0.0);
            prop_assert!(e.tco().total().value() >= 0.0);
        }
    }

    /// A serial chain is never more available than its weakest link:
    /// `U(Series[c0..cn]) ≤ min_i U(ci)`. Quantified over singleton
    /// candidates (`φ = 0`), where the fold is exactly the Eq. 2 product.
    #[test]
    fn series_no_better_than_weakest_child(
        comps in prop::collection::vec(singleton_component_strategy("t".into()), 2..=4),
        model in model_strategy(),
    ) {
        let child_avails: Vec<Vec<f64>> = comps
            .iter()
            .map(|c| {
                let solo =
                    CompositionSpace::new(CompositionNode::Component(c.clone())).unwrap();
                availabilities(&solo, &model)
            })
            .collect();
        let series = CompositionSpace::new(CompositionNode::Series(
            comps.iter().cloned().map(CompositionNode::Component).collect(),
        ))
        .unwrap();
        let eval = CompositionEvaluator::new(&series, &model);
        for assignment in series.assignments() {
            let combined = eval.evaluate(&assignment).uptime().availability().value();
            let weakest = assignment
                .iter()
                .enumerate()
                .map(|(i, &d)| child_avails[i][d])
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                combined <= weakest + 1e-12,
                "{assignment:?}: series {combined} > weakest child {weakest}"
            );
        }
    }

    /// Site redundancy is never worse than the best single site:
    /// `U(Parallel[c0..cn]) ≥ max_i U(ci)`. HA candidates allowed — the
    /// parallel composite masks each child's failover blips, so it can
    /// only beat the standalone (failover-charged) child.
    #[test]
    fn parallel_no_worse_than_best_child(
        comps in prop::collection::vec(component_strategy("t".into()), 2..=4),
        model in model_strategy(),
    ) {
        let child_avails: Vec<Vec<f64>> = comps
            .iter()
            .map(|c| {
                let solo =
                    CompositionSpace::new(CompositionNode::Component(c.clone())).unwrap();
                availabilities(&solo, &model)
            })
            .collect();
        let parallel = CompositionSpace::new(CompositionNode::Parallel(
            comps.iter().cloned().map(CompositionNode::Component).collect(),
        ))
        .unwrap();
        let eval = CompositionEvaluator::new(&parallel, &model);
        for assignment in parallel.assignments() {
            let combined = eval.evaluate(&assignment).uptime().availability().value();
            let best = assignment
                .iter()
                .enumerate()
                .map(|(i, &d)| child_avails[i][d])
                .fold(0.0f64, f64::max);
            prop_assert!(
                combined >= best - 1e-12,
                "{assignment:?}: parallel {combined} < best child {best}"
            );
        }
    }

    /// Associativity: nesting `Series` inside `Series` (here inside a
    /// parallel branch, so composite frames are exercised) evaluates
    /// identically to the flattened chain.
    #[test]
    fn nested_series_flattens_invariantly(
        c0 in component_strategy("c0".into()),
        c1 in component_strategy("c1".into()),
        c2 in component_strategy("c2".into()),
        c3 in component_strategy("c3".into()),
        model in model_strategy(),
    ) {
        let nested = CompositionSpace::new(CompositionNode::Parallel(vec![
            CompositionNode::Series(vec![
                CompositionNode::Series(vec![
                    CompositionNode::Component(c0.clone()),
                    CompositionNode::Component(c1.clone()),
                ]),
                CompositionNode::Component(c2.clone()),
            ]),
            CompositionNode::Component(c3.clone()),
        ]))
        .unwrap();
        let flat = CompositionSpace::new(CompositionNode::Parallel(vec![
            CompositionNode::Series(vec![
                CompositionNode::Component(c0),
                CompositionNode::Component(c1),
                CompositionNode::Component(c2),
            ]),
            CompositionNode::Component(c3),
        ]))
        .unwrap();
        prop_assert_eq!(nested.assignment_count(), flat.assignment_count());
        let nested_avails = availabilities(&nested, &model);
        let flat_avails = availabilities(&flat, &model);
        for (n, f) in nested_avails.iter().zip(&flat_avails) {
            prop_assert!((n - f).abs() <= 1e-12, "nested {n} vs flat {f}");
        }
    }

    /// Associativity for `Parallel` inside `Parallel`.
    #[test]
    fn nested_parallel_flattens_invariantly(
        c0 in component_strategy("c0".into()),
        c1 in component_strategy("c1".into()),
        c2 in component_strategy("c2".into()),
        model in model_strategy(),
    ) {
        let nested = CompositionSpace::new(CompositionNode::Parallel(vec![
            CompositionNode::Parallel(vec![
                CompositionNode::Component(c0.clone()),
                CompositionNode::Component(c1.clone()),
            ]),
            CompositionNode::Component(c2.clone()),
        ]))
        .unwrap();
        let flat = CompositionSpace::new(CompositionNode::Parallel(vec![
            CompositionNode::Component(c0),
            CompositionNode::Component(c1),
            CompositionNode::Component(c2),
        ]))
        .unwrap();
        prop_assert_eq!(nested.assignment_count(), flat.assignment_count());
        let nested_avails = availabilities(&nested, &model);
        let flat_avails = availabilities(&flat, &model);
        for (n, f) in nested_avails.iter().zip(&flat_avails) {
            prop_assert!((n - f).abs() <= 1e-12, "nested {n} vs flat {f}");
        }
    }

    /// `prefix_bound(prefix) ≤ TCO(completion)` for every prefix of every
    /// assignment of a DAG space — the composition analogue of the serial
    /// admissibility law, including prefixes that cut a parallel subtree
    /// in half.
    #[test]
    fn prefix_bound_is_admissible_on_dags(
        space in small_dag_space_strategy(),
        model in model_strategy(),
    ) {
        let eval = CompositionEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let tco = eval.evaluate(&assignment).tco().total().value();
            for depth in 0..=assignment.len() {
                let bound =
                    composition_bnb::prefix_bound(&space, &model, &assignment[..depth]);
                prop_assert!(
                    bound <= tco + 1e-9,
                    "inadmissible bound at depth {depth}: bound {bound} > TCO {tco} \
                     for completion {assignment:?}"
                );
            }
        }
    }

    /// The factorized fold agrees with the naive `Block` evaluation
    /// pointwise — every assignment, not just the argmin.
    #[test]
    fn fold_matches_block_pointwise(
        space in dag_space_strategy(),
        model in model_strategy(),
    ) {
        let eval = CompositionEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let folded = eval.evaluate(&assignment).uptime().availability().value();
            let direct = space
                .to_block(&assignment)
                .failover_aware_availability()
                .value();
            prop_assert!(
                (folded - direct).abs() <= 1e-12,
                "{assignment:?}: fold {folded} vs block {direct}"
            );
        }
    }
}
