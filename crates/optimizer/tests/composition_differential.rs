//! Differential harness for the series–parallel composition engines.
//!
//! Two contracts, checked over seeded random spaces:
//!
//! * **Serial special case.** On a pure-series `CompositionSpace` (built
//!   with `from_serial`) the composition streaming search and the
//!   composition branch-and-bound must return winners **bit-identical**
//!   (`assert_eq!` on the whole `Evaluation`) to `fast::search` and
//!   `branch_bound::search`, across seeds 0–24 and 1/2/8 worker threads.
//!   The fold multiplies by `mask = 1.0` and adds `extra_cost = 0.0`, both
//!   of which preserve every bit, so nothing weaker than equality is
//!   acceptable here.
//! * **DAG topologies.** On random series–parallel spaces (a spine
//!   gateway plus 2–3 parallel site chains) the winners of both engines
//!   must match a naive exhaustive sweep that materializes every
//!   assignment's [`uptime_core::composition::Block`] and prices it
//!   through `Block::failover_aware_availability` — same argmin, TCO and
//!   uptime within `1e-12` — again thread-count independent.
//!
//! Parameters are continuous, so exact ties occur with probability zero
//! (see `differential.rs` for the argument); strict argmin comparison is
//! therefore sound.

use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    branch_bound, composition, composition_bnb, fast, Candidate, ComponentChoices, CompositionNode,
    CompositionSpace, Evaluation, Objective, SearchSpace,
};

/// Deterministic splitmix64 — self-contained so the harness does not
/// depend on any RNG crate's stream staying stable.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }
}

/// A random HA candidate: `K ∈ [2,5]`, `K̂ ∈ [1, K−1]`, continuous `P`,
/// `f`, `t`, and cost.
fn random_ha_candidate(rng: &mut Rng, name: &str, idx: usize) -> Candidate {
    let total = rng.int(2, 5);
    let standby = rng.int(1, total - 1);
    let cluster = ClusterSpec::builder(format!("{name}-m{idx}"))
        .total_nodes(total)
        .standby_budget(standby)
        .node_down_probability(Probability::new(rng.range(0.001, 0.2)).unwrap())
        .failures_per_year(FailuresPerYear::new(rng.range(0.5, 20.0)).unwrap())
        .failover_time(Minutes::new(rng.range(0.1, 30.0)).unwrap())
        .build()
        .unwrap();
    Candidate::new(
        format!("ha-{name}-{idx}"),
        cluster,
        MoneyPerMonth::new(rng.range(50.0, 5000.0)).unwrap(),
        false,
    )
}

/// A random choice set: baseline singleton + `k−1` HA candidates.
fn random_choices(rng: &mut Rng, name: &str, max_k: u32) -> ComponentChoices {
    let baseline = Candidate::new(
        format!("none-{name}"),
        ClusterSpec::singleton(
            format!("{name}-base"),
            Probability::new(rng.range(0.01, 0.15)).unwrap(),
            rng.range(1.0, 15.0),
        )
        .unwrap(),
        MoneyPerMonth::ZERO,
        true,
    );
    let k = rng.int(2, max_k) as usize;
    let mut candidates = vec![baseline];
    for idx in 1..k {
        candidates.push(random_ha_candidate(rng, name, idx));
    }
    ComponentChoices::new(name, candidates).unwrap()
}

/// A random serial space: `n ∈ [1,4]` components, `k ∈ [2,4]` candidates.
fn random_serial_space(rng: &mut Rng) -> SearchSpace {
    let n = rng.int(1, 4) as usize;
    let components = (0..n)
        .map(|comp| random_choices(rng, &format!("tier-{comp}"), 4))
        .collect();
    SearchSpace::new(components).unwrap()
}

/// A random DAG space: a spine gateway leaf in series with a parallel
/// composite of 2–3 site chains, each a series of 1–2 components. Sized
/// (`k ∈ [2,3]`, ≤ 7 leaves) so the naive `Block` sweep stays cheap.
fn random_dag_space(rng: &mut Rng) -> CompositionSpace {
    let sites = rng.int(2, 3);
    let branches = (0..sites)
        .map(|s| {
            let depth = rng.int(1, 2);
            CompositionNode::Series(
                (0..depth)
                    .map(|d| {
                        CompositionNode::Component(random_choices(rng, &format!("s{s}t{d}"), 3))
                    })
                    .collect(),
            )
        })
        .collect();
    CompositionSpace::new(CompositionNode::Series(vec![
        CompositionNode::Component(random_choices(rng, "gw", 3)),
        CompositionNode::Parallel(branches),
    ]))
    .unwrap()
}

fn random_model(rng: &mut Rng) -> TcoModel {
    TcoModel::new(
        SlaTarget::from_percent(rng.range(90.0, 99.9)).unwrap(),
        PenaltyClause::per_hour(rng.range(10.0, 500.0)).unwrap(),
    )
}

/// Pure-series contract: composition engines are bit-identical to the
/// serial engines — winners compare with `assert_eq!`, not tolerance.
fn run_serial_differential(seed: u64) {
    let mut rng = Rng::new(seed);
    let serial = random_serial_space(&mut rng);
    let space = CompositionSpace::from_serial(&serial);
    let model = random_model(&mut rng);
    assert!(space.is_pure_series());

    for objective in [Objective::MinTco, Objective::MinPenaltyRisk] {
        let fast_win = fast::search(&serial, &model, objective);
        let comp_win = composition::search(&space, &model, objective);
        assert_eq!(
            comp_win.best().unwrap(),
            fast_win.best().unwrap(),
            "seed {seed}: composition::search must equal fast::search bit-for-bit"
        );
        assert_eq!(
            u128::from(comp_win.stats().evaluated),
            space.assignment_count(),
            "seed {seed}: streaming search must visit the whole space"
        );
    }

    // The bounded engines are MinTco-exact; their winners must agree with
    // each other and with the streaming argmin, at every thread count.
    let serial_bnb = branch_bound::search(&serial, &model);
    for threads in [1, 2, 8] {
        let comp_bnb = composition_bnb::search_with_threads(&space, &model, threads);
        assert_eq!(
            comp_bnb.best().unwrap(),
            serial_bnb.best().unwrap(),
            "seed {seed} x{threads}: composition BnB diverged from serial BnB"
        );
        assert_eq!(
            u128::from(comp_bnb.stats().considered()),
            space.assignment_count(),
            "seed {seed} x{threads}: evaluated + skipped must cover the space"
        );
    }
}

/// The naive DAG reference: materialize every assignment's `Block`, price
/// it with `failover_aware_availability` + the TCO model, and argmin under
/// `MinTco`'s (total, cardinality, availability) order.
fn naive_block_reference(space: &CompositionSpace, model: &TcoModel) -> (Vec<usize>, f64, f64) {
    let mut best: Option<(Vec<usize>, f64, usize, f64)> = None;
    for assignment in space.assignments() {
        let block = space.to_block(&assignment);
        block.validate().expect("generated diagrams are valid");
        let avail = block.failover_aware_availability();
        let cost = MoneyPerMonth::new(space.monthly_cost(&assignment)).unwrap();
        let total = model.evaluate(cost, avail).total().value();
        let cardinality = space.cardinality(&assignment);
        let better = match &best {
            None => true,
            Some((_, bt, bc, ba)) => {
                total < *bt
                    || (total == *bt
                        && (cardinality < *bc || (cardinality == *bc && avail.value() > *ba)))
            }
        };
        if better {
            best = Some((assignment, total, cardinality, avail.value()));
        }
    }
    let (assignment, total, _, avail) = best.expect("non-empty space");
    (assignment, total, avail)
}

/// DAG contract: both composition engines match the naive `Block` sweep
/// within `1e-12`, independent of thread count.
fn run_dag_differential(seed: u64) {
    let mut rng = Rng::new(seed ^ 0xDA6_0DA6);
    let space = random_dag_space(&mut rng);
    let model = random_model(&mut rng);
    assert!(!space.is_pure_series());

    let (ref_assignment, ref_total, ref_avail) = naive_block_reference(&space, &model);

    let check = |label: &str, best: &Evaluation| {
        assert_eq!(
            best.assignment(),
            &ref_assignment[..],
            "seed {seed} {label}: argmin diverged from Block sweep"
        );
        assert!(
            (best.tco().total().value() - ref_total).abs() <= 1e-12,
            "seed {seed} {label}: TCO {} vs Block sweep {ref_total}",
            best.tco().total()
        );
        assert!(
            (best.uptime().availability().value() - ref_avail).abs() <= 1e-12,
            "seed {seed} {label}: U_s {} vs Block sweep {ref_avail}",
            best.uptime().availability().value()
        );
    };

    let streamed = composition::search(&space, &model, Objective::MinTco);
    check("composition::search", streamed.best().unwrap());
    assert_eq!(
        u128::from(streamed.stats().evaluated),
        space.assignment_count()
    );

    for threads in [1, 2, 8] {
        let bounded = composition_bnb::search_with_threads(&space, &model, threads);
        check(
            &format!("composition_bnb x{threads}"),
            bounded.best().unwrap(),
        );
        assert_eq!(
            u128::from(bounded.stats().considered()),
            space.assignment_count(),
            "seed {seed} x{threads}: evaluated + skipped must cover the space"
        );
        // Thread counts must also agree bit-for-bit with each other.
        assert_eq!(
            bounded.best().unwrap(),
            composition_bnb::search(&space, &model).best().unwrap(),
            "seed {seed} x{threads}: thread count changed the winner"
        );
    }
}

#[test]
fn serial_seed_0() {
    run_serial_differential(0);
}

#[test]
fn serial_seed_1() {
    run_serial_differential(1);
}

#[test]
fn serial_seed_2() {
    run_serial_differential(2);
}

#[test]
fn serial_seed_3() {
    run_serial_differential(3);
}

#[test]
fn serial_seed_4() {
    run_serial_differential(4);
}

/// The wider sweep the PR contract names: seeds 5–24 on top of the five
/// individually-reported seeds above.
#[test]
fn serial_seeds_5_through_24() {
    for seed in 5..25 {
        run_serial_differential(seed);
    }
}

#[test]
fn dag_seed_0() {
    run_dag_differential(0);
}

#[test]
fn dag_seed_1() {
    run_dag_differential(1);
}

#[test]
fn dag_seed_2() {
    run_dag_differential(2);
}

#[test]
fn dag_seed_3() {
    run_dag_differential(3);
}

#[test]
fn dag_seed_4() {
    run_dag_differential(4);
}

#[test]
fn dag_seeds_5_through_24() {
    for seed in 5..25 {
        run_dag_differential(seed);
    }
}

/// Every assignment of a random DAG space evaluates identically under the
/// factorized fold and the naive `Block` path — not just the argmin.
#[test]
fn fold_matches_block_pointwise_on_random_dags() {
    for seed in 0..10 {
        let mut rng = Rng::new(seed ^ 0xB10C);
        let space = random_dag_space(&mut rng);
        let model = random_model(&mut rng);
        let eval = composition::CompositionEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let folded = eval.evaluate(&assignment);
            let avail = space
                .to_block(&assignment)
                .failover_aware_availability()
                .value();
            assert!(
                (folded.uptime().availability().value() - avail).abs() <= 1e-12,
                "seed {seed} {assignment:?}: fold {} vs block {avail}",
                folded.uptime().availability().value()
            );
            // Costs reach thousands and the fold sums spine and masked
            // leaves separately, so association noise is a few ulps of the
            // total — compare at 1e-9 (still ~1e-13 relative).
            assert!(
                (folded.tco().ha_cost().value() - space.monthly_cost(&assignment)).abs() <= 1e-9,
                "seed {seed} {assignment:?}: fold cost {} vs flat sum {}",
                folded.tco().ha_cost().value(),
                space.monthly_cost(&assignment)
            );
            assert_eq!(folded.cardinality(), space.cardinality(&assignment));
        }
    }
}
