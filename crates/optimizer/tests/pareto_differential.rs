//! Differential harness for epsilon-dominance frontier extraction
//! (ISSUE PR 9 acceptance): over seeded random spaces — serial chains
//! and series–parallel DAGs — `pareto_bnb` must reproduce exhaustive
//! dominance filtering.
//!
//! Checked per seed 0–24, with and without hard SLO box constraints:
//!
//! * **Reference equality.** The branch-and-bound frontier's
//!   `(cost, uptime)` pairs equal the naive reference's — a full
//!   materializing sweep plus the O(N²) dominance definition — so every
//!   naive-frontier point is matched exactly (trivially within any
//!   epsilon) by a returned point.
//! * **Mutual non-domination.** No returned point weakly dominates
//!   another.
//! * **Thread independence.** Worker counts 1, 2, and 8 return
//!   bit-identical frontiers (`assert_eq!` on the full `ParetoPoint`
//!   list, representatives included).
//! * **Coverage accounting.** `leaves_evaluated + variants_skipped`
//!   equals the space size — pruning never loses track of a subtree.

use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    pareto_bnb, Candidate, ComponentChoices, CompositionNode, CompositionSpace,
    FrontierConstraints, ParetoPoint, SearchSpace,
};

/// Deterministic splitmix64 — self-contained so the harness does not
/// depend on any RNG crate's stream staying stable.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }
}

/// A random HA candidate: `K ∈ [2,5]`, `K̂ ∈ [1, K−1]`, continuous `P`,
/// `f`, `t`, and cost.
fn random_ha_candidate(rng: &mut Rng, name: &str, idx: usize) -> Candidate {
    let total = rng.int(2, 5);
    let standby = rng.int(1, total - 1);
    let cluster = ClusterSpec::builder(format!("{name}-m{idx}"))
        .total_nodes(total)
        .standby_budget(standby)
        .node_down_probability(Probability::new(rng.range(0.001, 0.2)).unwrap())
        .failures_per_year(FailuresPerYear::new(rng.range(0.5, 20.0)).unwrap())
        .failover_time(Minutes::new(rng.range(0.1, 30.0)).unwrap())
        .build()
        .unwrap();
    Candidate::new(
        format!("ha-{name}-{idx}"),
        cluster,
        MoneyPerMonth::new(rng.range(50.0, 5000.0)).unwrap(),
        false,
    )
}

/// A random choice set: baseline singleton + `k−1` HA candidates.
fn random_choices(rng: &mut Rng, name: &str, max_k: u32) -> ComponentChoices {
    let baseline = Candidate::new(
        format!("none-{name}"),
        ClusterSpec::singleton(
            format!("{name}-base"),
            Probability::new(rng.range(0.01, 0.15)).unwrap(),
            rng.range(1.0, 15.0),
        )
        .unwrap(),
        MoneyPerMonth::ZERO,
        true,
    );
    let k = rng.int(2, max_k) as usize;
    let mut candidates = vec![baseline];
    for idx in 1..k {
        candidates.push(random_ha_candidate(rng, name, idx));
    }
    ComponentChoices::new(name, candidates).unwrap()
}

/// A random serial space: `n ∈ [1,4]` components, `k ∈ [2,4]` candidates.
fn random_serial_space(rng: &mut Rng) -> SearchSpace {
    let n = rng.int(1, 4) as usize;
    let components = (0..n)
        .map(|comp| random_choices(rng, &format!("tier-{comp}"), 4))
        .collect();
    SearchSpace::new(components).unwrap()
}

/// A random DAG space: a spine gateway leaf in series with a parallel
/// composite of 2–3 site chains, each a series of 1–2 components —
/// the archetype shape the broker serves.
fn random_dag_space(rng: &mut Rng) -> CompositionSpace {
    let sites = rng.int(2, 3);
    let branches = (0..sites)
        .map(|s| {
            let depth = rng.int(1, 2);
            CompositionNode::Series(
                (0..depth)
                    .map(|d| {
                        CompositionNode::Component(random_choices(rng, &format!("s{s}t{d}"), 3))
                    })
                    .collect(),
            )
        })
        .collect();
    CompositionSpace::new(CompositionNode::Series(vec![
        CompositionNode::Component(random_choices(rng, "gw", 3)),
        CompositionNode::Parallel(branches),
    ]))
    .unwrap()
}

fn random_model(rng: &mut Rng) -> TcoModel {
    TcoModel::new(
        SlaTarget::from_percent(rng.range(90.0, 99.9)).unwrap(),
        PenaltyClause::per_hour(rng.range(10.0, 500.0)).unwrap(),
    )
}

/// Random hard constraints that usually leave the space feasible: the
/// cap and floor are drawn between the space's own extremes so some —
/// but typically not all — points survive.
fn random_constraints(rng: &mut Rng, naive_all: &[ParetoPoint]) -> FrontierConstraints {
    let costs: Vec<f64> = naive_all.iter().map(|p| p.ha_cost().value()).collect();
    let ups: Vec<f64> = naive_all.iter().map(|p| p.uptime().value()).collect();
    let max_cost = costs.iter().copied().fold(0.0f64, f64::max);
    let min_up = ups.iter().copied().fold(1.0f64, f64::min);
    let max_up = ups.iter().copied().fold(0.0f64, f64::max);
    FrontierConstraints {
        max_cost: Some(rng.range(max_cost * 0.3, max_cost * 1.1)),
        min_uptime: Some(rng.range(min_up, (min_up + max_up) / 2.0)),
        max_failover_minutes: Some(rng.range(1.0, 600.0)),
    }
}

fn pairs(points: &[ParetoPoint]) -> Vec<(f64, f64)> {
    points
        .iter()
        .map(|p| (p.ha_cost().value(), p.uptime().value()))
        .collect()
}

fn assert_mutually_non_dominated(points: &[ParetoPoint], label: &str) {
    for (i, a) in points.iter().enumerate() {
        for (j, b) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = a.ha_cost() <= b.ha_cost() && a.uptime() >= b.uptime();
            assert!(!dominates, "{label}: point {i} weakly dominates point {j}");
        }
    }
}

fn run_serial_differential(seed: u64) {
    let mut rng = Rng::new(seed);
    let space = random_serial_space(&mut rng);
    let model = random_model(&mut rng);
    let unconstrained = pareto_bnb::naive_frontier(&space, &model, &FrontierConstraints::NONE);
    let constraints = random_constraints(&mut rng, &unconstrained);

    for (label, cons) in [
        ("unconstrained", FrontierConstraints::NONE),
        ("constrained", constraints),
    ] {
        let naive = pareto_bnb::naive_frontier(&space, &model, &cons);
        let base = pareto_bnb::search_with_threads(&space, &model, &cons, 1e-9, 1);
        assert_eq!(
            pairs(base.points()),
            pairs(&naive),
            "seed {seed} {label}: BnB frontier diverged from naive dominance filter"
        );
        assert_mutually_non_dominated(base.points(), label);
        let swept = pareto_bnb::sweep(&space, &model, &cons, 1e-9);
        assert_eq!(
            base.points(),
            swept.points(),
            "seed {seed} {label}: exhaustive sweep engine diverged from BnB"
        );
        let total = base.stats().leaves_evaluated + base.stats().variants_skipped;
        assert_eq!(
            u128::from(total),
            space.assignment_count(),
            "seed {seed} {label}: evaluated + skipped must cover the space"
        );
        for threads in [2, 8] {
            let other = pareto_bnb::search_with_threads(&space, &model, &cons, 1e-9, threads);
            assert_eq!(
                base.points(),
                other.points(),
                "seed {seed} {label} x{threads}: frontier not thread-count-independent"
            );
        }
    }
}

fn run_dag_differential(seed: u64) {
    let mut rng = Rng::new(seed);
    let space = random_dag_space(&mut rng);
    let model = random_model(&mut rng);
    let unconstrained =
        pareto_bnb::naive_composition_frontier(&space, &model, &FrontierConstraints::NONE);
    let constraints = random_constraints(&mut rng, &unconstrained);

    for (label, cons) in [
        ("unconstrained", FrontierConstraints::NONE),
        ("constrained", constraints),
    ] {
        let naive = pareto_bnb::naive_composition_frontier(&space, &model, &cons);
        let base = pareto_bnb::composition_search_with_threads(&space, &model, &cons, 1e-9, 1);
        assert_eq!(
            pairs(base.points()),
            pairs(&naive),
            "seed {seed} {label}: composition BnB diverged from naive dominance filter"
        );
        assert_mutually_non_dominated(base.points(), label);
        let swept = pareto_bnb::composition_sweep(&space, &model, &cons, 1e-9);
        assert_eq!(
            base.points(),
            swept.points(),
            "seed {seed} {label}: exhaustive composition sweep diverged from BnB"
        );
        for threads in [2, 8] {
            let other =
                pareto_bnb::composition_search_with_threads(&space, &model, &cons, 1e-9, threads);
            assert_eq!(
                base.points(),
                other.points(),
                "seed {seed} {label} x{threads}: frontier not thread-count-independent"
            );
        }
    }
}

#[test]
fn serial_frontier_matches_naive_seeds_0_24() {
    for seed in 0..25 {
        run_serial_differential(seed);
    }
}

#[test]
fn dag_frontier_matches_naive_seeds_0_24() {
    for seed in 0..25 {
        run_dag_differential(seed);
    }
}

#[test]
fn pure_series_composition_matches_serial_engine() {
    for seed in 0..25 {
        let mut rng = Rng::new(seed);
        let serial = random_serial_space(&mut rng);
        let space = CompositionSpace::from_serial(&serial);
        let model = random_model(&mut rng);
        let a = pareto_bnb::search(&serial, &model, &FrontierConstraints::NONE, 1e-9);
        let b = pareto_bnb::composition_search(&space, &model, &FrontierConstraints::NONE, 1e-9);
        assert_eq!(
            a.points(),
            b.points(),
            "seed {seed}: composition engine must equal serial engine bit-for-bit"
        );
    }
}
