//! Golden snapshots of the archetype scenario pack (ISSUE PR 7).
//!
//! Pins, as a checked-in text file, everything a catalog or archetype
//! change could silently move: each archetype's leaf layout (names,
//! candidate labels, costs, topology rendering) and the winning
//! recommendation on the paper's case-study catalog (assignment,
//! cardinality, TCO, availability to 15 decimals).
//!
//! On an intended change, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p uptime-optimizer --test archetype_golden`
//! and review the diff like any other code change.

use std::fmt::Write as _;

use uptime_catalog::case_study;
use uptime_optimizer::{composition, composition_bnb, Archetype, Objective};

fn render_golden() -> String {
    let catalog = case_study::catalog();
    let cloud = case_study::cloud_id();
    let model = case_study::tco_model();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Archetype scenario pack on the paper's case-study catalog\n\
         # (98% SLA, $100/h penalty, ceiling rounding). Regenerate with\n\
         # UPDATE_GOLDEN=1 cargo test -p uptime-optimizer --test archetype_golden\n"
    );
    for &archetype in Archetype::all() {
        let space = archetype.space(&catalog, &cloud).expect("case-study space");
        let _ = writeln!(out, "== {archetype} ==");
        let _ = writeln!(out, "description: {}", archetype.description());
        let _ = writeln!(
            out,
            "leaves: {}  assignments: {}  pure-series: {}",
            space.leaf_count(),
            space.assignment_count(),
            space.is_pure_series()
        );
        let _ = writeln!(out, "topology: {space}");
        for leaf in space.leaves() {
            let candidates: Vec<String> = leaf
                .candidates()
                .iter()
                .map(|c| format!("{} (${:.0})", c.label(), c.monthly_cost().value()))
                .collect();
            let _ = writeln!(out, "leaf {}: {}", leaf.name(), candidates.join(" | "));
        }
        let outcome = composition::search(&space, &model, Objective::MinTco);
        let best = outcome.best().expect("non-empty space");
        let _ = writeln!(out, "winner assignment: {:?}", best.assignment());
        let _ = writeln!(out, "winner cardinality: {}", best.cardinality());
        let _ = writeln!(out, "winner tco: ${:.4}/mo", best.tco().total().value());
        let _ = writeln!(
            out,
            "winner availability: {:.15}",
            best.uptime().availability().value()
        );
        let _ = writeln!(out);
    }
    out
}

#[test]
fn archetype_pack_matches_golden_file() {
    let actual = render_golden();
    let path = format!("{}/tests/golden/archetypes.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e}; regenerate with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "archetype pack drifted from tests/golden/archetypes.txt; if the \
         change is intended, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn bnb_agrees_with_golden_winners() {
    // The golden file pins the streaming search; the exact branch-and-bound
    // must land on the same optimum for every shape.
    let catalog = case_study::catalog();
    let cloud = case_study::cloud_id();
    let model = case_study::tco_model();
    for &archetype in Archetype::all() {
        let space = archetype.space(&catalog, &cloud).unwrap();
        let fast = composition::search(&space, &model, Objective::MinTco);
        let bnb = composition_bnb::search_with_threads(&space, &model, 0);
        assert_eq!(
            bnb.best().unwrap().assignment(),
            fast.best().unwrap().assignment(),
            "{archetype}"
        );
    }
}
