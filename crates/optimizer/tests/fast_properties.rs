//! Property tests for the factorized evaluation engine and the model
//! invariants it must preserve (ISSUE PR 2 satellites):
//!
//! * `U_s ∈ [0, 1]` for every assignment of every valid space.
//! * `B_s + F_s = D_s` (saturated at 1), i.e. downtime decomposes exactly
//!   into breakdown and failover shares.
//! * At fixed `C_HA`, TCO is monotone non-increasing in `U_s` — more
//!   uptime can only shrink the slippage penalty (Eq. 5).
//! * Superset pruning never discards the exhaustive optimum.
//! * Fast and naive evaluation agree pointwise (≤1e-12) on arbitrary
//!   spaces, and the streaming search returns the exhaustive argmin.

use proptest::prelude::*;
use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    exhaustive, fast, pruned, Candidate, ComponentChoices, Evaluation, FastEvaluator, Objective,
    SearchSpace,
};

/// Strategy: one component with a free baseline plus up to 3 HA options,
/// all parameters drawn from continuous ranges.
fn component_strategy(index: usize) -> impl Strategy<Value = ComponentChoices> {
    (
        0.001f64..0.25, // node down probability
        0.1f64..10.0,   // failures/year
        1usize..=4,     // number of candidates
        0.1f64..25.0,   // failover minutes for HA candidates
        1.0f64..4000.0, // cost scale
        2u32..=5,       // cluster width for HA candidates
    )
        .prop_map(move |(p, f, k, failover, cost, width)| {
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("c{index}"), Probability::new(p).unwrap(), f)
                    .unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let standby = (level as u32).min(width - 1);
                let cluster = ClusterSpec::builder(format!("c{index}-ha{level}"))
                    .total_nodes(width)
                    .standby_budget(standby)
                    .node_down_probability(Probability::new(p).unwrap())
                    .failures_per_year(FailuresPerYear::new(f).unwrap())
                    .failover_time(Minutes::new(failover).unwrap())
                    .build()
                    .unwrap();
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(cost * level as f64).unwrap(),
                    false,
                ));
            }
            ComponentChoices::new(format!("comp{index}"), candidates).unwrap()
        })
}

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(any::<u8>(), 1..=4).prop_flat_map(|seeds| {
        let comps: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| component_strategy(i))
            .collect();
        comps.prop_map(|v| SearchSpace::new(v).unwrap())
    })
}

fn model_strategy() -> impl Strategy<Value = TcoModel> {
    (85.0f64..99.99, 1.0f64..500.0).prop_map(|(sla, rate)| {
        TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `U_s` is a probability and downtime decomposes as `B_s + F_s`
    /// (saturated), under both the naive and factorized evaluators.
    #[test]
    fn uptime_in_unit_interval_and_decomposes(
        space in space_strategy(),
        model in model_strategy(),
    ) {
        let fast_eval = FastEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            for e in [
                Evaluation::evaluate(&space, &model, &assignment),
                fast_eval.evaluate(&assignment),
            ] {
                let u = e.uptime().availability().value();
                prop_assert!((0.0..=1.0).contains(&u), "U_s = {u}");
                let b = e.uptime().breakdown_probability().value();
                let f = e.uptime().failover_probability().value();
                let d = e.uptime().downtime_probability().value();
                prop_assert!(
                    (d - (b + f).min(1.0)).abs() <= 1e-15,
                    "D_s {d} != B_s {b} + F_s {f}"
                );
            }
        }
    }

    /// Eq. 5 monotonicity: at fixed `C_HA`, higher modeled uptime never
    /// raises the TCO (the penalty term is non-increasing in `U_s`).
    #[test]
    fn tco_monotone_non_increasing_in_uptime(
        model in model_strategy(),
        ha_cost in 0.0f64..10_000.0,
        u_lo in 0.0f64..1.0,
        u_hi in 0.0f64..1.0,
    ) {
        let (lo, hi) = if u_lo <= u_hi { (u_lo, u_hi) } else { (u_hi, u_lo) };
        let cost = MoneyPerMonth::new(ha_cost).unwrap();
        let at_lo = model.evaluate(cost, Probability::new(lo).unwrap());
        let at_hi = model.evaluate(cost, Probability::new(hi).unwrap());
        prop_assert!(
            at_hi.total() <= at_lo.total(),
            "TCO rose with uptime: U={lo} -> {}, U={hi} -> {}",
            at_lo.total(),
            at_hi.total()
        );
    }

    /// Superset pruning is exact: the pruned optimum equals the exhaustive
    /// optimum (the skipped assignments never contain it).
    #[test]
    fn pruning_never_discards_optimum(
        space in space_strategy(),
        model in model_strategy(),
    ) {
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        let clipped = pruned::search(&space, &model, Objective::MinTco);
        prop_assert_eq!(
            full.best().unwrap().tco().total(),
            clipped.best().unwrap().tco().total()
        );
        prop_assert_eq!(
            u128::from(clipped.stats().considered()),
            space.assignment_count()
        );
    }

    /// The factorized engine agrees with the naive reference pointwise,
    /// and its streaming search returns the exhaustive argmin.
    #[test]
    fn fast_engine_matches_naive(
        space in space_strategy(),
        model in model_strategy(),
    ) {
        let fast_eval = FastEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let naive = Evaluation::evaluate(&space, &model, &assignment);
            let quick = fast_eval.evaluate(&assignment);
            prop_assert_eq!(quick.cardinality(), naive.cardinality());
            prop_assert!(
                (quick.tco().total().value() - naive.tco().total().value()).abs() <= 1e-12
            );
            prop_assert!(
                (quick.uptime().availability().value()
                    - naive.uptime().availability().value()).abs() <= 1e-12
            );
        }
        let streamed = fast::search(&space, &model, Objective::MinTco);
        let full = exhaustive::search(&space, &model, Objective::MinTco);
        prop_assert_eq!(
            streamed.best().unwrap().assignment(),
            full.best().unwrap().assignment()
        );
    }
}
