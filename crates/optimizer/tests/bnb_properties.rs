//! Property tests for the branch-and-bound engine (ISSUE PR 5):
//!
//! * **Admissibility** — for every prefix of every assignment of a random
//!   space, `branch_bound::prefix_bound` never exceeds the true TCO of any
//!   completion of that prefix. This is the invariant §III.C-style pruning
//!   exactness rests on: a subtree is discarded only when its bound
//!   already beats the incumbent, so an admissible bound can never discard
//!   the optimum.
//! * **Exactness under parallelism** — the bounded search returns the
//!   `fast::search` winner bit-for-bit at several worker counts, and its
//!   `evaluated + skipped` accounting always covers the whole space.

use proptest::prelude::*;
use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    TcoModel,
};
use uptime_optimizer::{
    branch_bound, fast, Candidate, ComponentChoices, FastEvaluator, Objective, SearchSpace,
};

/// Strategy: one component with a free baseline plus up to 3 HA options,
/// all parameters drawn from continuous ranges (mirrors
/// `fast_properties.rs` so the two suites exercise the same space family).
fn component_strategy(index: usize) -> impl Strategy<Value = ComponentChoices> {
    (
        0.001f64..0.25, // node down probability
        0.1f64..10.0,   // failures/year
        1usize..=4,     // number of candidates
        0.1f64..25.0,   // failover minutes for HA candidates
        1.0f64..4000.0, // cost scale
        2u32..=5,       // cluster width for HA candidates
    )
        .prop_map(move |(p, f, k, failover, cost, width)| {
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("c{index}"), Probability::new(p).unwrap(), f)
                    .unwrap(),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let standby = (level as u32).min(width - 1);
                let cluster = ClusterSpec::builder(format!("c{index}-ha{level}"))
                    .total_nodes(width)
                    .standby_budget(standby)
                    .node_down_probability(Probability::new(p).unwrap())
                    .failures_per_year(FailuresPerYear::new(f).unwrap())
                    .failover_time(Minutes::new(failover).unwrap())
                    .build()
                    .unwrap();
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(cost * level as f64).unwrap(),
                    false,
                ));
            }
            ComponentChoices::new(format!("comp{index}"), candidates).unwrap()
        })
}

fn space_strategy() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(any::<u8>(), 1..=4).prop_flat_map(|seeds| {
        let comps: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| component_strategy(i))
            .collect();
        comps.prop_map(|v| SearchSpace::new(v).unwrap())
    })
}

fn model_strategy() -> impl Strategy<Value = TcoModel> {
    (85.0f64..99.99, 1.0f64..500.0).prop_map(|(sla, rate)| {
        TcoModel::new(
            SlaTarget::from_percent(sla).unwrap(),
            PenaltyClause::per_hour(rate).unwrap(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `prefix_bound(prefix) ≤ TCO(completion)` for **every** prefix of
    /// **every** assignment. Each assignment's depth-d truncation is a
    /// prefix whose completions include that assignment, so sweeping all
    /// (assignment, depth) pairs covers every reachable prefix paired with
    /// every one of its completions.
    #[test]
    fn prefix_bound_is_admissible(
        space in space_strategy(),
        model in model_strategy(),
    ) {
        let fast_eval = FastEvaluator::new(&space, &model);
        for assignment in space.assignments() {
            let tco = fast_eval.evaluate(&assignment).tco().total().value();
            for depth in 0..=assignment.len() {
                let bound = branch_bound::prefix_bound(&space, &model, &assignment[..depth]);
                prop_assert!(
                    bound <= tco + 1e-9,
                    "inadmissible bound at depth {depth}: bound {bound} > TCO {tco} \
                     for completion {assignment:?}"
                );
            }
        }
    }

    /// The bound is monotone along any root-to-leaf path: pushing one more
    /// candidate can only tighten (raise) the lower bound. (Even at full
    /// depth it stays a *lower* bound — `U_s ≤ Π aᵢ` is strict whenever
    /// failover downtime is nonzero — so monotonicity, not equality, is
    /// the invariant.)
    #[test]
    fn prefix_bound_tightens_with_depth(
        space in space_strategy(),
        model in model_strategy(),
    ) {
        for assignment in space.assignments() {
            let mut previous = f64::NEG_INFINITY;
            for depth in 0..=assignment.len() {
                let bound = branch_bound::prefix_bound(&space, &model, &assignment[..depth]);
                prop_assert!(
                    bound >= previous - 1e-9,
                    "bound slackened from {previous} to {bound} at depth {depth} \
                     along {assignment:?}"
                );
                previous = bound;
            }
        }
    }

    /// The bounded search is exact and thread-count independent on
    /// arbitrary spaces: winner bit-identical to `fast::search`, space
    /// fully accounted for.
    #[test]
    fn bounded_search_is_exact_at_any_width(
        space in space_strategy(),
        model in model_strategy(),
        threads in 1usize..=8,
    ) {
        let streamed = fast::search(&space, &model, Objective::MinTco);
        let bounded = branch_bound::search_with_threads(&space, &model, threads);
        prop_assert_eq!(bounded.best().unwrap(), streamed.best().unwrap());
        prop_assert_eq!(
            u128::from(bounded.stats().considered()),
            space.assignment_count()
        );
    }
}
