//! §III.C complexity benchmarks: exhaustive vs superset-pruned vs
//! branch-and-bound vs heuristics as the search space grows, plus the
//! pruning ablation on the paper's own 2³ space.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uptime_bench::{paper_model, paper_space, synthetic_model, synthetic_space};
use uptime_core::{PenaltyClause, RoundingPolicy};
use uptime_optimizer::{
    anneal, branch_bound, exhaustive, greedy, parallel, pruned, sweep, Objective,
};

fn bench_paper_space_algorithms(c: &mut Criterion) {
    let space = paper_space();
    let model = paper_model();
    let mut group = c.benchmark_group("paper_space_2x2x2");
    group.bench_function("exhaustive", |b| {
        b.iter(|| exhaustive::search(black_box(&space), &model, Objective::MinTco))
    });
    group.bench_function("pruned", |b| {
        b.iter(|| pruned::search(black_box(&space), &model, Objective::MinTco))
    });
    group.bench_function("branch_bound", |b| {
        b.iter(|| branch_bound::search(black_box(&space), &model))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| greedy::search(black_box(&space), &model, Objective::MinTco))
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let model = synthetic_model();
    let mut group = c.benchmark_group("search_scaling_k2");
    for n in [4usize, 6, 8, 10] {
        let space = synthetic_space(n, 2);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &space, |b, s| {
            b.iter(|| exhaustive::search(s, &model, Objective::MinTco))
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &space, |b, s| {
            b.iter(|| pruned::search(s, &model, Objective::MinTco))
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", n), &space, |b, s| {
            b.iter(|| branch_bound::search(s, &model))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &space, |b, s| {
            b.iter(|| greedy::search(s, &model, Objective::MinTco))
        });
    }
    group.finish();
}

fn bench_wider_choice_sets(c: &mut Criterion) {
    let model = synthetic_model();
    let mut group = c.benchmark_group("search_scaling_n6");
    for k in [2usize, 3, 4] {
        let space = synthetic_space(6, k);
        group.bench_with_input(BenchmarkId::new("exhaustive", k), &space, |b, s| {
            b.iter(|| exhaustive::search(s, &model, Objective::MinTco))
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", k), &space, |b, s| {
            b.iter(|| branch_bound::search(s, &model))
        });
        group.bench_with_input(BenchmarkId::new("anneal", k), &space, |b, s| {
            b.iter(|| anneal::search(s, &model, Objective::MinTco))
        });
    }
    group.finish();
}

fn bench_parallel_exhaustive(c: &mut Criterion) {
    let model = synthetic_model();
    let space = synthetic_space(10, 3); // 59049 assignments
    let mut group = c.benchmark_group("parallel_exhaustive_n10_k3");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| exhaustive::search(black_box(&space), &model, Objective::MinTco))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| parallel::search(black_box(&space), &model, Objective::MinTco))
    });
    group.finish();
}

fn bench_sla_sweep(c: &mut Criterion) {
    let space = paper_space();
    let penalty = PenaltyClause::per_hour(100.0).expect("constant");
    c.bench_function("sla_sweep_20_targets", |b| {
        b.iter(|| {
            sweep::sla_sweep_range(
                black_box(&space),
                &penalty,
                RoundingPolicy::CeilHour,
                90.0,
                99.5,
                20,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_paper_space_algorithms,
    bench_scaling,
    bench_wider_choice_sets,
    bench_parallel_exhaustive,
    bench_sla_sweep
);
criterion_main!(benches);
