//! Benchmarks regenerating the paper's evaluation artifacts (Figs. 3–10):
//! per-option evaluation (Figs. 3–9) and the full brokered recommendation
//! pipeline that produces the Fig. 10 summary.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use uptime_bench::{paper_broker, paper_model, paper_request, paper_space};
use uptime_optimizer::Evaluation;

/// Figs. 3–9: evaluating each of the eight solution options.
fn bench_fig3_to_9_option_tables(c: &mut Criterion) {
    let space = paper_space();
    let model = paper_model();
    let mut group = c.benchmark_group("fig3_9_option_eval");
    // Paper option numbering: (name, assignment).
    let options: [(&str, [usize; 3]); 8] = [
        ("opt1_no_ha", [0, 0, 0]),
        ("opt2_network", [0, 0, 1]),
        ("opt3_storage", [0, 1, 0]),
        ("opt4_compute", [1, 0, 0]),
        ("opt5_storage_network", [0, 1, 1]),
        ("opt6_compute_network", [1, 0, 1]),
        ("opt7_compute_storage", [1, 1, 0]),
        ("opt8_all_ha", [1, 1, 1]),
    ];
    for (name, assignment) in options {
        group.bench_function(name, |b| {
            b.iter(|| Evaluation::evaluate(black_box(&space), black_box(&model), &assignment))
        });
    }
    group.finish();
}

/// Fig. 10: the full broker pipeline — enumerate, price, rank, recommend.
fn bench_fig10_recommendation(c: &mut Criterion) {
    let broker = paper_broker();
    let request = paper_request();
    c.bench_function("fig10_broker_recommend", |b| {
        b.iter(|| {
            let rec = broker
                .recommend(black_box(&request))
                .expect("valid request");
            assert_eq!(
                rec.clouds()[0].best().evaluation().tco().total().value(),
                1250.0
            );
            rec
        })
    });
}

criterion_group!(
    benches,
    bench_fig3_to_9_option_tables,
    bench_fig10_recommendation
);
criterion_main!(benches);
