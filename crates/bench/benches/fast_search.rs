//! PR 2 factorized-engine benchmarks: naive per-assignment evaluation vs
//! the cached-term incremental cursor, on the three reference workloads —
//! the paper's 2³ space, the hybrid metacloud joint space (972 variants),
//! and the synthetic 6-tier × 6-choice space (46 656 variants).
//!
//! `cargo bench -p uptime-bench --bench fast_search`; the `bench` binary
//! reruns the same comparison and emits machine-readable `BENCH_PR2.json`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use uptime_bench::{
    hybrid_metacloud_space, paper_model, paper_space, synthetic_model, synthetic_space,
};
use uptime_core::TcoModel;
use uptime_optimizer::{fast, parallel, Evaluation, FastEvaluator, Objective, SearchSpace};

/// The pre-PR-2 search loop: naive evaluation of every assignment.
fn naive_sweep(space: &SearchSpace, model: &TcoModel) -> Evaluation {
    let evaluations: Vec<Evaluation> = space
        .assignments()
        .map(|a| Evaluation::evaluate(space, model, &a))
        .collect();
    Objective::MinTco.best(&evaluations).unwrap().clone()
}

fn bench_space(c: &mut Criterion, name: &str, space: &SearchSpace, model: &TcoModel) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function("naive_sweep", |b| {
        b.iter(|| naive_sweep(black_box(space), model))
    });
    group.bench_function("fast_streaming", |b| {
        b.iter(|| fast::search(black_box(space), model, Objective::MinTco))
    });
    group.bench_function("fast_parallel_streaming", |b| {
        b.iter(|| parallel::search_best(black_box(space), model, Objective::MinTco))
    });
    group.finish();
}

fn bench_paper(c: &mut Criterion) {
    bench_space(c, "fast_paper_2x2x2", &paper_space(), &paper_model());
}

fn bench_metacloud(c: &mut Criterion) {
    bench_space(
        c,
        "fast_metacloud_972",
        &hybrid_metacloud_space(),
        &paper_model(),
    );
}

fn bench_synthetic(c: &mut Criterion) {
    bench_space(
        c,
        "fast_synthetic_6x6",
        &synthetic_space(6, 6),
        &synthetic_model(),
    );
}

/// Slice evaluation with cached terms, isolated from enumeration — the
/// per-variant cost the pruned search now pays.
fn bench_single_evaluation(c: &mut Criterion) {
    let space = synthetic_space(6, 6);
    let model = synthetic_model();
    let engine = FastEvaluator::new(&space, &model);
    let assignment = vec![3usize; 6];
    let mut group = c.benchmark_group("fast_single_eval_6x6");
    group.bench_function("naive", |b| {
        b.iter(|| Evaluation::evaluate(black_box(&space), &model, &assignment))
    });
    group.bench_function("fast", |b| {
        b.iter(|| engine.evaluate(black_box(&assignment)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paper,
    bench_metacloud,
    bench_synthetic,
    bench_single_evaluation
);
criterion_main!(benches);
