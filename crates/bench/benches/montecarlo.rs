//! Simulator throughput: discrete-event years simulated per second for
//! the case-study systems (experiment V1's engine), plus scripted failure
//! injection and the standby-mode latency ablation.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uptime_bench::option_system;
use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability, SystemSpec};
use uptime_sim::{FailureScript, SimConfig, SimDuration, SimTime, Simulation};

fn bench_simulation_year(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_one_year");
    for (name, assignment) in [
        ("opt1_no_ha", [0usize, 0, 0]),
        ("opt5_storage_network", [0, 1, 1]),
        ("opt8_all_ha", [1, 1, 1]),
    ] {
        let system = option_system(&assignment);
        group.bench_function(name, |b| {
            b.iter(|| {
                Simulation::new(black_box(&system), SimConfig::years(1.0).with_seed(7))
                    .expect("valid system")
                    .run()
            })
        });
    }
    group.finish();
}

fn bench_standby_mode_ablation(c: &mut Criterion) {
    // Same cluster, increasing failover latency (hot/warm/cold classes).
    let mut group = c.benchmark_group("standby_mode_10y");
    for (name, failover_seconds) in [("hot_5s", 5.0), ("warm_60s", 60.0), ("cold_360s", 360.0)] {
        let system = SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("tier")
                    .total_nodes(2)
                    .standby_budget(1)
                    .node_down_probability(Probability::new(0.05).unwrap())
                    .failures_per_year(FailuresPerYear::new(4.0).unwrap())
                    .failover_time(Minutes::from_seconds(failover_seconds).unwrap())
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &system, |b, s| {
            b.iter(|| {
                Simulation::new(s, SimConfig::years(10.0).with_seed(9))
                    .expect("valid")
                    .run()
            })
        });
    }
    group.finish();
}

fn bench_failure_injection(c: &mut Criterion) {
    let system = option_system(&[1, 1, 1]);
    // A dense scripted month: an outage every 6 hours on rotating nodes.
    let mut script = FailureScript::new();
    for i in 0..120u64 {
        let cluster = (i % 3) as usize;
        let node = (i % 2) as usize;
        script = script.outage(
            cluster,
            node,
            SimTime::from_minutes(i as f64 * 360.0),
            SimDuration::from_minutes(30.0),
        );
    }
    c.bench_function("scripted_injection_120_outages", |b| {
        b.iter(|| {
            script
                .run(black_box(&system), SimDuration::from_minutes(45_000.0))
                .expect("valid script")
        })
    });
}

fn bench_correlated_simulation(c: &mut Criterion) {
    use uptime_sim::{CommonCause, CorrelatedSimulation};
    let system = option_system(&[0, 1, 0]);
    let horizon = SimDuration::from_minutes(10.0 * 525_600.0);
    c.bench_function("correlated_sim_10y", |b| {
        b.iter(|| {
            CorrelatedSimulation::new(
                black_box(&system),
                vec![
                    uptime_sim::CommonCause::NONE,
                    CommonCause {
                        rate_per_year: 4.0,
                        blast_radius: 2,
                        mttr_minutes: 120.0,
                    },
                    uptime_sim::CommonCause::NONE,
                ],
                horizon,
                7,
            )
            .expect("valid config")
            .run()
        })
    });
}

fn bench_settlement(c: &mut Criterion) {
    use uptime_broker::settlement::settle;
    use uptime_core::MoneyPerMonth;
    let system = option_system(&[0, 1, 0]);
    let model = uptime_bench::paper_model();
    c.bench_function("settle_36_months", |b| {
        b.iter(|| {
            settle(
                black_box(&system),
                &model,
                MoneyPerMonth::new(350.0).expect("constant"),
                36,
                7,
            )
            .expect("valid settlement")
        })
    });
}

criterion_group!(
    benches,
    bench_simulation_year,
    bench_standby_mode_ablation,
    bench_failure_injection,
    bench_correlated_simulation,
    bench_settlement
);
criterion_main!(benches);
