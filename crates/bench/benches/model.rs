//! Model-evaluation throughput and numerical ablations:
//! Eqs. 1–4 evaluation, the `F_s = 0` approximation, binomial direct vs
//! log-space evaluation, and sensitivity analysis.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uptime_bench::option_system;
use uptime_core::{binomial, Probability, SensitivityReport};

fn bench_uptime_evaluation(c: &mut Criterion) {
    let system = option_system(&[1, 1, 1]);
    let mut group = c.benchmark_group("uptime_eval");
    group.bench_function("full_eqs_1_to_4", |b| {
        b.iter(|| black_box(&system).uptime().availability())
    });
    group.bench_function("ablation_ignore_failover", |b| {
        b.iter(|| black_box(&system).uptime_ignoring_failover())
    });
    group.finish();
}

fn bench_binomial_strategies(c: &mut Criterion) {
    let p = Probability::new(0.99).unwrap();
    let mut group = c.benchmark_group("binomial_survival");
    for n in [4u32, 16, 64, 256] {
        let m = n - n / 4;
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            b.iter(|| binomial::survival_at_least(black_box(n), m, p))
        });
        group.bench_with_input(BenchmarkId::new("log_space", n), &n, |b, &n| {
            b.iter(|| binomial::survival_at_least_log(black_box(n), m, p))
        });
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let system = option_system(&[1, 1, 1]);
    c.bench_function("sensitivity_report", |b| {
        b.iter(|| SensitivityReport::analyze(black_box(&system)))
    });
}

fn bench_confidence_bounds(c: &mut Criterion) {
    use uptime_core::confidence::{uptime_interval, ConfidenceLevel, ProbabilityInterval};
    let system = option_system(&[1, 1, 1]);
    let intervals: Vec<_> = system
        .clusters()
        .iter()
        .map(|cl| {
            ProbabilityInterval::wald(cl.node_down_probability(), 1000.0, ConfidenceLevel::P95)
        })
        .collect();
    c.bench_function("confidence_uptime_interval", |b| {
        b.iter(|| uptime_interval(black_box(&system), black_box(&intervals)))
    });
}

criterion_group!(
    benches,
    bench_uptime_evaluation,
    bench_binomial_strategies,
    bench_sensitivity,
    bench_confidence_bounds
);
criterion_main!(benches);
