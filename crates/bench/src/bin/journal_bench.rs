//! PR 6 benchmark driver: write-ahead journaling overhead on the
//! telemetry absorb path, plus recovery replay throughput, emitting
//! machine-readable `BENCH_PR6.json` (written to the working directory,
//! or to the path given as the first argument).
//!
//! ```text
//! cargo run --release -p uptime-bench --bin journal_bench [-- out.json] [--enforce]
//! ```
//!
//! Three variants of the same absorb workload — no durability, the
//! default `--fsync os` policy (journal writes land in the page cache;
//! kill -9 safe), and `--fsync always` (every append fsynced; power-loss
//! safe) — each driving the identical `sync_telemetry` call sequence
//! against clean simulated providers. With `--enforce`, the acceptance
//! gate becomes a hard failure (nonzero exit): the default policy must
//! cost ≤ 10 % over the undurable baseline.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use uptime_broker::{BrokerService, DurabilityConfig, GroundTruth, SimulatedProvider};
use uptime_catalog::{case_study, CatalogStore, CloudId, ComponentKind};
use uptime_durability::FsyncPolicy;

/// Absorbs per timed run (each is a full harvest + estimate + absorb).
/// Sized to put automatic snapshots (default cadence: one per 1024
/// absorbs) inside the timed window, so the measured overhead includes
/// amortized snapshot cost, not just journal appends.
const ABSORBS: u64 = 2048;

/// Absorbs per interleaving slice of a paired run (see [`measure_pair`]).
const CHUNK: usize = 64;

/// Paired repetitions per variant: each contributes one overhead ratio,
/// and the median across reps rejects reps that landed on a writeback
/// burst or scheduler hiccup.
const REPS: u32 = 5;

fn scratch_dir(tag: &str, rep: u32) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uptime-journal-bench-{tag}-{rep}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn providers(broker: &BrokerService, store: &CatalogStore) -> Vec<(CloudId, Vec<ComponentKind>)> {
    let mut targets = Vec::new();
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        let mut provider = SimulatedProvider::new(id.clone(), profile.display_name());
        let mut kinds = Vec::new();
        for kind in profile.observed_components() {
            let record = profile.reliability(kind).expect("observed");
            provider = provider.with_ground_truth(
                kind,
                GroundTruth {
                    down_probability: record.down_probability(),
                    failures_per_year: record.failures_per_year(),
                },
            );
            kinds.push(kind);
        }
        broker.register_provider(Box::new(provider));
        targets.push((id.clone(), kinds));
    }
    targets
}

/// The absorb call sequence both sides of a comparison execute: a
/// round-robin over every observed (cloud, kind) with per-call seeds.
fn sync_plan(targets: &[(CloudId, Vec<ComponentKind>)]) -> Vec<(CloudId, ComponentKind, u64)> {
    let mut plan = Vec::with_capacity(ABSORBS as usize);
    let mut absorbed = 0u64;
    'outer: loop {
        for (cloud, kinds) in targets {
            for (k, kind) in kinds.iter().enumerate() {
                if absorbed >= ABSORBS {
                    break 'outer;
                }
                plan.push((cloud.clone(), *kind, 5_000 + absorbed * 31 + k as u64));
                absorbed += 1;
            }
        }
    }
    plan
}

/// Drives one chunk of the plan through `broker`, returning elapsed ns.
fn drive_chunk(broker: &BrokerService, chunk: &[(CloudId, ComponentKind, u64)]) -> u128 {
    let start = Instant::now();
    for (cloud, kind, seed) in chunk {
        broker
            .sync_telemetry(cloud, *kind, 20, 5.0, *seed)
            .expect("clean sync absorbs");
    }
    let ns = start.elapsed().as_nanos();
    black_box(broker.telemetry_epoch());
    ns
}

/// One paired run: an undurable baseline broker and a durable broker
/// alternate [`CHUNK`]-absorb slices of the identical call plan, each
/// side's time accumulated separately. Because the two sides interleave
/// at millisecond granularity, CPU-frequency and cache drift — which
/// unfolds over tens of milliseconds and otherwise swamps a
/// single-digit-percent overhead — lands on both sides almost equally
/// and cancels in the ratio. Returns (baseline_ns, durable_ns,
/// journal_bytes).
fn measure_pair(
    store: &CatalogStore,
    fsync: FsyncPolicy,
    tag: &str,
    rep: u32,
) -> (u128, u128, u64) {
    let baseline = BrokerService::new(store.clone());
    let base_targets = providers(&baseline, store);
    let dir = scratch_dir(tag, rep);
    let config = DurabilityConfig::new(&dir).with_fsync(fsync);
    let (durable, _) = BrokerService::new(store.clone())
        .with_durability(config)
        .expect("durability attaches");
    providers(&durable, store);
    let plan = sync_plan(&base_targets);

    let mut base_ns = 0u128;
    let mut dur_ns = 0u128;
    for chunk in plan.chunks(CHUNK) {
        base_ns += drive_chunk(&baseline, chunk);
        dur_ns += drive_chunk(&durable, chunk);
    }
    let journal_bytes = std::fs::metadata(dir.join("journal.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&dir);
    (base_ns, dur_ns, journal_bytes)
}

/// Times a cold recovery replay of a journal holding [`ABSORBS`] records
/// (no snapshot acceleration). Returns (ns, replayed).
fn measure_recovery(store: &CatalogStore) -> (u128, u64) {
    let dir = scratch_dir("recovery", 0);
    let config = DurabilityConfig::new(&dir)
        .with_fsync(FsyncPolicy::Os)
        .with_snapshot_every(0);
    let (writer, _) = BrokerService::new(store.clone())
        .with_durability(config)
        .expect("durability attaches");
    let targets = providers(&writer, store);
    let _ = drive_chunk(&writer, &sync_plan(&targets));
    drop(writer);

    let start = Instant::now();
    let fresh = BrokerService::new(store.clone());
    let report = fresh.verify_recovery(&dir).expect("recovery replays");
    let ns = start.elapsed().as_nanos();
    assert_eq!(report.replayed, ABSORBS, "every record replays");
    let _ = std::fs::remove_dir_all(&dir);
    (ns, report.replayed)
}

/// Overhead from per-rep durable/baseline ratios (each produced by one
/// chunk-interleaved [`measure_pair`]): the median across reps rejects
/// the occasional rep that landed on a frequency transition or
/// writeback burst. Far more stable than comparing best-of-N absolute
/// times.
fn overhead_pct(ratios: &mut [f64]) -> f64 {
    assert!(!ratios.is_empty());
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let enforce = args.iter().any(|a| a == "--enforce");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_owned());

    let store = case_study::catalog();

    eprintln!(
        "journal_bench: {ABSORBS} absorbs x {REPS} paired reps per variant (chunk = {CHUNK})"
    );
    // The gated comparison first: the fsync-heavy variant runs after all
    // gate reps so its fsync storms cannot pollute them.
    let mut baseline_ns = u128::MAX;
    let mut os_ns = u128::MAX;
    let mut os_bytes = 0u64;
    let mut os_ratios = Vec::with_capacity(REPS as usize);
    for rep in 0..REPS {
        let (base, ns, bytes) = measure_pair(&store, FsyncPolicy::Os, "fsync-os", rep);
        baseline_ns = baseline_ns.min(base);
        if ns < os_ns {
            os_ns = ns;
            os_bytes = bytes;
        }
        os_ratios.push(ns as f64 / base as f64);
    }
    let mut always_ns = u128::MAX;
    let mut always_ratios = Vec::with_capacity(REPS as usize);
    for rep in 0..REPS {
        let (base, ns, _) = measure_pair(&store, FsyncPolicy::Always, "fsync-always", rep);
        always_ns = always_ns.min(ns);
        always_ratios.push(ns as f64 / base as f64);
    }
    eprintln!("  baseline (no durability):   {:>12} ns", baseline_ns);
    eprintln!("  durable --fsync os:         {:>12} ns", os_ns);
    eprintln!("  durable --fsync always:     {:>12} ns", always_ns);
    let (recovery_ns, replayed) = measure_recovery(&store);
    eprintln!("  cold replay of {replayed} records: {:>9} ns", recovery_ns);

    let os_overhead = overhead_pct(&mut os_ratios);
    let always_overhead = overhead_pct(&mut always_ratios);
    let gate_pass = os_overhead <= 10.0;

    let report = serde_json::json!({
        "bench": "journal_absorb_overhead",
        "absorbs": ABSORBS,
        "reps": REPS,
        "baseline_ns": baseline_ns as u64,
        "fsync_os_ns": os_ns as u64,
        "fsync_always_ns": always_ns as u64,
        "journal_bytes": os_bytes,
        "overhead_pct": {
            "fsync_os": os_overhead,
            "fsync_always": always_overhead,
        },
        "recovery": {
            "replay_ns": recovery_ns as u64,
            "records": replayed,
            "records_per_sec": if recovery_ns == 0 { 0.0 }
                else { replayed as f64 / (recovery_ns as f64 / 1e9) },
        },
        "gates": {
            "fsync_os_overhead_le_10pct": gate_pass,
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{rendered}\n")).expect("report written");
    eprintln!(
        "journal_bench: default-policy overhead {:.2}% (gate: <= 10%), report -> {out_path}",
        os_overhead
    );

    if enforce && !gate_pass {
        eprintln!(
            "journal_bench: GATE FAILED — fsync=os overhead {:.2}% exceeds 10%",
            os_overhead
        );
        std::process::exit(1);
    }
}
