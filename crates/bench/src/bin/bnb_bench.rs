//! PR 5 benchmark driver: bounded parallel branch-and-bound against the
//! factorized streaming enumeration on synthetic `6^6`, `6^9`, and `6^12`
//! spaces, emitting machine-readable `BENCH_PR5.json` (written to the
//! working directory, or to the path given as the first argument).
//!
//! ```text
//! cargo run --release -p uptime-bench --bin bnb_bench [-- out.json] [--enforce]
//! ```
//!
//! With `--enforce` the acceptance gates become hard failures (nonzero
//! exit): the `6^9` parallel search must beat single-threaded enumeration
//! by ≥10×, must evaluate <10 % of the space, pruning must actually fire,
//! and every engine must agree on the argmin. The `6^12` space (~2.2
//! billion variants) is never enumerated — branch-and-bound must complete
//! it outright, and the enumeration cost is projected from the measured
//! `6^9` throughput.

use std::hint::black_box;
use std::time::Instant;

use uptime_bench::{synthetic_model, synthetic_space};
use uptime_core::TcoModel;
use uptime_optimizer::{branch_bound, fast, BnbStats, Objective, SearchSpace};

/// Times `body` over `reps` runs and returns the best (least-noise) wall
/// time in nanoseconds.
fn time_ns<T>(reps: u32, mut body: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = body();
        best = best.min(start.elapsed().as_nanos());
        black_box(&out);
    }
    best
}

fn variants_per_sec(assignments: u128, ns: u128) -> f64 {
    if ns == 0 {
        f64::INFINITY
    } else {
        assignments as f64 / (ns as f64 / 1e9)
    }
}

fn stats_json(ns: u128, stats: &BnbStats) -> serde_json::Value {
    serde_json::json!({
        "total_ns": ns as u64,
        "threads": stats.threads,
        "tasks": stats.tasks,
        "nodes_visited": stats.nodes_visited,
        "leaves_evaluated": stats.leaves_evaluated,
        "subtrees_pruned": stats.subtrees_pruned,
        "variants_skipped": stats.variants_skipped,
    })
}

/// One recorded parallel run on the space, distilled to the
/// `optimizer.bnb.*` counters, gauge, and span the engine flushes.
fn obs_section(space: &SearchSpace, model: &TcoModel) -> serde_json::Value {
    let registry = uptime_obs::MetricsRegistry::new();
    let _ = branch_bound::search_with_threads_recorded(
        space,
        model,
        0,
        &registry,
        &uptime_obs::TraceSpan::disabled(),
    );
    let snapshot = registry.snapshot();
    let counters: serde_json::Map = snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("optimizer.bnb."))
        .map(|(name, value)| (name.clone(), serde_json::json!(value)))
        .collect();
    let gauges: serde_json::Map = snapshot
        .gauges
        .iter()
        .filter(|(name, _)| name.starts_with("optimizer.bnb."))
        .map(|(name, value)| (name.clone(), serde_json::json!(value)))
        .collect();
    let spans: serde_json::Map = snapshot
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("optimizer.bnb.") && h.name.ends_with(".ns"))
        .map(|h| {
            (
                h.name.clone(),
                serde_json::json!({
                    "count": h.count,
                    "total_ns": h.sum,
                    "p50_ns": h.p50,
                    "max_ns": h.max,
                }),
            )
        })
        .collect();
    serde_json::json!({ "counters": counters, "gauges": gauges, "spans": spans })
}

struct Row {
    name: String,
    components: usize,
    choices: usize,
    assignments: u128,
    /// `None` when the space is too large to enumerate.
    fast_ns: Option<u128>,
    bnb_serial_ns: u128,
    bnb_serial_stats: BnbStats,
    bnb_parallel_ns: u128,
    bnb_parallel_stats: BnbStats,
}

impl Row {
    /// Deterministic (single-threaded) share of the space actually
    /// evaluated at leaves.
    fn visited_fraction(&self) -> f64 {
        self.bnb_serial_stats.leaves_evaluated as f64 / self.assignments as f64
    }
}

/// Measures one `(n, k)` space. When `enumerate` is set the fast streaming
/// engine sweeps the whole space too and every engine's argmin is checked
/// for exact agreement; either way the bounded search must be bit-identical
/// across 1, 2, and the machine's worker count.
fn measure(n: usize, k: usize, reps: u32, enumerate: bool) -> Row {
    let space = synthetic_space(n, k);
    let model = synthetic_model();

    let (serial, serial_stats) = branch_bound::search_with_stats(&space, &model, 1);
    let serial_best = serial.best().expect("non-empty space").clone();
    for threads in [2, 0] {
        let (sharded, _) = branch_bound::search_with_stats(&space, &model, threads);
        assert_eq!(
            sharded.best().expect("non-empty space"),
            &serial_best,
            "{n}^{k}: branch-and-bound winner must be thread-count independent"
        );
    }
    let fast_ns = if enumerate {
        let streamed = fast::search(&space, &model, Objective::MinTco);
        assert_eq!(
            streamed.best().expect("non-empty space"),
            &serial_best,
            "{n}^{k}: branch-and-bound argmin diverged from full enumeration"
        );
        Some(time_ns(reps, || {
            fast::search(&space, &model, Objective::MinTco)
        }))
    } else {
        None
    };

    let bnb_serial_ns = time_ns(reps, || {
        branch_bound::search_with_threads(&space, &model, 1)
    });
    let bnb_parallel_ns = time_ns(reps, || {
        branch_bound::search_with_threads(&space, &model, 0)
    });
    let (_, parallel_stats) = branch_bound::search_with_stats(&space, &model, 0);

    Row {
        name: format!("synthetic_{k}^{n}"),
        components: n,
        choices: k,
        assignments: space.assignment_count(),
        fast_ns,
        bnb_serial_ns,
        bnb_serial_stats: serial_stats,
        bnb_parallel_ns,
        bnb_parallel_stats: parallel_stats,
    }
}

fn main() {
    let mut out_path = "BENCH_PR5.json".to_string();
    let mut enforce = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--enforce" => enforce = true,
            other => out_path = other.to_string(),
        }
    }

    let rows = vec![
        measure(6, 6, 5, true),
        measure(9, 6, 3, true),
        measure(12, 6, 3, false),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "space", "variants", "fast ns", "bnb(1) ns", "bnb(N) ns", "speedup", "visited"
    );
    let mut spaces = Vec::new();
    for row in &rows {
        let speedup = row
            .fast_ns
            .map(|ns| ns as f64 / row.bnb_parallel_ns.max(1) as f64);
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14} {:>8} {:>8.3}%",
            row.name,
            row.assignments,
            row.fast_ns
                .map_or_else(|| "-".to_string(), |ns| ns.to_string()),
            row.bnb_serial_ns,
            row.bnb_parallel_ns,
            speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.1}x")),
            row.visited_fraction() * 100.0,
        );
        spaces.push(serde_json::json!({
            "name": row.name,
            "components": row.components,
            "choices": row.choices,
            "assignments": row.assignments as u64,
            "enumeration": row.fast_ns.map(|ns| serde_json::json!({
                "total_ns": ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, ns),
            })),
            "bnb_serial": stats_json(row.bnb_serial_ns, &row.bnb_serial_stats),
            "bnb_parallel": stats_json(row.bnb_parallel_ns, &row.bnb_parallel_stats),
            "speedup_bnb_parallel_vs_enumeration": speedup,
            "visited_fraction": row.visited_fraction(),
        }));
    }

    // Gates (6^9 is the contract space; 6^12 proves scale).
    let mid = &rows[1];
    let big = &rows[2];
    let speedup_6_9 =
        mid.fast_ns.expect("6^9 is enumerated") as f64 / mid.bnb_parallel_ns.max(1) as f64;
    let visited_6_9 = mid.visited_fraction();
    let pruning_active = mid.bnb_serial_stats.subtrees_pruned > 0;
    // Projected cost of enumerating 6^12 at the measured 6^9 throughput.
    let enum_rate = variants_per_sec(mid.assignments, mid.fast_ns.expect("6^9 is enumerated"));
    let projected_enumeration_ns = big.assignments as f64 / enum_rate * 1e9;

    let gates = [
        (
            "speedup_6^9 >= 10x vs single-threaded enumeration",
            speedup_6_9 >= 10.0,
        ),
        ("visited_6^9 < 10% of the space", visited_6_9 < 0.10),
        ("pruning fired on 6^9", pruning_active),
        (
            "6^12 completed without enumeration",
            big.bnb_parallel_stats.leaves_evaluated > 0,
        ),
    ];
    let mut all_pass = true;
    for (label, pass) in &gates {
        if !pass {
            all_pass = false;
            eprintln!("GATE FAILED: {label}");
        }
    }
    println!(
        "6^9: {speedup_6_9:.1}x over enumeration, {:.3}% visited; \
         6^12 solved in {:.1} ms (enumeration projected at {:.0} s)",
        visited_6_9 * 100.0,
        big.bnb_parallel_ns as f64 / 1e6,
        projected_enumeration_ns / 1e9,
    );

    let report = serde_json::json!({
        "benchmark": "BENCH_PR5",
        "description": "bounded parallel branch-and-bound vs factorized streaming enumeration",
        "spaces": spaces,
        "speedup_6^9_parallel_vs_enumeration": speedup_6_9,
        "visited_fraction_6^9": visited_6_9,
        "pruning_active_6^9": pruning_active,
        "projected_6^12_enumeration_ns": projected_enumeration_ns,
        "bnb_6^12_parallel_ns": big.bnb_parallel_ns as u64,
        "gates_pass": all_pass,
        "obs": obs_section(&synthetic_space(9, 6), &synthetic_model()),
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, rendered).expect("write benchmark report");
    println!("wrote {out_path}");

    if enforce && !all_pass {
        eprintln!("--enforce: acceptance gates failed");
        std::process::exit(1);
    }
}
