//! Reproduction harness: regenerates every table and figure of the
//! paper's evaluation section, plus the two extra experiments (Monte-Carlo
//! validation and search-complexity ablation) documented in DESIGN.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p uptime-bench --bin repro [figures|complexity|validate|all]
//! ```

use uptime_bench::{paper_broker, paper_request, synthetic_model, synthetic_space};
use uptime_broker::{audit_recommendation, report, settlement};
use uptime_catalog::ComponentKind;
use uptime_core::{MoneyPerMonth, PenaltyClause, RoundingPolicy, SystemSpec};
use uptime_optimizer::{branch_bound, exhaustive, pruned, sweep, Objective};
use uptime_sim::{CommonCause, CorrelatedSimulation, SimDuration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match mode.as_str() {
        "figures" => figures()?,
        "complexity" => complexity(),
        "validate" => validate()?,
        "settlement" => settlement_experiment()?,
        "correlated" => correlated_experiment()?,
        "sweep" => sweep_experiment()?,
        "staffing" => staffing_experiment()?,
        "metacloud" => metacloud_experiment()?,
        "all" => {
            figures()?;
            complexity();
            validate()?;
            sweep_experiment()?;
            settlement_experiment()?;
            correlated_experiment()?;
            staffing_experiment()?;
            metacloud_experiment()?;
        }
        other => {
            eprintln!(
                "unknown mode `{other}`; use figures|complexity|validate|settlement|correlated|sweep|staffing|metacloud|all"
            );
            std::process::exit(2);
        }
    }
    Ok(())
}

/// Figs. 3–10: the eight solution options and the summary.
fn figures() -> Result<(), Box<dyn std::error::Error>> {
    let broker = paper_broker();
    let request = paper_request();
    let recommendation = broker.recommend(&request)?;
    let cloud = &recommendation.clouds()[0];
    let model = request.tco_model();
    let catalog = broker.catalog_snapshot();

    println!("================================================================");
    println!(" Paper Figs. 3-9: per-option tables");
    println!("================================================================\n");
    for option in cloud.options() {
        println!(
            "{}",
            report::render_option_table_detailed(
                &catalog,
                cloud.cloud(),
                option,
                &ComponentKind::paper_tiers(),
                &model,
            )?
        );
    }
    println!("================================================================");
    println!(" Paper Fig. 10: summary of results & cost efficiency");
    println!("================================================================\n");
    print!("{}", report::render_fig10_summary(cloud));
    println!();
    Ok(())
}

/// §III.C: evaluations performed by each search algorithm as `n`, `k` grow.
/// `REPRO_MAX_SPACE` caps the largest space evaluated (default 1e6) so CI
/// smoke tests can run the table quickly in debug builds.
fn complexity() {
    println!("================================================================");
    println!(" Paper §III.C: search-complexity ablation (evaluations)");
    println!("================================================================\n");
    let max_space: u128 = std::env::var("REPRO_MAX_SPACE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let model = synthetic_model();
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "n", "k", "space", "exhaustive", "pruned", "B&B", "agree"
    );
    for &k in &[2usize, 3, 4] {
        for &n in &[2usize, 4, 6, 8, 10, 12] {
            if (k as u128).pow(n as u32) > max_space {
                continue;
            }
            let space = synthetic_space(n, k);
            let full = exhaustive::search(&space, &model, Objective::MinTco);
            let fast = pruned::search(&space, &model, Objective::MinTco);
            let bb = branch_bound::search(&space, &model);
            let best = full.best().expect("non-empty").tco().total();
            let agree = fast.best().expect("non-empty").tco().total() == best
                && bb.best().expect("non-empty").tco().total() == best;
            println!(
                "{:>3} {:>3} {:>12} {:>12} {:>12} {:>12} {:>7}",
                n,
                k,
                space.assignment_count(),
                full.stats().evaluated,
                fast.stats().evaluated,
                bb.stats().evaluated,
                if agree { "yes" } else { "NO" }
            );
        }
    }
    println!();
}

/// Experiment SW1: the winning option per SLA target, with crossovers.
fn sweep_experiment() -> Result<(), Box<dyn std::error::Error>> {
    println!("================================================================");
    println!(" Experiment SW1: SLA sweep and crossovers");
    println!("================================================================\n");
    let space = uptime_bench::paper_space();
    let result = sweep::sla_sweep_range(
        &space,
        &PenaltyClause::per_hour(100.0)?,
        RoundingPolicy::CeilHour,
        90.0,
        99.5,
        20,
    );
    println!(
        "{:>8} {:>14} {:>10} {:>12} {:>6}",
        "SLA %", "winner", "U_s %", "TCO $/mo", "meets"
    );
    for point in result.points() {
        println!(
            "{:>8.2} {:>14} {:>10.2} {:>12.0} {:>6}",
            point.sla_percent,
            format!("{:?}", point.best_assignment),
            point.best_uptime.as_percent(),
            point.best_tco.value(),
            if point.meets_sla { "yes" } else { "no" }
        );
    }
    println!("crossovers: {:?}\n", result.crossovers());
    Ok(())
}

/// Experiment S1: expected (Eq. 5) vs realized monthly TCO.
fn settlement_experiment() -> Result<(), Box<dyn std::error::Error>> {
    println!("================================================================");
    println!(" Experiment S1: Eq. 5 expected vs realized settlement (120 mo)");
    println!("================================================================\n");
    let space = uptime_bench::paper_space();
    let model = uptime_bench::paper_model();
    println!(
        "{:<12} {:>12} {:>14} {:>10} {:>9}",
        "option", "Eq.5 $/mo", "realized $/mo", "gap $/mo", "breaches"
    );
    for (i, assignment) in space.assignments().enumerate() {
        let system = uptime_bench::option_system(&assignment);
        let ha_cost: MoneyPerMonth = assignment
            .iter()
            .zip(space.components())
            .map(|(&idx, comp)| comp.candidates()[idx].monthly_cost())
            .sum();
        let report = settlement::settle(&system, &model, ha_cost, 120, 7_000 + i as u64)?;
        println!(
            "{:<12} {:>12.0} {:>14.0} {:>10.0} {:>6}/120",
            format!("{assignment:?}"),
            report.expected_tco().value(),
            report.mean_realized_tco().value(),
            report.jensen_gap(),
            report.months_in_breach(),
        );
    }
    println!();
    Ok(())
}

/// Experiment T1: independence assumption vs common-cause failures.
fn correlated_experiment() -> Result<(), Box<dyn std::error::Error>> {
    println!("================================================================");
    println!(" Experiment T1: Eq. 2 independence vs common-cause failures");
    println!("================================================================\n");
    let system = SystemSpec::new(vec![
        uptime_bench::option_system(&[0, 1, 0]).clusters()[1].clone()
    ])?;
    let analytic = system.uptime().availability();
    println!(
        "RAID-1 pair, analytic U_s = {:.4}% assuming independence",
        analytic.as_percent()
    );
    println!(
        "{:>14} {:>14} {:>16}",
        "rack events/yr", "observed U_s %", "model error (pp)"
    );
    let horizon = SimDuration::from_minutes(1500.0 * 525_600.0);
    for rate in [0.0, 2.0, 4.0, 8.0] {
        let report = CorrelatedSimulation::new(
            &system,
            vec![CommonCause {
                rate_per_year: rate,
                blast_radius: 2,
                mttr_minutes: 240.0,
            }],
            horizon,
            42,
        )?
        .run();
        println!(
            "{:>14.1} {:>14.4} {:>16.4}",
            rate,
            report.availability().as_percent(),
            analytic.as_percent() - report.availability().as_percent(),
        );
    }
    println!();
    Ok(())
}

/// Experiment L1: repair-crew staffing vs availability.
fn staffing_experiment() -> Result<(), Box<dyn std::error::Error>> {
    use uptime_core::{ClusterSpec, FailuresPerYear, Minutes, Probability};
    use uptime_sim::crews::CrewSimulation;
    println!("================================================================");
    println!(" Experiment L1: repair crews (the labor behind C_HA) vs uptime");
    println!("================================================================\n");
    let system = SystemSpec::new(vec![ClusterSpec::builder("farm")
        .total_nodes(8)
        .standby_budget(3)
        .node_down_probability(Probability::new(0.10)?)
        .failures_per_year(FailuresPerYear::new(12.0)?)
        .failover_time(Minutes::new(0.5)?)
        .build()?])?;
    let analytic = system.uptime().availability();
    println!(
        "8-node farm (5 active), P=10%, f=12/yr; analytic U_s = {:.3}% (unlimited repairs)",
        analytic.as_percent()
    );
    println!("{:>8} {:>16} {:>14}", "crews", "observed U_s %", "gap (pp)");
    let horizon = SimDuration::from_minutes(150.0 * 525_600.0);
    for crews in [1u32, 2, 4, 8] {
        let report = CrewSimulation::new(&system, vec![crews], horizon, 5)?.run();
        println!(
            "{:>8} {:>16.3} {:>14.3}",
            crews,
            report.availability().as_percent(),
            analytic.as_percent() - report.availability().as_percent()
        );
    }
    println!();
    Ok(())
}

/// Experiment M1: metacloud (cross-provider) vs best single cloud.
fn metacloud_experiment() -> Result<(), Box<dyn std::error::Error>> {
    use uptime_broker::{BrokerService, SolutionRequest};
    use uptime_catalog::extended;
    println!("================================================================");
    println!(" Experiment M1: metacloud (paper §V's larger goal)");
    println!("================================================================\n");
    let broker = BrokerService::new(extended::hybrid_catalog());
    let request = SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(98.0)?
        .penalty_per_hour(100.0)?
        .build()?;
    let single = broker.recommend(&request)?;
    let meta = broker.recommend_metacloud(&request)?;
    println!(
        "best single cloud: `{}` at ${:.0}/mo",
        single.best_cloud().expect("clouds").cloud(),
        single.best_tco().expect("clouds").value()
    );
    println!(
        "metacloud ({} assignments searched): ${:.0}/mo at U_s {:.2}%",
        meta.assignments_searched(),
        meta.evaluation().tco().total().value(),
        meta.evaluation().uptime().availability().as_percent()
    );
    for placement in meta.placements() {
        println!(
            "    {:<18} -> {:<10} via {}",
            placement.component.label(),
            placement.cloud,
            placement.method
        );
    }
    println!();
    Ok(())
}

/// Experiment V1: analytic Eqs. 1–4 vs Monte-Carlo simulation.
fn validate() -> Result<(), Box<dyn std::error::Error>> {
    println!("================================================================");
    println!(" Experiment V1: analytic model vs discrete-event simulation");
    println!("================================================================\n");
    let space = uptime_bench::paper_space();
    println!(
        "{:<12} {:>11} {:>12} {:>19} {:>6}",
        "assignment", "analytic %", "simulated %", "95% CI", "pass"
    );
    for (i, assignment) in space.assignments().enumerate() {
        let system = uptime_bench::option_system(&assignment);
        let audit = audit_recommendation(&system, 16, 20.0, 4.0, 900 + i as u64)?;
        let (lo, hi) = audit.estimate().ci95();
        println!(
            "{:<12} {:>11.3} {:>12.3} {:>9.3}-{:<9.3} {:>6}",
            format!("{assignment:?}"),
            audit.analytic().as_percent(),
            audit.estimate().mean().as_percent(),
            lo.as_percent(),
            hi.as_percent(),
            if audit.passes() { "ok" } else { "FAIL" }
        );
    }
    println!();
    Ok(())
}
