//! PR 7 benchmark driver: the factorized composition fold against naive
//! per-variant `Block` re-evaluation on series–parallel spaces, plus the
//! composition branch-and-bound prune rate, emitting machine-readable
//! `BENCH_PR7.json` (written to the working directory, or to the path
//! given as the first argument).
//!
//! ```text
//! cargo run --release -p uptime-bench --bin composition_bench [-- out.json] [--enforce]
//! ```
//!
//! With `--enforce` the acceptance gates become hard failures (nonzero
//! exit): the factorized fold sweep must beat the naive `Block` sweep by
//! ≥10× on the contract space, branch-and-bound pruning must actually
//! fire on the large space, and every engine must agree on the argmin.
//! The large space (`4^10` ≈ 1 M variants) is never naive-swept in full —
//! its `Block` cost is projected from a measured sample.

use std::hint::black_box;
use std::time::Instant;

use uptime_bench::{paper_catalog, paper_cloud, paper_model, synthetic_model, synthetic_space};
use uptime_core::{MoneyPerMonth, TcoModel};
use uptime_optimizer::{
    composition, composition_bnb, Archetype, BnbStats, CompositionNode, CompositionSpace, Objective,
};

/// Times `body` over `reps` runs and returns the best (least-noise) wall
/// time in nanoseconds.
fn time_ns<T>(reps: u32, mut body: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = body();
        best = best.min(start.elapsed().as_nanos());
        black_box(&out);
    }
    best
}

fn variants_per_sec(assignments: u128, ns: u128) -> f64 {
    if ns == 0 {
        f64::INFINITY
    } else {
        assignments as f64 / (ns as f64 / 1e9)
    }
}

fn stats_json(ns: u128, stats: &BnbStats) -> serde_json::Value {
    serde_json::json!({
        "total_ns": ns as u64,
        "threads": stats.threads,
        "tasks": stats.tasks,
        "nodes_visited": stats.nodes_visited,
        "leaves_evaluated": stats.leaves_evaluated,
        "subtrees_pruned": stats.subtrees_pruned,
        "variants_skipped": stats.variants_skipped,
    })
}

/// A gateway tier in series with `zones` parallel replica stacks of
/// `per_zone` components each, every leaf with `k` HA candidates —
/// `k^(zones·per_zone + 1)` assignments.
fn replica_space(zones: usize, per_zone: usize, k: usize) -> CompositionSpace {
    let serial = synthetic_space(zones * per_zone + 1, k);
    let comps = serial.components();
    let gateway = CompositionNode::Component(comps[0].clone());
    let stacks = (0..zones)
        .map(|z| {
            CompositionNode::Series(
                comps[1 + z * per_zone..1 + (z + 1) * per_zone]
                    .iter()
                    .cloned()
                    .map(CompositionNode::Component)
                    .collect(),
            )
        })
        .collect();
    CompositionSpace::new(CompositionNode::Series(vec![
        gateway,
        CompositionNode::Parallel(stacks),
    ]))
    .expect("replica topology is well-formed")
}

/// One naive `Block` evaluation: materialize the diagram, fold its
/// failover-aware availability, price it through the TCO model. Returns
/// the total so the sweep can argmin without the factorized evaluator.
fn naive_eval(space: &CompositionSpace, model: &TcoModel, assignment: &[usize]) -> f64 {
    let block = space.to_block(assignment);
    let avail = block.failover_aware_availability();
    let cost = MoneyPerMonth::new(space.monthly_cost(assignment)).expect("finite candidate costs");
    model.evaluate(cost, avail).total().value()
}

/// Full naive sweep: `Block` re-evaluation per variant, argmin under the
/// same `(total, cardinality)` preference the streaming engine uses.
fn naive_sweep(space: &CompositionSpace, model: &TcoModel) -> (Vec<usize>, f64) {
    let mut best: Option<(Vec<usize>, f64, usize)> = None;
    for assignment in space.assignments() {
        let total = naive_eval(space, model, &assignment);
        let cardinality = space.cardinality(&assignment);
        let better = match &best {
            None => true,
            Some((_, bt, bc)) => total < *bt || (total == *bt && cardinality < *bc),
        };
        if better {
            best = Some((assignment, total, cardinality));
        }
    }
    let (assignment, total, _) = best.expect("non-empty space");
    (assignment, total)
}

struct Row {
    name: String,
    leaves: usize,
    assignments: u128,
    /// `None` when the space is only sample-projected, not fully swept.
    naive_ns: Option<u128>,
    /// Measured per-variant naive cost over a sample (projection input).
    naive_sample_ns_per_variant: f64,
    fold_ns: u128,
    bnb_ns: u128,
    bnb_stats: BnbStats,
}

impl Row {
    fn visited_fraction(&self) -> f64 {
        self.bnb_stats.leaves_evaluated as f64 / self.assignments as f64
    }

    /// Measured (full sweep) or projected (sample × space) naive cost.
    fn naive_total_ns(&self) -> f64 {
        self.naive_ns.map_or(
            self.naive_sample_ns_per_variant * self.assignments as f64,
            |ns| ns as f64,
        )
    }

    fn fold_speedup(&self) -> f64 {
        self.naive_total_ns() / self.fold_ns.max(1) as f64
    }
}

/// Measures one composition space. When `sweep_naive` is set the naive
/// `Block` sweep covers the whole space and its argmin is checked against
/// both factorized engines; either way a sample pins the per-variant
/// naive cost and branch-and-bound must agree with the streaming fold.
fn measure(
    name: &str,
    space: &CompositionSpace,
    model: &TcoModel,
    reps: u32,
    sweep_naive: bool,
) -> Row {
    let fold = composition::search(space, model, Objective::MinTco);
    let fold_best = fold.best().expect("non-empty space").clone();
    assert_eq!(
        u128::from(fold.stats().evaluated),
        space.assignment_count(),
        "{name}: streaming fold must cover the space"
    );

    let (bnb, bnb_stats) = composition_bnb::search_with_stats(space, model, 0);
    assert_eq!(
        bnb.best().expect("non-empty space").assignment(),
        fold_best.assignment(),
        "{name}: branch-and-bound argmin diverged from the streaming fold"
    );

    let naive_ns = if sweep_naive {
        let (naive_assignment, naive_total) = naive_sweep(space, model);
        assert_eq!(
            &naive_assignment[..],
            fold_best.assignment(),
            "{name}: factorized fold argmin diverged from naive Block sweep"
        );
        assert!(
            (naive_total - fold_best.tco().total().value()).abs() <= 1e-9,
            "{name}: fold total diverged from naive Block sweep"
        );
        Some(time_ns(reps, || naive_sweep(space, model)))
    } else {
        None
    };

    // Per-variant naive cost over a fixed sample (used to project spaces
    // too large to sweep; reported for swept spaces as a cross-check).
    let sample: Vec<Vec<usize>> = space.assignments().take(2048).collect();
    let sample_ns = time_ns(reps, || {
        let mut acc = 0.0;
        for assignment in &sample {
            acc += naive_eval(space, model, assignment);
        }
        acc
    });
    let naive_sample_ns_per_variant = sample_ns as f64 / sample.len() as f64;

    let fold_ns = time_ns(reps, || {
        composition::search(space, model, Objective::MinTco)
    });
    let bnb_ns = time_ns(reps, || {
        composition_bnb::search_with_threads(space, model, 0)
    });

    Row {
        name: name.to_string(),
        leaves: space.leaf_count(),
        assignments: space.assignment_count(),
        naive_ns,
        naive_sample_ns_per_variant,
        fold_ns,
        bnb_ns,
        bnb_stats,
    }
}

/// The archetype scenario pack on the paper's case-study catalog: small
/// spaces, reported for the record (winner agreement is asserted).
fn archetype_section() -> serde_json::Value {
    let catalog = paper_catalog();
    let cloud = paper_cloud();
    let model = paper_model();
    let mut entries = Vec::new();
    for &archetype in Archetype::all() {
        let space = archetype.space(&catalog, &cloud).expect("case-study space");
        let fold = composition::search(&space, &model, Objective::MinTco);
        let (bnb, stats) = composition_bnb::search_with_stats(&space, &model, 0);
        let best = fold.best().expect("non-empty space");
        assert_eq!(
            bnb.best().expect("non-empty space").assignment(),
            best.assignment(),
            "{archetype}: engines disagree on the case-study catalog"
        );
        let fold_ns = time_ns(5, || composition::search(&space, &model, Objective::MinTco));
        entries.push(serde_json::json!({
            "name": archetype.name(),
            "leaves": space.leaf_count(),
            "assignments": space.assignment_count() as u64,
            "fold_ns": fold_ns as u64,
            "winner_assignment": best.assignment(),
            "winner_tco": best.tco().total().value(),
            "winner_availability": best.uptime().availability().value(),
            "bnb_leaves_evaluated": stats.leaves_evaluated,
            "bnb_subtrees_pruned": stats.subtrees_pruned,
        }));
    }
    serde_json::Value::Array(entries)
}

fn main() {
    let mut out_path = "BENCH_PR7.json".to_string();
    let mut enforce = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--enforce" => enforce = true,
            other => out_path = other.to_string(),
        }
    }

    let model = synthetic_model();
    // Contract space: 3 zones × 2 components + gateway, 4 candidates each
    // (`4^7` = 16 384 variants) — small enough to naive-sweep in full.
    let mid_space = replica_space(3, 2, 4);
    // Scale space: 3 zones × 3 components + gateway (`4^10` ≈ 1 M
    // variants) — fold-swept in full, naive cost projected from a sample.
    let big_space = replica_space(3, 3, 4);

    let rows = vec![
        measure("replica_4^7", &mid_space, &model, 3, true),
        measure("replica_4^10", &big_space, &model, 3, false),
    ];

    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "space", "variants", "naive ns", "fold ns", "bnb ns", "speedup", "visited"
    );
    let mut spaces = Vec::new();
    for row in &rows {
        println!(
            "{:<14} {:>12} {:>14} {:>14} {:>14} {:>8.1}x {:>8.3}%",
            row.name,
            row.assignments,
            row.naive_ns.map_or_else(
                || format!("~{:.0}", row.naive_total_ns()),
                |ns| ns.to_string()
            ),
            row.fold_ns,
            row.bnb_ns,
            row.fold_speedup(),
            row.visited_fraction() * 100.0,
        );
        spaces.push(serde_json::json!({
            "name": row.name,
            "leaves": row.leaves,
            "assignments": row.assignments as u64,
            "naive_block_sweep": row.naive_ns.map(|ns| serde_json::json!({
                "total_ns": ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, ns),
            })),
            "naive_ns_per_variant_sampled": row.naive_sample_ns_per_variant,
            "naive_total_ns_effective": row.naive_total_ns(),
            "factorized_fold": {
                "total_ns": row.fold_ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, row.fold_ns),
            },
            "bnb_parallel": stats_json(row.bnb_ns, &row.bnb_stats),
            "speedup_fold_vs_naive": row.fold_speedup(),
            "bnb_visited_fraction": row.visited_fraction(),
            "bnb_prune_rate": row.bnb_stats.subtrees_pruned,
        }));
    }

    let mid = &rows[0];
    let big = &rows[1];
    let gates = [
        (
            "fold speedup >= 10x vs naive Block sweep on 4^7",
            mid.fold_speedup() >= 10.0,
        ),
        (
            "projected fold speedup >= 10x on 4^10",
            big.fold_speedup() >= 10.0,
        ),
        (
            "bnb pruning fired on 4^10",
            big.bnb_stats.subtrees_pruned > 0,
        ),
        ("bnb visited < 50% of 4^10", big.visited_fraction() < 0.50),
    ];
    let mut all_pass = true;
    for (label, pass) in &gates {
        if !pass {
            all_pass = false;
            eprintln!("GATE FAILED: {label}");
        }
    }
    println!(
        "4^7: {:.1}x fold over naive Block sweep; 4^10: {:.1}x projected, \
         bnb visited {:.3}% with {} subtrees pruned",
        mid.fold_speedup(),
        big.fold_speedup(),
        big.visited_fraction() * 100.0,
        big.bnb_stats.subtrees_pruned,
    );

    let report = serde_json::json!({
        "benchmark": "BENCH_PR7",
        "description": "factorized series-parallel composition fold vs naive Block re-evaluation, with composition branch-and-bound prune rate",
        "spaces": spaces,
        "archetypes": archetype_section(),
        "speedup_fold_vs_naive_4^7": mid.fold_speedup(),
        "speedup_fold_vs_naive_4^10_projected": big.fold_speedup(),
        "bnb_subtrees_pruned_4^10": big.bnb_stats.subtrees_pruned,
        "bnb_visited_fraction_4^10": big.visited_fraction(),
        "gates_pass": all_pass,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, rendered).expect("write benchmark report");
    println!("wrote {out_path}");

    if enforce && !all_pass {
        eprintln!("--enforce: acceptance gates failed");
        std::process::exit(1);
    }
}
