//! PR 4 load generator: drives the `uptime-serve` daemon over TCP with a
//! seeded hot/cold request mix and emits machine-readable `BENCH_PR4.json`
//! (throughput, latency percentiles, cache hit rate, speedup vs cold
//! per-request evaluation).
//!
//! ```text
//! # Against an already-running daemon:
//! cargo run --release -p uptime-bench --bin loadgen -- --addr 127.0.0.1:7411
//!
//! # Self-contained (spawns an in-process daemon on a loopback port):
//! cargo run --release -p uptime-bench --bin loadgen
//! ```
//!
//! Flags: `--clients N` (4), `--requests N` per client (250),
//! `--repeat-ratio R` hot-pool fraction (0.9), `--seed S` (7),
//! `--out PATH` (BENCH_PR4.json), `--min-hit-rate F` (exit 1 below it),
//! `--fail-on-error` (exit 1 on any error/shed), `--shutdown` (drain the
//! daemon afterwards).
//!
//! Tracing-era flags (PR 8): `--health-ratio R` mixes health probes into
//! the stream (per-endpoint latency percentiles come out in the report),
//! `--explain-ratio R` asks a fraction of requests for an inline span
//! breakdown and aggregates per-stage time, `--max-p99-ms MS` fails the
//! run when overall p99 exceeds the bound, and
//! `--compare BASELINE.json --max-overhead-pct P` fails when throughput
//! regressed more than P% against a previous report (the
//! tracing-overhead gate: run once with `--no-trace`, once without,
//! compare).
//!
//! Frontier-era flags (PR 9): `--frontier-ratio R` mixes SLO frontier
//! extractions into the stream (the report gains `frontier` latency
//! percentiles), and whenever frontier traffic or `--enforce` is on the
//! run also times epsilon-dominance branch-and-bound against the naive
//! O(N²) dominance sweep on a synthetic 6^6 space and reports the
//! speedup under `frontier_bench`. `--enforce` fails the run below the
//! 5x frontier-speedup floor (or on a frontier/naive mismatch). The
//! frontier CI job writes `BENCH_PR9.json` via `--out`.
//!
//! Reactor-era flags (PR 10): `--connections N --duration SECS` switch
//! the generator into open-loop mode — N persistent connections, each
//! with a decoupled writer/reader thread pair keeping up to `--pipeline`
//! (32) frames in flight, running for a fixed wall-clock window instead
//! of a fixed request count. The report gains `mode`, the `serve`
//! section (core name plus per-shard accepted/served/shed counters and
//! rps, diffed across the run from the daemon's `stats` endpoint), and
//! `--baseline OLD.json --min-speedup X` computes `speedup_vs_baseline`
//! against a previous report's `throughput_rps`; under `--enforce` the
//! run fails below the floor. The closed-loop mode and its report shape
//! are unchanged for BENCH_PR4 comparability; the in-process frontier
//! micro-bench stays a closed-loop-era gate and is skipped in open-loop
//! runs (where `--enforce` gates the serving speedup instead).

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Value;
use uptime_broker::{BrokerService, ServingBroker, SolutionRequest};
use uptime_catalog::{case_study, ComponentKind};
use uptime_obs::MetricsRegistry;
use uptime_serve::{RequestFrame, ResponseFrame, Server, ServerConfig, Status};

struct Config {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    repeat_ratio: f64,
    seed: u64,
    out: String,
    min_hit_rate: f64,
    fail_on_error: bool,
    shutdown: bool,
    health_ratio: f64,
    explain_ratio: f64,
    frontier_ratio: f64,
    enforce: bool,
    max_p99_ms: Option<f64>,
    compare: Option<String>,
    max_overhead_pct: Option<f64>,
    connections: usize,
    duration_secs: f64,
    pipeline: usize,
    baseline: Option<String>,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        addr: None,
        clients: 4,
        requests: 250,
        repeat_ratio: 0.9,
        seed: 7,
        out: "BENCH_PR4.json".to_owned(),
        min_hit_rate: 0.0,
        fail_on_error: false,
        shutdown: false,
        health_ratio: 0.0,
        explain_ratio: 0.0,
        frontier_ratio: 0.0,
        enforce: false,
        max_p99_ms: None,
        compare: None,
        max_overhead_pct: None,
        connections: 0,
        duration_secs: 0.0,
        pipeline: 32,
        baseline: None,
        min_speedup: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter().map(String::as_str);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&str, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--addr" => config.addr = Some(value("--addr")?.to_owned()),
            "--clients" => {
                config.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                config.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--repeat-ratio" => {
                config.repeat_ratio = value("--repeat-ratio")?
                    .parse()
                    .map_err(|e| format!("--repeat-ratio: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => config.out = value("--out")?.to_owned(),
            "--min-hit-rate" => {
                config.min_hit_rate = value("--min-hit-rate")?
                    .parse()
                    .map_err(|e| format!("--min-hit-rate: {e}"))?;
            }
            "--fail-on-error" => config.fail_on_error = true,
            "--shutdown" => config.shutdown = true,
            "--health-ratio" => {
                config.health_ratio = value("--health-ratio")?
                    .parse()
                    .map_err(|e| format!("--health-ratio: {e}"))?;
            }
            "--explain-ratio" => {
                config.explain_ratio = value("--explain-ratio")?
                    .parse()
                    .map_err(|e| format!("--explain-ratio: {e}"))?;
            }
            "--frontier-ratio" => {
                config.frontier_ratio = value("--frontier-ratio")?
                    .parse()
                    .map_err(|e| format!("--frontier-ratio: {e}"))?;
            }
            "--enforce" => config.enforce = true,
            "--max-p99-ms" => {
                config.max_p99_ms = Some(
                    value("--max-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--max-p99-ms: {e}"))?,
                );
            }
            "--compare" => config.compare = Some(value("--compare")?.to_owned()),
            "--max-overhead-pct" => {
                config.max_overhead_pct = Some(
                    value("--max-overhead-pct")?
                        .parse()
                        .map_err(|e| format!("--max-overhead-pct: {e}"))?,
                );
            }
            "--connections" => {
                config.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?;
            }
            "--duration" => {
                config.duration_secs = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
            }
            "--pipeline" => {
                config.pipeline = value("--pipeline")?
                    .parse()
                    .map_err(|e| format!("--pipeline: {e}"))?;
            }
            "--baseline" => config.baseline = Some(value("--baseline")?.to_owned()),
            "--min-speedup" => {
                config.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if (config.connections > 0) != (config.duration_secs > 0.0) {
        return Err("--connections and --duration enable open-loop mode together".to_owned());
    }
    if config.min_speedup.is_some() && config.baseline.is_none() {
        return Err("--min-speedup needs --baseline".to_owned());
    }
    if config.pipeline == 0 {
        return Err("--pipeline must be at least 1".to_owned());
    }
    Ok(config)
}

/// splitmix64 — the repo's standard seeded generator for workloads.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn request_for(percent: f64, rate: f64) -> SolutionRequest {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(percent)
        .expect("percent in range")
        .penalty_per_hour(rate)
        .expect("positive rate")
        .build()
        .expect("valid request")
}

/// The hot pool: the handful of requests a steady-state broker keeps
/// answering (think dashboards and repeated what-if queries).
fn hot_pool() -> Vec<Value> {
    [95.0, 96.0, 97.0, 97.5, 98.0, 98.5, 99.0, 99.5]
        .iter()
        .map(|&p| serde_json::to_value(&request_for(p, 100.0)))
        .collect()
}

/// The frontier hot pool: a handful of SLO specs (hard uptime floor,
/// soft cost cap) whose extraction the daemon keeps re-answering.
fn frontier_pool() -> Vec<Value> {
    [92.0, 95.0, 97.0, 98.0]
        .iter()
        .map(|&threshold| {
            serde_json::json!({
                "tiers": ["Compute", "Storage", "NetworkGateway"],
                "penalty": { "PerHour": { "rate": 100.0 } },
                "slo": { "objectives": [
                    { "metric": "uptime", "threshold": threshold, "mode": "hard" },
                    { "metric": "cost", "threshold": 2000.0, "mode": "soft", "weight": 1.0 }
                ] },
            })
        })
        .collect()
}

/// A unique cold request: an SLA/rate point nothing else in the run uses.
fn cold_request(rng: &mut u64) -> Value {
    let percent = 90.0 + (splitmix64(rng) % 800_000) as f64 / 100_000.0;
    let rate = 1.0 + (splitmix64(rng) % 100_000) as f64 / 100.0;
    serde_json::to_value(&request_for(percent, rate))
}

/// Draws the next request from the seeded mix (shared by both modes).
fn pick_request(
    rng: &mut u64,
    repeat_ratio: f64,
    health_ratio: f64,
    frontier_ratio: f64,
    pool: &[Value],
    frontiers: &[Value],
) -> (&'static str, Value) {
    let roll = |rng: &mut u64| (splitmix64(rng) % 10_000) as f64 / 10_000.0;
    if roll(rng) < health_ratio {
        ("health", Value::Null)
    } else if roll(rng) < frontier_ratio {
        (
            "frontier",
            frontiers[(splitmix64(rng) % frontiers.len() as u64) as usize].clone(),
        )
    } else if roll(rng) < repeat_ratio {
        (
            "recommend",
            pool[(splitmix64(rng) % pool.len() as u64) as usize].clone(),
        )
    } else {
        ("recommend", cold_request(rng))
    }
}

#[derive(Default)]
struct ClientStats {
    latencies_ns: Vec<u64>,
    by_endpoint_ns: BTreeMap<&'static str, Vec<u64>>,
    /// Per span name: (samples, total ns) summed from explain payloads.
    stage_ns: BTreeMap<String, (u64, u64)>,
    ok: u64,
    cached: u64,
    coalesced: u64,
    shed: u64,
    errors: u64,
}

impl ClientStats {
    /// Folds one response line into the running tallies.
    fn absorb(
        &mut self,
        endpoint: &'static str,
        elapsed_ns: u64,
        line: &str,
    ) -> std::io::Result<()> {
        self.latencies_ns.push(elapsed_ns);
        self.by_endpoint_ns
            .entry(endpoint)
            .or_default()
            .push(elapsed_ns);
        let response: ResponseFrame = serde_json::from_str(line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
        if let Some(spans) = response
            .explain
            .as_ref()
            .and_then(|e| e.get("spans"))
            .and_then(Value::as_array)
        {
            for span in spans {
                let Some(name) = span.get("name").and_then(Value::as_str) else {
                    continue;
                };
                let ns = span.get("duration_ns").and_then(Value::as_u64).unwrap_or(0);
                let entry = self.stage_ns.entry(name.to_owned()).or_insert((0, 0));
                entry.0 += 1;
                entry.1 = entry.1.saturating_add(ns);
            }
        }
        match response.status {
            Status::Ok => {
                self.ok += 1;
                if response.cached {
                    self.cached += 1;
                }
                if response.coalesced {
                    self.coalesced += 1;
                }
            }
            Status::Shed => self.shed += 1,
            Status::Error => self.errors += 1,
        }
        Ok(())
    }

    /// Open-loop accounting: classify the response by its rendered
    /// envelope (status suffix, cached/coalesced markers) instead of
    /// parsing the full body — the parse would bill the shared CPU for
    /// work the daemon under test needs. Falls back to the full parse
    /// when the envelope shape is unrecognized or the frame asked for an
    /// explain payload (whose spans we aggregate).
    fn absorb_scan(
        &mut self,
        endpoint: &'static str,
        elapsed_ns: u64,
        line: &str,
        parse_full: bool,
    ) -> std::io::Result<()> {
        let tail = line.trim_end();
        let (ok, shed, error) = (
            tail.ends_with("\"status\":\"ok\",\"v\":1}"),
            tail.ends_with("\"status\":\"shed\",\"v\":1}"),
            tail.ends_with("\"status\":\"error\",\"v\":1}"),
        );
        if parse_full || !(ok || shed || error) {
            return self.absorb(endpoint, elapsed_ns, line);
        }
        self.latencies_ns.push(elapsed_ns);
        self.by_endpoint_ns
            .entry(endpoint)
            .or_default()
            .push(elapsed_ns);
        if ok {
            self.ok += 1;
            if line.contains(",\"cached\":true,") {
                self.cached += 1;
            }
            if line.contains(",\"coalesced\":true,") {
                self.coalesced += 1;
            }
        } else if shed {
            self.shed += 1;
        } else {
            self.errors += 1;
        }
        Ok(())
    }

    fn merge(&mut self, other: ClientStats) {
        self.latencies_ns.extend(other.latencies_ns);
        for (endpoint, ns) in other.by_endpoint_ns {
            self.by_endpoint_ns.entry(endpoint).or_default().extend(ns);
        }
        for (name, (count, total)) in other.stage_ns {
            let entry = self.stage_ns.entry(name).or_insert((0, 0));
            entry.0 += count;
            entry.1 = entry.1.saturating_add(total);
        }
        self.ok += other.ok;
        self.cached += other.cached;
        self.coalesced += other.coalesced;
        self.shed += other.shed;
        self.errors += other.errors;
    }
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: &str,
    requests: usize,
    repeat_ratio: f64,
    health_ratio: f64,
    explain_ratio: f64,
    frontier_ratio: f64,
    mut rng: u64,
    pool: &[Value],
    frontiers: &[Value],
) -> std::io::Result<ClientStats> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut stats = ClientStats::default();
    stats.latencies_ns.reserve(requests);
    for i in 0..requests {
        let (endpoint, body) = pick_request(
            &mut rng,
            repeat_ratio,
            health_ratio,
            frontier_ratio,
            pool,
            frontiers,
        );
        let explain = explain_ratio > 0.0
            && (splitmix64(&mut rng) % 10_000) as f64 / 10_000.0 < explain_ratio;
        let frame = RequestFrame::new(i as u64, endpoint, body).with_explain(explain);
        let mut text = serde_json::to_string(&frame).expect("frame serializes");
        text.push('\n');
        let start = Instant::now();
        writer.write_all(text.as_bytes())?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats.absorb(endpoint, elapsed_ns, &line)?;
    }
    Ok(stats)
}

/// An in-flight open-loop request: endpoint, whether a full explain
/// parse is needed on its response, and its send timestamp.
type Inflight = (&'static str, bool, Instant);

/// The writer/reader rendezvous for one open-loop connection: FIFO of
/// in-flight requests plus condvars for "window has room" and "queue has
/// a head to read".
struct Window {
    queue: Mutex<VecDeque<Inflight>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// One open-loop connection: a writer that keeps up to `pipeline` frames
/// in flight until the deadline, and a reader that matches responses to
/// their send timestamps FIFO (the protocol answers in order per
/// connection). The connection persists for the whole window — the
/// connection-reuse shape the reactor core is built for. The generator
/// deliberately stays cheap (pre-serialized hot bodies, hand-spliced
/// frames, batched writes, envelope-scan accounting) so it measures the
/// daemon rather than its own CPU appetite.
#[allow(clippy::too_many_arguments)]
fn run_open_loop_conn(
    addr: &str,
    deadline: Instant,
    pipeline: usize,
    repeat_ratio: f64,
    health_ratio: f64,
    explain_ratio: f64,
    frontier_ratio: f64,
    mut rng: u64,
    pool: &[Value],
    frontiers: &[Value],
) -> std::io::Result<ClientStats> {
    use std::fmt::Write as FmtWrite;

    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone()?;
    let window = Arc::new(Window {
        queue: Mutex::new(VecDeque::with_capacity(pipeline)),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    let done = Arc::new(AtomicBool::new(false));

    let reader_window = Arc::clone(&window);
    let reader_done = Arc::clone(&done);
    let reader = std::thread::spawn(move || -> std::io::Result<ClientStats> {
        let mut reader = BufReader::with_capacity(256 * 1024, reader_stream);
        let mut stats = ClientStats::default();
        let mut line = String::new();
        loop {
            let front = {
                let mut queue = reader_window.queue.lock().expect("window lock");
                loop {
                    if let Some(entry) = queue.front().copied() {
                        break Some(entry);
                    }
                    if reader_done.load(Ordering::Acquire) {
                        break None;
                    }
                    let (next, _) = reader_window
                        .not_empty
                        .wait_timeout(queue, Duration::from_millis(10))
                        .expect("window lock");
                    queue = next;
                }
            };
            let Some((endpoint, explain, start)) = front else {
                return Ok(stats);
            };
            line.clear();
            let n = reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon hung up with responses outstanding",
                ));
            }
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            reader_window.queue.lock().expect("window lock").pop_front();
            reader_window.not_full.notify_one();
            stats.absorb_scan(endpoint, elapsed_ns, &line, explain)?;
        }
    });

    // Hot bodies render once; only cold one-off requests pay serde.
    let pool_text: Vec<String> = pool
        .iter()
        .map(|v| serde_json::to_string(v).expect("body serializes"))
        .collect();
    let frontier_text: Vec<String> = frontiers
        .iter()
        .map(|v| serde_json::to_string(v).expect("body serializes"))
        .collect();
    let roll = |rng: &mut u64| (splitmix64(rng) % 10_000) as f64 / 10_000.0;

    let mut writer = stream;
    let mut buf = String::with_capacity(pipeline * 256);
    let mut batch: Vec<Inflight> = Vec::with_capacity(pipeline);
    let mut id = 0u64;
    let mut result = Ok(());
    'run: while Instant::now() < deadline {
        let available = {
            let mut queue = window.queue.lock().expect("window lock");
            loop {
                if queue.len() < pipeline {
                    break pipeline - queue.len();
                }
                let (next, _) = window
                    .not_full
                    .wait_timeout(queue, Duration::from_millis(10))
                    .expect("window lock");
                queue = next;
                if Instant::now() >= deadline {
                    break 'run;
                }
            }
        };
        buf.clear();
        batch.clear();
        for _ in 0..available.min(16) {
            let cold;
            let (endpoint, body_text): (&'static str, &str) = if roll(&mut rng) < health_ratio {
                ("health", "null")
            } else if roll(&mut rng) < frontier_ratio {
                (
                    "frontier",
                    &frontier_text[(splitmix64(&mut rng) % frontier_text.len() as u64) as usize],
                )
            } else if roll(&mut rng) < repeat_ratio {
                (
                    "recommend",
                    &pool_text[(splitmix64(&mut rng) % pool_text.len() as u64) as usize],
                )
            } else {
                cold = serde_json::to_string(&cold_request(&mut rng)).expect("body serializes");
                ("recommend", cold.as_str())
            };
            let explain = explain_ratio > 0.0
                && (splitmix64(&mut rng) % 10_000) as f64 / 10_000.0 < explain_ratio;
            batch.push((endpoint, explain, Instant::now()));
            let _ = write!(
                buf,
                "{{\"v\":1,\"id\":{id},\"endpoint\":\"{endpoint}\",\"body\":{body_text}"
            );
            if explain {
                buf.push_str(",\"explain\":true");
            }
            buf.push_str("}\n");
            id += 1;
        }
        window
            .queue
            .lock()
            .expect("window lock")
            .extend(batch.drain(..));
        window.not_empty.notify_one();
        if let Err(error) = writer.write_all(buf.as_bytes()) {
            result = Err(error);
            break;
        }
    }
    done.store(true, Ordering::Release);
    window.not_empty.notify_all();
    let stats = reader.join().expect("reader thread")?;
    result.map(|()| stats)
}

/// One round-trip on a fresh connection to the daemon's `stats`
/// endpoint. Returns the response body, or `None` when anything along
/// the way fails (the report then simply omits the serve section).
fn query_stats(addr: &str) -> Option<Value> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    let mut text = serde_json::to_string(&RequestFrame::new(0, "stats", Value::Null)).ok()?;
    text.push('\n');
    writer.write_all(text.as_bytes()).ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let response: ResponseFrame = serde_json::from_str(&line).ok()?;
    response.body
}

/// The report's `serve` section: the daemon's core name and the
/// per-shard accepted/served/shed deltas across the run (the `stats`
/// counters are cumulative, so two snapshots bracket the window), each
/// with its served-requests-per-second rate.
fn serve_section(before: Option<&Value>, after: Option<&Value>, elapsed: f64) -> Value {
    let Some(after) = after else {
        return Value::Null;
    };
    let counter_at = |snapshot: Option<&Value>, shard: &str, what: &str| -> u64 {
        snapshot
            .and_then(|s| s.get("shards"))
            .and_then(|shards| shards.get(shard))
            .and_then(|entry| entry.get(what))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let mut shards = serde_json::Map::new();
    if let Some(Value::Object(section)) = after.get("shards") {
        for shard in section.keys() {
            let delta = |what: &str| {
                counter_at(Some(after), shard, what).saturating_sub(counter_at(before, shard, what))
            };
            let served = delta("served");
            let rps = if elapsed > 0.0 {
                served as f64 / elapsed
            } else {
                0.0
            };
            shards.insert(
                shard.clone(),
                serde_json::json!({
                    "accepted": delta("accepted"),
                    "served": served,
                    "shed": delta("shed"),
                    "rps": rps,
                }),
            );
        }
    }
    serde_json::json!({
        "core": after.get("core").cloned().unwrap_or(Value::Null),
        "poller": after.get("poller").cloned().unwrap_or(Value::Null),
        "shards": Value::Object(shards),
    })
}

/// In-process floor of a cold evaluation: rebuild the catalog and broker,
/// evaluate, drop — what each request costs with no daemon and no cache,
/// excluding process startup.
fn cold_inprocess_rps(reps: u32) -> f64 {
    let request = request_for(98.0, 100.0);
    let start = Instant::now();
    for _ in 0..reps {
        let store = case_study::catalog();
        let broker = BrokerService::new(store);
        let plan = broker.recommend(&request).expect("catalog answers");
        std::hint::black_box(&plan);
    }
    f64::from(reps) / start.elapsed().as_secs_f64()
}

/// What the daemon actually replaces: a one-shot `brokerctl recommend`
/// process per request (spawn + catalog build + evaluate + print). Looks
/// for the binary next to our own executable (both live in
/// `target/release`), or under `$BROKERCTL`. Returns requests/sec, or
/// `None` when the binary is not around.
fn cold_cli_rps(reps: u32) -> Option<f64> {
    let path = std::env::var("BROKERCTL")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_exe().map(|exe| exe.with_file_name("brokerctl")));
    let path = path.ok().filter(|p| p.exists())?;
    // Warm the page cache so the first spawn doesn't skew the mean.
    let probe = std::process::Command::new(&path)
        .args(["recommend", "--json"])
        .output()
        .ok()?;
    if !probe.status.success() {
        return None;
    }
    let start = Instant::now();
    for _ in 0..reps {
        let output = std::process::Command::new(&path)
            .args(["recommend", "--json"])
            .output()
            .expect("brokerctl spawns");
        assert!(output.status.success(), "one-shot recommend failed");
    }
    Some(f64::from(reps) / start.elapsed().as_secs_f64())
}

/// PR 9 gate: time epsilon-dominance branch-and-bound frontier
/// extraction against the naive O(N²) dominance sweep on a synthetic
/// `6^6` space, and differentially check the two agree. Returns the
/// report section, the measured speedup, and whether the frontiers
/// matched point-for-point.
fn frontier_bench() -> (Value, f64, bool) {
    use uptime_optimizer::pareto_bnb;

    let space = uptime_bench::synthetic_space(6, 6);
    let model = uptime_bench::synthetic_model();
    let constraints = pareto_bnb::FrontierConstraints::NONE;
    let epsilon = 1e-9;

    let naive_start = Instant::now();
    let naive = pareto_bnb::naive_frontier(&space, &model, &constraints);
    let naive_ns = u64::try_from(naive_start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Best of 3 for the fast path; the naive sweep is too slow to repeat.
    let mut bnb_ns = u64::MAX;
    let mut outcome = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = pareto_bnb::search(&space, &model, &constraints, epsilon);
        bnb_ns = bnb_ns.min(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        outcome = Some(run);
    }
    let outcome = outcome.expect("three runs happened");

    // Compare the frontier contract — representative assignment and the
    // (cost, uptime) coordinates — not whole `Evaluation`s: derived
    // fields off the frontier axes (failover probability, penalty) are
    // summed in a different order by the fast path and may differ in the
    // last ulp.
    let key = |p: &uptime_optimizer::ParetoPoint| {
        (
            p.evaluation().assignment().to_vec(),
            p.ha_cost().value(),
            p.uptime().value(),
        )
    };
    let matches_naive = outcome.points().iter().map(key).collect::<Vec<_>>()
        == naive.iter().map(key).collect::<Vec<_>>();
    let speedup = if bnb_ns > 0 {
        naive_ns as f64 / bnb_ns as f64
    } else {
        f64::INFINITY
    };
    let stats = outcome.stats();
    let section = serde_json::json!({
        "space": "synthetic-6^6",
        "leaves": 46_656u64,
        "frontier_size": stats.frontier_size,
        "leaves_evaluated": stats.leaves_evaluated,
        "subtrees_pruned": stats.subtrees_pruned,
        "bnb_ns": bnb_ns,
        "naive_ns": naive_ns,
        "speedup": speedup,
        "matches_naive": matches_naive,
        "meets_5x_target": speedup >= 5.0 && matches_naive,
    });
    (section, speedup, matches_naive)
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("loadgen: {message}");
            return ExitCode::from(2);
        }
    };
    let open_loop = config.connections > 0;

    // Either target a running daemon or spawn one in-process.
    let mut local = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let store = case_study::catalog();
            let broker = Arc::new(BrokerService::new(store));
            let backend = Arc::new(ServingBroker::new(broker));
            let handle = Server::start(
                backend,
                ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    ..ServerConfig::default()
                },
                Arc::new(MetricsRegistry::new()),
            )
            .expect("in-process daemon binds");
            let addr = handle.local_addr().to_string();
            local = Some(handle);
            addr
        }
    };

    let pool = hot_pool();
    let frontiers = frontier_pool();
    let stats_before = if open_loop { query_stats(&addr) } else { None };
    let started = Instant::now();
    let workers: Vec<_> = if open_loop {
        let deadline = started + Duration::from_secs_f64(config.duration_secs);
        (0..config.connections)
            .map(|c| {
                let addr = addr.clone();
                let pool = pool.clone();
                let frontiers = frontiers.clone();
                let pipeline = config.pipeline;
                let ratio = config.repeat_ratio;
                let health_ratio = config.health_ratio;
                let explain_ratio = config.explain_ratio;
                let frontier_ratio = config.frontier_ratio;
                let seed = config
                    .seed
                    .wrapping_add(0x517c_c1b7_2722_0a95_u64.wrapping_mul(c as u64 + 1));
                std::thread::spawn(move || {
                    run_open_loop_conn(
                        &addr,
                        deadline,
                        pipeline,
                        ratio,
                        health_ratio,
                        explain_ratio,
                        frontier_ratio,
                        seed,
                        &pool,
                        &frontiers,
                    )
                })
            })
            .collect()
    } else {
        (0..config.clients)
            .map(|c| {
                let addr = addr.clone();
                let pool = pool.clone();
                let frontiers = frontiers.clone();
                let requests = config.requests;
                let ratio = config.repeat_ratio;
                let health_ratio = config.health_ratio;
                let explain_ratio = config.explain_ratio;
                let frontier_ratio = config.frontier_ratio;
                let seed = config
                    .seed
                    .wrapping_add(0x517c_c1b7_2722_0a95_u64.wrapping_mul(c as u64 + 1));
                std::thread::spawn(move || {
                    run_client(
                        &addr,
                        requests,
                        ratio,
                        health_ratio,
                        explain_ratio,
                        frontier_ratio,
                        seed,
                        &pool,
                        &frontiers,
                    )
                })
            })
            .collect()
    };

    let mut merged = ClientStats::default();
    for worker in workers {
        match worker.join().expect("client thread") {
            Ok(stats) => merged.merge(stats),
            Err(error) => {
                eprintln!("loadgen: client failed: {error}");
                merged.errors += if open_loop { 1 } else { config.requests as u64 };
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats_after = if open_loop { query_stats(&addr) } else { None };
    let serve = serve_section(stats_before.as_ref(), stats_after.as_ref(), elapsed);

    let ClientStats {
        latencies_ns: mut latencies,
        by_endpoint_ns: by_endpoint,
        stage_ns,
        ok,
        cached,
        coalesced,
        shed,
        errors,
    } = merged;

    if config.shutdown || local.is_some() {
        if let Ok(stream) = TcpStream::connect(&addr) {
            let mut writer = stream.try_clone().expect("clone stream");
            let mut reader = BufReader::new(stream);
            let mut text = serde_json::to_string(&RequestFrame::new(0, "shutdown", Value::Null))
                .expect("frame serializes");
            text.push('\n');
            let _ = writer.write_all(text.as_bytes());
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
        }
    }
    if let Some(handle) = local.take() {
        handle.join();
    }

    latencies.sort_unstable();
    let total = latencies.len() as u64;
    let throughput_rps = if elapsed > 0.0 {
        total as f64 / elapsed
    } else {
        f64::INFINITY
    };
    let inprocess_rps = cold_inprocess_rps(20);
    let cli_rps = cold_cli_rps(25);
    // The daemon replaces a one-shot CLI process per request; that is the
    // cold baseline when the binary is around, the in-process rebuild
    // otherwise.
    let (cold_rps, cold_mode) = match cli_rps {
        Some(rps) => (rps, "one-shot-cli"),
        None => (inprocess_rps, "in-process-rebuild"),
    };
    let speedup = throughput_rps / cold_rps;
    let hit_rate = if ok > 0 {
        cached as f64 / ok as f64
    } else {
        0.0
    };
    let meets_10x = speedup >= 10.0;

    if open_loop {
        println!(
            "open-loop: {} connection(s), {:.1}s window, pipeline {}",
            config.connections, config.duration_secs, config.pipeline
        );
    }
    println!(
        "{} requests in {elapsed:.2}s — {throughput_rps:.0} req/s \
         (cold {cold_mode}: {cold_rps:.0} req/s, {speedup:.1}x)",
        total
    );
    println!(
        "cache: {cached}/{ok} hits ({:.1}%), {coalesced} coalesced; {shed} shed, {errors} errors",
        hit_rate * 100.0
    );
    if let Some(Value::Object(shards)) = serve.get("shards") {
        for (index, entry) in shards {
            let served = entry.get("served").and_then(Value::as_u64).unwrap_or(0);
            let rps = entry.get("rps").and_then(Value::as_f64).unwrap_or(0.0);
            println!("shard {index}: {served} served ({rps:.0} req/s)");
        }
    }

    // Per-endpoint latency percentiles: one entry per endpoint the mix
    // actually exercised (`recommend` always; `health` under
    // --health-ratio).
    let mut endpoints = serde_json::Map::new();
    for (endpoint, mut ns) in by_endpoint {
        ns.sort_unstable();
        endpoints.insert(
            endpoint.to_owned(),
            serde_json::json!({
                "requests": ns.len() as u64,
                "p50": percentile(&ns, 0.50),
                "p95": percentile(&ns, 0.95),
                "p99": percentile(&ns, 0.99),
                "max": ns.last().copied().unwrap_or(0),
            }),
        );
    }
    let stages: serde_json::Map = stage_ns
        .into_iter()
        .map(|(name, (count, total))| {
            let mean = total.checked_div(count).unwrap_or(0);
            (
                name,
                serde_json::json!({"samples": count, "total_ns": total, "mean_ns": mean}),
            )
        })
        .collect();

    // Two-run overhead gate: against a baseline report (same workload,
    // tracing off), how much throughput did this run give up?
    let mut overhead_pct: Option<f64> = None;
    let compare_value = match &config.compare {
        None => Value::Null,
        Some(path) => {
            let baseline: Value = std::fs::read_to_string(path)
                .map_err(|e| format!("read {path}: {e}"))
                .and_then(|text| {
                    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
                })
                .unwrap_or_else(|message| {
                    eprintln!("loadgen: --compare: {message}");
                    std::process::exit(2);
                });
            let baseline_rps = baseline
                .get("throughput_rps")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| {
                    eprintln!("loadgen: --compare: {path} has no throughput_rps");
                    std::process::exit(2);
                });
            let pct = if throughput_rps > 0.0 {
                (baseline_rps / throughput_rps - 1.0) * 100.0
            } else {
                f64::INFINITY
            };
            overhead_pct = Some(pct);
            serde_json::json!({
                "baseline": path,
                "baseline_rps": baseline_rps,
                "overhead_pct": pct,
                "max_overhead_pct": config.max_overhead_pct,
            })
        }
    };

    // The serving-speedup gate (PR 10): this run's throughput against a
    // previous report's. The reactor CI job points --baseline at a fresh
    // threads-core BENCH_PR4 run and demands --min-speedup 10.
    let mut speedup_vs_baseline: Option<f64> = None;
    let baseline_value = match &config.baseline {
        None => Value::Null,
        Some(path) => {
            let baseline: Value = std::fs::read_to_string(path)
                .map_err(|e| format!("read {path}: {e}"))
                .and_then(|text| {
                    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
                })
                .unwrap_or_else(|message| {
                    eprintln!("loadgen: --baseline: {message}");
                    std::process::exit(2);
                });
            let baseline_rps = baseline
                .get("throughput_rps")
                .and_then(Value::as_f64)
                .filter(|rps| *rps > 0.0)
                .unwrap_or_else(|| {
                    eprintln!("loadgen: --baseline: {path} has no positive throughput_rps");
                    std::process::exit(2);
                });
            let ratio = throughput_rps / baseline_rps;
            speedup_vs_baseline = Some(ratio);
            println!(
                "speedup vs baseline {path}: {ratio:.1}x \
                 ({baseline_rps:.0} -> {throughput_rps:.0} req/s)"
            );
            serde_json::json!({
                "baseline": path,
                "baseline_rps": baseline_rps,
                "speedup": ratio,
                "min_speedup": config.min_speedup,
            })
        }
    };
    let meets_speedup_target = match (speedup_vs_baseline, config.min_speedup) {
        (Some(ratio), Some(floor)) => Value::Bool(ratio >= floor),
        _ => Value::Null,
    };

    // The frontier micro-bench only runs when the mix exercises the
    // frontier endpoint (or the gate is enforced) — BENCH_PR4/PR8 runs
    // stay unchanged. Open-loop runs skip it: there --enforce gates the
    // serving speedup, and the in-process sweep would just pad the window.
    let (frontier_section, frontier_speedup, frontier_matches) =
        if (config.frontier_ratio > 0.0 || config.enforce) && !open_loop {
            let (section, speedup, matches) = frontier_bench();
            println!(
                "frontier bench: bnb {speedup:.1}x over naive dominance sweep \
                 (frontiers {})",
                if matches { "match" } else { "DIVERGE" }
            );
            (section, Some(speedup), matches)
        } else {
            (Value::Null, None, true)
        };

    // The report label follows the output file (BENCH_PR4.json stays the
    // PR 4 contract; the tracing CI job writes BENCH_PR8.json; the
    // frontier CI job writes BENCH_PR9.json; the reactor CI job writes
    // BENCH_PR10.json).
    let benchmark = std::path::Path::new(&config.out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_owned();
    let report = serde_json::json!({
        "benchmark": benchmark,
        "description": "uptime-serve daemon throughput vs cold per-request evaluation",
        "mode": if open_loop { "open-loop" } else { "closed-loop" },
        "config": {
            "addr": addr,
            "clients": config.clients as u64,
            "requests_per_client": config.requests as u64,
            "connections": config.connections as u64,
            "duration_secs": config.duration_secs,
            "pipeline_depth": config.pipeline as u64,
            // Serving speedups are hardware-bound: shard parallelism and
            // the off-loop compute pool need real cores, so the report
            // records how many this run had.
            "cpus": std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
            "repeat_ratio": config.repeat_ratio,
            "health_ratio": config.health_ratio,
            "explain_ratio": config.explain_ratio,
            "frontier_ratio": config.frontier_ratio,
            "seed": config.seed,
        },
        "totals": {
            "requests": total,
            "ok": ok,
            "cached": cached,
            "coalesced": coalesced,
            "shed": shed,
            "errors": errors,
        },
        "latency_ns": {
            "p50": percentile(&latencies, 0.50),
            "p95": percentile(&latencies, 0.95),
            "p99": percentile(&latencies, 0.99),
            "max": latencies.last().copied().unwrap_or(0),
        },
        "latency_by_endpoint_ns": serde_json::Value::Object(endpoints),
        "explain_stages": serde_json::Value::Object(stages),
        "frontier_bench": frontier_section,
        "compare": compare_value,
        "serve": serve,
        "baseline": baseline_value,
        "speedup_vs_baseline": speedup_vs_baseline,
        "meets_speedup_target": meets_speedup_target,
        "throughput_rps": throughput_rps,
        "cold_eval_rps": cold_rps,
        "cold_eval_mode": cold_mode,
        "cold_inprocess_rps": inprocess_rps,
        "speedup_vs_cold": speedup,
        "cache_hit_rate": hit_rate,
        "meets_10x_target": meets_10x,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&config.out, rendered).expect("write benchmark report");
    println!("wrote {}", config.out);

    if !meets_10x {
        eprintln!("warning: {speedup:.1}x below the 10x serving target");
    }
    let failed_hit_rate = hit_rate < config.min_hit_rate;
    if failed_hit_rate {
        eprintln!(
            "loadgen: cache hit rate {:.1}% below required {:.1}%",
            hit_rate * 100.0,
            config.min_hit_rate * 100.0
        );
    }
    let failed_errors = config.fail_on_error && (errors > 0 || shed > 0);
    if failed_errors {
        eprintln!("loadgen: {errors} errors / {shed} sheds with --fail-on-error");
    }
    let p99_ms = percentile(&latencies, 0.99) as f64 / 1e6;
    let failed_p99 = config.max_p99_ms.is_some_and(|bound| p99_ms > bound);
    if failed_p99 {
        eprintln!(
            "loadgen: p99 {p99_ms:.3}ms exceeds --max-p99-ms {:.3}",
            config.max_p99_ms.unwrap_or(0.0)
        );
    }
    let failed_overhead = match (overhead_pct, config.max_overhead_pct) {
        (Some(pct), Some(bound)) => {
            if pct > bound {
                eprintln!(
                    "loadgen: throughput overhead {pct:.1}% vs baseline exceeds \
                     --max-overhead-pct {bound:.1}"
                );
                true
            } else {
                println!("overhead vs baseline: {pct:.1}% (budget {bound:.1}%)");
                false
            }
        }
        (Some(pct), None) => {
            println!("overhead vs baseline: {pct:.1}%");
            false
        }
        _ => false,
    };
    let failed_frontier =
        config.enforce && (frontier_speedup.is_some_and(|s| s < 5.0) || !frontier_matches);
    if failed_frontier {
        eprintln!(
            "loadgen: frontier bench failed --enforce: speedup {:.1}x (need 5x), frontiers {}",
            frontier_speedup.unwrap_or(0.0),
            if frontier_matches { "match" } else { "diverge" }
        );
    }
    let failed_speedup = config.enforce
        && config.min_speedup.is_some()
        && !matches!(
            (speedup_vs_baseline, config.min_speedup),
            (Some(ratio), Some(floor)) if ratio >= floor
        );
    if failed_speedup {
        eprintln!(
            "loadgen: speedup vs baseline {:.1}x below required {:.1}x with --enforce",
            speedup_vs_baseline.unwrap_or(0.0),
            config.min_speedup.unwrap_or(0.0)
        );
    }
    if failed_hit_rate
        || failed_errors
        || failed_p99
        || failed_overhead
        || failed_frontier
        || failed_speedup
    {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
