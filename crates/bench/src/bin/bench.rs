//! PR 2 benchmark driver: times the naive per-assignment sweep against the
//! factorized streaming engine on the three reference workloads and emits
//! machine-readable `BENCH_PR2.json` (written to the working directory, or
//! to the path given as the first argument).
//!
//! ```text
//! cargo run --release -p uptime-bench --bin bench [-- out.json]
//! ```

use std::hint::black_box;
use std::time::Instant;

use uptime_bench::{
    hybrid_metacloud_space, paper_model, paper_space, synthetic_model, synthetic_space,
};
use uptime_core::TcoModel;
use uptime_optimizer::{fast, parallel, Evaluation, Objective, SearchSpace};

/// The pre-PR-2 loop: clone clusters, rebuild the `SystemSpec`, evaluate —
/// for every assignment — then rank.
fn naive_sweep(space: &SearchSpace, model: &TcoModel) -> Evaluation {
    let evaluations: Vec<Evaluation> = space
        .assignments()
        .map(|a| Evaluation::evaluate(space, model, &a))
        .collect();
    Objective::MinTco.best(&evaluations).unwrap().clone()
}

/// Times `body` over `reps` runs and returns the best (least-noise) wall
/// time in nanoseconds.
fn time_ns<T>(reps: u32, mut body: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = body();
        best = best.min(start.elapsed().as_nanos());
        black_box(&out);
    }
    best
}

struct Row {
    name: &'static str,
    assignments: u128,
    naive_ns: u128,
    fast_ns: u128,
    fast_noop_ns: u128,
    parallel_ns: u128,
    spans: serde_json::Value,
}

/// Runs each instrumented engine once against a live registry and distills
/// the per-stage span breakdown (histograms named `*.ns`, plus counters)
/// for the report.
fn span_breakdown(space: &SearchSpace, model: &TcoModel) -> serde_json::Value {
    let registry = uptime_obs::MetricsRegistry::new();
    let _ = fast::search_recorded(
        space,
        model,
        Objective::MinTco,
        &registry,
        &uptime_obs::TraceSpan::disabled(),
    );
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let _ = parallel::search_best_with_threads_recorded(
        space,
        model,
        Objective::MinTco,
        threads,
        &registry,
        &uptime_obs::TraceSpan::disabled(),
    );
    let snapshot = registry.snapshot();
    let mut spans = serde_json::Map::new();
    for hist in &snapshot.histograms {
        if !hist.name.ends_with(".ns") {
            continue;
        }
        spans.insert(
            hist.name.clone(),
            serde_json::json!({
                "count": hist.count,
                "total_ns": hist.sum,
                "p50_ns": hist.p50,
                "max_ns": hist.max,
            }),
        );
    }
    let counters: serde_json::Map = snapshot
        .counters
        .iter()
        .map(|(name, value)| (name.clone(), serde_json::json!(value)))
        .collect();
    serde_json::json!({ "spans": spans, "counters": counters })
}

fn measure(name: &'static str, space: &SearchSpace, model: &TcoModel, reps: u32) -> Row {
    let naive_best = naive_sweep(space, model);
    let fast_best = fast::search(space, model, Objective::MinTco);
    assert_eq!(
        fast_best.best().unwrap().assignment(),
        naive_best.assignment(),
        "{name}: engines disagree on the argmin"
    );
    Row {
        name,
        assignments: space.assignment_count(),
        naive_ns: time_ns(reps, || naive_sweep(space, model)),
        fast_ns: time_ns(reps, || fast::search(space, model, Objective::MinTco)),
        fast_noop_ns: time_ns(reps, || {
            fast::search_recorded(
                space,
                model,
                Objective::MinTco,
                &uptime_obs::NOOP,
                &uptime_obs::TraceSpan::disabled(),
            )
        }),
        parallel_ns: time_ns(reps, || {
            parallel::search_best(space, model, Objective::MinTco)
        }),
        spans: span_breakdown(space, model),
    }
}

fn variants_per_sec(assignments: u128, ns: u128) -> f64 {
    if ns == 0 {
        f64::INFINITY
    } else {
        assignments as f64 / (ns as f64 / 1e9)
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let rows = vec![
        measure("paper_2x2x2", &paper_space(), &paper_model(), 20),
        measure(
            "metacloud_972",
            &hybrid_metacloud_space(),
            &paper_model(),
            10,
        ),
        measure(
            "synthetic_6x6",
            &synthetic_space(6, 6),
            &synthetic_model(),
            5,
        ),
    ];

    let mut spaces = Vec::new();
    println!(
        "{:<16} {:>10} {:>14} {:>14} {:>14} {:>8}",
        "space", "variants", "naive ns", "fast ns", "parallel ns", "speedup"
    );
    for row in &rows {
        let speedup = row.naive_ns as f64 / row.fast_ns.max(1) as f64;
        println!(
            "{:<16} {:>10} {:>14} {:>14} {:>14} {:>7.1}x",
            row.name, row.assignments, row.naive_ns, row.fast_ns, row.parallel_ns, speedup
        );
        spaces.push(serde_json::json!({
            "name": row.name,
            "assignments": row.assignments as u64,
            "naive": {
                "total_ns": row.naive_ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, row.naive_ns),
            },
            "fast": {
                "total_ns": row.fast_ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, row.fast_ns),
            },
            "parallel": {
                "total_ns": row.parallel_ns as u64,
                "variants_per_sec": variants_per_sec(row.assignments, row.parallel_ns),
            },
            "speedup_fast_vs_naive": speedup,
            "obs": row.spans,
        }));
    }

    let synthetic = rows
        .iter()
        .find(|r| r.name == "synthetic_6x6")
        .expect("synthetic row present");
    let synthetic_speedup = synthetic.naive_ns as f64 / synthetic.fast_ns.max(1) as f64;
    let target_met = synthetic_speedup >= 10.0;
    if !target_met {
        eprintln!("warning: synthetic 6x6 speedup {synthetic_speedup:.1}x below the 10x target");
    }

    // No-op-recorder overhead on the hot engine: instrumented search with
    // the no-op recorder vs the plain search, on the widest space.
    let noop_overhead_pct =
        (synthetic.fast_noop_ns as f64 / synthetic.fast_ns.max(1) as f64 - 1.0) * 100.0;
    if noop_overhead_pct > 5.0 {
        eprintln!("warning: no-op recorder overhead {noop_overhead_pct:.1}% exceeds the 5% budget");
    }

    let report = serde_json::json!({
        "benchmark": "BENCH_PR2",
        "description": "naive per-assignment evaluation vs factorized incremental engine",
        "spaces": spaces,
        "synthetic_6x6_speedup": synthetic_speedup,
        "meets_10x_target": target_met,
        "noop_recorder_overhead_pct": noop_overhead_pct,
    });
    let rendered = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, rendered).expect("write benchmark report");
    println!("wrote {out_path}");
}
