//! Shared workload builders for the reproduction harness and Criterion
//! benches. Each function corresponds to an experiment row in DESIGN.md's
//! experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use uptime_broker::{BrokerService, SolutionRequest};
use uptime_catalog::{case_study, extended, CatalogStore, CloudId, ComponentKind, HaMethodId};
use uptime_core::{
    ClusterSpec, FailuresPerYear, Minutes, MoneyPerMonth, PenaltyClause, Probability, SlaTarget,
    SystemSpec, TcoModel,
};
use uptime_optimizer::{Candidate, ComponentChoices, SearchSpace};

/// The paper's catalog (three tiers, two HA choices each).
#[must_use]
pub fn paper_catalog() -> CatalogStore {
    case_study::catalog()
}

/// The paper's contract (98 % SLA, $100/h, ceiling rounding).
#[must_use]
pub fn paper_model() -> TcoModel {
    case_study::tco_model()
}

/// The paper's cloud id.
#[must_use]
pub fn paper_cloud() -> CloudId {
    case_study::cloud_id()
}

/// The paper's `2^3` search space.
///
/// # Panics
///
/// Panics only if the built-in catalog is inconsistent (it is tested).
#[must_use]
pub fn paper_space() -> SearchSpace {
    SearchSpace::from_catalog(
        &paper_catalog(),
        &paper_cloud(),
        &ComponentKind::paper_tiers(),
    )
    .expect("built-in catalog is complete")
}

/// The paper's intake request, including the Fig. 3 as-is declaration.
///
/// # Panics
///
/// Panics only if the built-in constants are invalid (they are tested).
#[must_use]
pub fn paper_request() -> SolutionRequest {
    SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(case_study::SLA_PERCENT)
        .expect("constant")
        .penalty_per_hour(case_study::PENALTY_PER_HOUR)
        .expect("constant")
        .cloud(paper_cloud())
        .as_is(vec![
            HaMethodId::new("vmware-ha-3p1"),
            HaMethodId::new("raid1"),
            HaMethodId::new("dual-gw"),
        ])
        .build()
        .expect("constant request is valid")
}

/// A broker fronting the paper's catalog.
#[must_use]
pub fn paper_broker() -> BrokerService {
    BrokerService::new(paper_catalog())
}

/// Materializes the [`SystemSpec`] of one case-study assignment
/// (`[compute, storage, network]`, 0 = no HA, 1 = the paper's HA method).
///
/// # Panics
///
/// Panics on an out-of-range assignment.
#[must_use]
pub fn option_system(assignment: &[usize]) -> SystemSpec {
    let space = paper_space();
    let clusters: Vec<ClusterSpec> = assignment
        .iter()
        .zip(space.components())
        .map(|(&idx, comp)| comp.candidates()[idx].cluster().clone())
        .collect();
    SystemSpec::new(clusters).expect("three clusters")
}

/// The metacloud joint space over the extended hybrid catalog: per paper
/// tier, one candidate for every `(cloud, HA method)` pair the knowledge
/// base can host — the same space `recommend_metacloud` searches
/// (9 × 12 × 9 = 972 assignments).
///
/// # Panics
///
/// Panics only if the built-in hybrid catalog is inconsistent (it is
/// tested).
#[must_use]
pub fn hybrid_metacloud_space() -> SearchSpace {
    let catalog = extended::hybrid_catalog();
    let clouds: Vec<CloudId> = catalog.cloud_ids().cloned().collect();
    let components = ComponentKind::paper_tiers()
        .iter()
        .map(|kind| {
            let mut candidates = Vec::new();
            for cloud in &clouds {
                let profile = catalog.cloud(cloud).expect("listed cloud exists");
                if profile.reliability(*kind).is_none() {
                    continue;
                }
                for method in catalog.methods_for(*kind) {
                    let Ok(cluster) = catalog.cluster_spec(cloud, *kind, method.id()) else {
                        continue;
                    };
                    let Ok(quote) = catalog.quote(cloud, method.id()) else {
                        continue;
                    };
                    candidates.push(Candidate::new(
                        format!("{}@{}", method.display_name(), cloud),
                        cluster,
                        quote.total(),
                        method.is_none(),
                    ));
                }
            }
            ComponentChoices::new(kind.label(), candidates).expect("every tier is hostable")
        })
        .collect();
    SearchSpace::new(components).expect("three tiers")
}

/// A synthetic space with `n` components and `k` choices each, used by the
/// §III.C complexity experiments. Deterministic for a given `(n, k)`.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
#[must_use]
pub fn synthetic_space(n: usize, k: usize) -> SearchSpace {
    assert!(n > 0 && k > 0, "need at least one component and choice");
    let components = (0..n)
        .map(|i| {
            let p = 0.01 + 0.01 * (i % 5) as f64;
            let mut candidates = vec![Candidate::new(
                "none",
                ClusterSpec::singleton(format!("c{i}"), Probability::new(p).expect("small"), 1.0)
                    .expect("valid"),
                MoneyPerMonth::ZERO,
                true,
            )];
            for level in 1..k {
                let cluster = ClusterSpec::builder(format!("c{i}-ha{level}"))
                    .total_nodes(1 + level as u32)
                    .standby_budget(level as u32)
                    .node_down_probability(Probability::new(p).expect("small"))
                    .failures_per_year(FailuresPerYear::new(1.0).expect("valid"))
                    .failover_time(Minutes::new(1.0).expect("valid"))
                    .build()
                    .expect("valid shape");
                candidates.push(Candidate::new(
                    format!("ha{level}"),
                    cluster,
                    MoneyPerMonth::new(200.0 * level as f64 + 50.0 * i as f64).expect("valid"),
                    false,
                ));
            }
            ComponentChoices::new(format!("comp{i}"), candidates).expect("non-empty")
        })
        .collect();
    SearchSpace::new(components).expect("non-empty")
}

/// A synthetic TCO model matching the paper's contract shape.
///
/// # Panics
///
/// Never in practice — constants are valid.
#[must_use]
pub fn synthetic_model() -> TcoModel {
    TcoModel::new(
        SlaTarget::from_percent(98.0).expect("constant"),
        PenaltyClause::per_hour(100.0).expect("constant"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_is_2_cubed() {
        assert_eq!(paper_space().assignment_count(), 8);
    }

    #[test]
    fn option_systems_have_three_clusters() {
        for assignment in [[0, 0, 0], [1, 1, 1], [0, 1, 0]] {
            assert_eq!(option_system(&assignment).len(), 3);
        }
    }

    #[test]
    fn synthetic_space_dimensions() {
        let s = synthetic_space(4, 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.assignment_count(), 81);
        assert!(s.baseline_assignment().is_some());
    }

    #[test]
    fn hybrid_metacloud_space_is_972_wide() {
        let s = hybrid_metacloud_space();
        assert_eq!(s.len(), 3);
        assert_eq!(s.assignment_count(), 9 * 12 * 9);
    }

    #[test]
    fn paper_request_builds() {
        let r = paper_request();
        assert_eq!(r.tiers().len(), 3);
        assert!(r.as_is().is_some());
    }
}
