//! Scale regression for the parallel search (ISSUE PR 2 satellite).
//!
//! The pre-PR-2 `parallel::search_with_threads` collected **every**
//! assignment into a `Vec<Vec<usize>>` before spawning workers, so memory
//! grew with `k^n` even when the caller only wanted the argmin. The
//! streaming sharder must complete a 6⁶ (46 656-variant) space while
//! holding only per-worker cursor state plus the single winning
//! evaluation.

use uptime_bench::{synthetic_model, synthetic_space};
use uptime_optimizer::{fast, parallel, Objective};

/// Peak RSS of this process in kilobytes, from `/proc/self/status`
/// (`VmHWM`). Returns `None` off Linux so the functional assertions still
/// run everywhere.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn six_to_the_sixth_completes_streaming_with_bounded_memory() {
    let space = synthetic_space(6, 6);
    let model = synthetic_model();
    assert_eq!(space.assignment_count(), 46_656);

    let outcome = parallel::search_best_with_threads(&space, &model, Objective::MinTco, 4);
    assert_eq!(outcome.stats().evaluated, 46_656);
    assert_eq!(
        outcome.evaluations().len(),
        1,
        "streaming search must keep only the winner"
    );

    // Sharded streaming agrees with the serial streaming argmin.
    let serial = fast::search(&space, &model, Objective::MinTco);
    assert_eq!(outcome.best().unwrap(), serial.best().unwrap());

    // The whole test binary — space construction included — must stay far
    // below what materializing 6⁶ evaluation reports would cost. The bound
    // is deliberately loose (CI machines differ); the old implementation's
    // O(k^n) buffers are the regression being guarded.
    if let Some(kb) = peak_rss_kb() {
        assert!(kb < 262_144, "peak RSS {kb} kB exceeds 256 MiB bound");
    }
}

#[test]
fn six_to_the_sixth_thread_counts_agree() {
    let space = synthetic_space(6, 6);
    let model = synthetic_model();
    let reference = parallel::search_best_with_threads(&space, &model, Objective::MinTco, 1);
    for threads in [0, 3, 16, 1000] {
        let outcome =
            parallel::search_best_with_threads(&space, &model, Objective::MinTco, threads);
        assert_eq!(
            outcome.best().unwrap(),
            reference.best().unwrap(),
            "threads = {threads}"
        );
        assert_eq!(outcome.stats().evaluated, 46_656, "threads = {threads}");
    }
}
