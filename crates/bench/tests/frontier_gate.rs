//! The PR 9 bench gate's correctness half, as a test: on the synthetic
//! `6^6` space the branch-and-bound frontier must equal the naive
//! dominance sweep on every frontier coordinate and pick the same
//! (lexicographically-smallest) representative assignments.
//!
//! Full `Evaluation` equality is deliberately NOT asserted: derived
//! fields off the frontier axes (the failover probability, and penalty
//! terms downstream of it) are summed in a different order by the fast
//! path and may differ in the last ulp.

use uptime_bench::{synthetic_model, synthetic_space};
use uptime_optimizer::pareto_bnb;

#[test]
fn bnb_matches_naive_on_the_synthetic_6x6_space() {
    let space = synthetic_space(6, 6);
    let model = synthetic_model();
    let constraints = pareto_bnb::FrontierConstraints::NONE;
    let naive = pareto_bnb::naive_frontier(&space, &model, &constraints);
    let bnb = pareto_bnb::search(&space, &model, &constraints, 1e-9);
    assert!(!naive.is_empty());
    let key = |p: &uptime_optimizer::ParetoPoint| {
        (
            p.evaluation().assignment().to_vec(),
            p.ha_cost().value(),
            p.uptime().value(),
        )
    };
    let naive_keys: Vec<_> = naive.iter().map(key).collect();
    let bnb_keys: Vec<_> = bnb.points().iter().map(key).collect();
    assert_eq!(naive_keys, bnb_keys);
}
