//! The observability overhead budget: running the hot `fast` engine with
//! the no-op recorder must stay within 5% of the uninstrumented search.
//!
//! The instrumented wrapper's only cost with [`uptime_obs::NOOP`] is one
//! span guard (two `Instant::now` calls) and two no-op counter flushes per
//! search — nothing per variant — so the budget holds with a wide margin.
//! Best-of-N timing plus a retry loop keeps the check robust to scheduler
//! noise on shared CI runners.

use std::hint::black_box;
use std::time::Instant;

use uptime_bench::{synthetic_model, synthetic_space};
use uptime_optimizer::{fast, Objective};

fn best_of<T>(reps: u32, mut body: impl FnMut() -> T) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let out = body();
        best = best.min(start.elapsed().as_nanos());
        black_box(&out);
    }
    best
}

#[test]
fn noop_recorder_overhead_is_within_budget() {
    let space = synthetic_space(6, 6);
    let model = synthetic_model();

    // Results must be bit-identical before timing means anything.
    let plain = fast::search(&space, &model, Objective::MinTco);
    let recorded = fast::search_recorded(
        &space,
        &model,
        Objective::MinTco,
        &uptime_obs::NOOP,
        &uptime_obs::TraceSpan::disabled(),
    );
    assert_eq!(plain, recorded, "no-op instrumentation changed the result");

    // Warm-up, then up to three timing rounds: accept the first round
    // within budget, fail only if every round regresses past 5%.
    let _ = best_of(2, || fast::search(&space, &model, Objective::MinTco));
    let mut last_ratio = f64::NAN;
    for round in 0..3 {
        let plain_ns = best_of(5, || fast::search(&space, &model, Objective::MinTco));
        let noop_ns = best_of(5, || {
            fast::search_recorded(
                &space,
                &model,
                Objective::MinTco,
                &uptime_obs::NOOP,
                &uptime_obs::TraceSpan::disabled(),
            )
        });
        last_ratio = noop_ns as f64 / plain_ns.max(1) as f64;
        if last_ratio <= 1.05 {
            return;
        }
        eprintln!("round {round}: noop/plain ratio {last_ratio:.4}, retrying");
    }
    panic!("no-op recorder overhead exceeded 5% in every round (ratio {last_ratio:.4})");
}
