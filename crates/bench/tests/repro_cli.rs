//! Smoke tests for the `repro` reproduction binary.

use std::process::Command;

fn repro(mode: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg(mode)
        // Keep the complexity table small in debug-build smoke tests; the
        // real harness runs without the cap.
        .env("REPRO_MAX_SPACE", "20000")
        .output()
        .expect("repro binary runs")
}

#[test]
fn figures_regenerate_paper_tcos() {
    let output = repro("figures");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    for tco in [
        "$4300/mo", "$4000/mo", "$1250/mo", "$5900/mo", "$1350/mo", "$5500/mo", "$2850/mo",
        "$3550/mo",
    ] {
        assert!(text.contains(tco), "missing {tco}");
    }
    // The detailed tables carry the paper's broker-supplied columns.
    assert!(text.contains("P_i"));
    assert!(text.contains("f_i/yr"));
    assert!(text.contains("savings 62%"));
}

#[test]
fn complexity_table_shows_agreement() {
    let output = repro("complexity");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("exhaustive"));
    assert!(text.contains("yes"));
    assert!(!text.contains(" NO"), "all algorithms must agree:\n{text}");
}

#[test]
fn sweep_reports_crossovers() {
    let output = repro("sweep");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("crossovers"));
    assert!(text.contains("98.5"), "{text}");
}

#[test]
fn metacloud_beats_single_cloud() {
    let output = repro("metacloud");
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("metacloud"));
    assert!(text.contains("best single cloud"));
}

#[test]
fn unknown_mode_exits_2() {
    let output = repro("bogus");
    assert_eq!(output.status.code(), Some(2));
}
