//! Cloud identities and per-cloud profiles.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::component::ComponentKind;
use crate::pricing::RateCard;
use crate::reliability::ReliabilityRecord;

/// Identifier of a cloud provider within the broker's purview.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CloudId(String);

impl CloudId {
    /// Creates an id from a string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        CloudId(id.into())
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CloudId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CloudId {
    fn from(s: &str) -> Self {
        CloudId::new(s)
    }
}

/// Everything the broker knows about one cloud: its rate card and the
/// reliability of its IaaS components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudProfile {
    id: CloudId,
    display_name: String,
    rate_card: RateCard,
    reliability: BTreeMap<ComponentKind, ReliabilityRecord>,
}

impl CloudProfile {
    /// Creates a profile with an empty reliability map.
    pub fn new(
        id: impl Into<CloudId>,
        display_name: impl Into<String>,
        rate_card: RateCard,
    ) -> Self {
        CloudProfile {
            id: id.into(),
            display_name: display_name.into(),
            rate_card,
            reliability: BTreeMap::new(),
        }
    }

    /// The cloud id.
    #[must_use]
    pub fn id(&self) -> &CloudId {
        &self.id
    }

    /// Human-readable name.
    #[must_use]
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// The cloud's rate card.
    #[must_use]
    pub fn rate_card(&self) -> &RateCard {
        &self.rate_card
    }

    /// Mutable access to the rate card (for price updates).
    pub fn rate_card_mut(&mut self) -> &mut RateCard {
        &mut self.rate_card
    }

    /// Records (or replaces) a reliability observation for a component.
    pub fn set_reliability(&mut self, component: ComponentKind, record: ReliabilityRecord) {
        self.reliability.insert(component, record);
    }

    /// Merges a new observation into the existing record (evidence-weighted)
    /// or inserts it if none exists.
    pub fn absorb_reliability(&mut self, component: ComponentKind, record: ReliabilityRecord) {
        match self.reliability.get(&component) {
            Some(existing) => {
                let merged = existing.merge(&record);
                self.reliability.insert(component, merged);
            }
            None => {
                self.reliability.insert(component, record);
            }
        }
    }

    /// Looks up the reliability record for a component.
    #[must_use]
    pub fn reliability(&self, component: ComponentKind) -> Option<&ReliabilityRecord> {
        self.reliability.get(&component)
    }

    /// All components with reliability data.
    pub fn observed_components(&self) -> impl Iterator<Item = ComponentKind> + '_ {
        self.reliability.keys().copied()
    }
}

impl From<String> for CloudId {
    fn from(s: String) -> Self {
        CloudId(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{FailuresPerYear, Probability};

    fn rec(p: f64, f: f64) -> ReliabilityRecord {
        ReliabilityRecord::new(
            Probability::new(p).unwrap(),
            FailuresPerYear::new(f).unwrap(),
            50.0,
        )
    }

    fn profile() -> CloudProfile {
        CloudProfile::new("softlayer", "IBM SoftLayer", RateCard::new(30.0).unwrap())
    }

    #[test]
    fn id_conversions() {
        let id: CloudId = "aws-like".into();
        assert_eq!(id.as_str(), "aws-like");
        assert_eq!(id.to_string(), "aws-like");
        let id2: CloudId = String::from("x").into();
        assert_eq!(id2.as_str(), "x");
    }

    #[test]
    fn profile_reliability_roundtrip() {
        let mut p = profile();
        assert!(p.reliability(ComponentKind::Compute).is_none());
        p.set_reliability(ComponentKind::Compute, rec(0.01, 1.0));
        let got = p.reliability(ComponentKind::Compute).unwrap();
        assert_eq!(got.down_probability().value(), 0.01);
        assert_eq!(p.observed_components().count(), 1);
    }

    #[test]
    fn absorb_merges_existing() {
        let mut p = profile();
        p.set_reliability(ComponentKind::Storage, rec(0.02, 1.0));
        p.absorb_reliability(ComponentKind::Storage, rec(0.06, 3.0));
        let got = p.reliability(ComponentKind::Storage).unwrap();
        // Equal evidence: midpoint.
        assert!((got.down_probability().value() - 0.04).abs() < 1e-12);
        assert_eq!(got.node_years_observed(), 100.0);
    }

    #[test]
    fn absorb_inserts_when_absent() {
        let mut p = profile();
        p.absorb_reliability(ComponentKind::Cache, rec(0.03, 2.0));
        assert!(p.reliability(ComponentKind::Cache).is_some());
    }

    #[test]
    fn rate_card_mutation() {
        use crate::method::HaMethodId;
        use uptime_core::MoneyPerMonth;
        let mut p = profile();
        p.rate_card_mut()
            .set_price(
                HaMethodId::new("raid1"),
                MoneyPerMonth::new(100.0).unwrap(),
                0.05,
            )
            .unwrap();
        assert!(p.rate_card().quote(&HaMethodId::new("raid1")).is_some());
    }

    #[test]
    fn display_name_and_id() {
        let p = profile();
        assert_eq!(p.id().as_str(), "softlayer");
        assert_eq!(p.display_name(), "IBM SoftLayer");
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = profile();
        p.set_reliability(ComponentKind::Compute, rec(0.01, 1.0));
        let json = serde_json::to_string(&p).unwrap();
        let back: CloudProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
