//! Extended catalog for the paper's future-work scenarios (§V).
//!
//! Adds the HA strategies the paper names as follow-on work — OS clustering
//! for compute, software-defined storage (SDS) with clustered file systems,
//! storage I/O multipathing, and BGP over dual circuits for network — and
//! two more synthetic clouds so hybrid-brokerage scenarios exercise `k > 2`
//! choices per tier across more than one provider.
//!
//! Parameters are representative, not measured: they were chosen to keep
//! the relative ordering plausible (hot standby < warm < cold failover
//! latency; more redundancy costs more) and are documented here so that
//! experiments citing them are reproducible.

use uptime_core::{FailuresPerYear, Minutes, MoneyPerMonth, Probability};

use crate::cloud::{CloudId, CloudProfile};
use crate::component::ComponentKind;
use crate::method::{ClusterShape, HaMethod, HaMethodId, StandbyMode};
use crate::pricing::RateCard;
use crate::reliability::ReliabilityRecord;
use crate::store::CatalogStore;

/// OS-level clustering for compute (e.g. Pacemaker): 2 active + 1 standby,
/// warm, 2-minute failover.
#[must_use]
pub fn os_cluster() -> HaMethod {
    HaMethod::new(
        "os-cluster",
        "OS Clustering (2+1)",
        ComponentKind::Compute,
        ClusterShape::n_plus(2, 1),
        StandbyMode::Warm,
        Minutes::new(2.0).expect("constant"),
    )
}

/// Software-defined storage with a clustered file system: 2 active + 1
/// standby replica, hot, 10-second failover.
#[must_use]
pub fn sds_replicated() -> HaMethod {
    HaMethod::new(
        "sds-replicated",
        "SDS + Clustered FS (2+1)",
        ComponentKind::Storage,
        ClusterShape::n_plus(2, 1),
        StandbyMode::Hot,
        Minutes::from_seconds(10.0).expect("constant"),
    )
}

/// Storage I/O multipathing: dual paths, hot, 5-second failover.
#[must_use]
pub fn storage_multipath() -> HaMethod {
    HaMethod::new(
        "storage-multipath",
        "Storage I/O Multipathing",
        ComponentKind::Storage,
        ClusterShape::n_plus(1, 1),
        StandbyMode::Hot,
        Minutes::from_seconds(5.0).expect("constant"),
    )
}

/// BGP over dual circuits: dual gateways with routing convergence, warm,
/// 3-minute failover.
#[must_use]
pub fn bgp_dual_circuit() -> HaMethod {
    HaMethod::new(
        "bgp-dual-circuit",
        "BGP over Dual Circuits",
        ComponentKind::NetworkGateway,
        ClusterShape::n_plus(1, 1),
        StandbyMode::Warm,
        Minutes::new(3.0).expect("constant"),
    )
}

/// Synchronous database replica: 1 active + 1 warm standby, 90-second
/// promotion.
#[must_use]
pub fn db_sync_replica() -> HaMethod {
    HaMethod::new(
        "db-sync-replica",
        "DB Sync Replica (1+1)",
        ComponentKind::Database,
        ClusterShape::n_plus(1, 1),
        StandbyMode::Warm,
        Minutes::from_seconds(90.0).expect("constant"),
    )
}

/// Three-node database quorum (2-of-3 consensus): leader re-election in
/// ~5 seconds.
#[must_use]
pub fn db_quorum_3() -> HaMethod {
    HaMethod::new(
        "db-quorum-3",
        "DB Quorum (2+1)",
        ComponentKind::Database,
        ClusterShape::n_plus(2, 1),
        StandbyMode::Hot,
        Minutes::from_seconds(5.0).expect("constant"),
    )
}

/// Active-passive load-balancer pair with VRRP-style takeover in ~2 s.
#[must_use]
pub fn dual_load_balancer() -> HaMethod {
    HaMethod::new(
        "dual-lb",
        "Dual Load Balancer",
        ComponentKind::LoadBalancer,
        ClusterShape::n_plus(1, 1),
        StandbyMode::Hot,
        Minutes::from_seconds(2.0).expect("constant"),
    )
}

/// All extended (future-work) methods.
#[must_use]
pub fn methods() -> Vec<HaMethod> {
    vec![
        os_cluster(),
        sds_replicated(),
        storage_multipath(),
        bgp_dual_circuit(),
        db_sync_replica(),
        db_quorum_3(),
        dual_load_balancer(),
    ]
}

/// The five-tier enterprise chain used by the extended scenarios:
/// load balancer → compute → database → storage → network gateway.
#[must_use]
pub fn five_tiers() -> [ComponentKind; 5] {
    [
        ComponentKind::LoadBalancer,
        ComponentKind::Compute,
        ComponentKind::Database,
        ComponentKind::Storage,
        ComponentKind::NetworkGateway,
    ]
}

/// Id of the first synthetic alternative cloud.
#[must_use]
pub fn nimbus_id() -> CloudId {
    CloudId::new("nimbus")
}

/// Id of the second synthetic alternative cloud.
#[must_use]
pub fn stratus_id() -> CloudId {
    CloudId::new("stratus")
}

/// Builds the hybrid catalog: the case-study catalog plus the extended
/// methods (priced on SoftLayer too) plus two synthetic clouds with
/// different labor rates and component reliabilities.
///
/// With four choices for storage (none, RAID-1, SDS, multipath), three for
/// compute and three for network, the per-cloud search space grows to
/// `3 × 4 × 3 = 36` permutations.
#[must_use]
pub fn hybrid_catalog() -> CatalogStore {
    let mut store = crate::case_study::catalog();
    for m in methods() {
        store
            .register_method(m)
            .expect("ids are distinct from case study");
    }

    // Register the "no HA" baselines for the extra tiers.
    store
        .register_method(HaMethod::none(ComponentKind::Database))
        .expect("distinct id");
    store
        .register_method(HaMethod::none(ComponentKind::LoadBalancer))
        .expect("distinct id");

    // Price the extended methods on SoftLayer and add reliability for the
    // extra tiers.
    {
        let softlayer = crate::case_study::cloud_id();
        let profile = store
            .cloud_mut(&softlayer)
            .expect("case study registers softlayer");
        profile.set_reliability(ComponentKind::Database, rel(0.03, 1.5, 800.0));
        profile.set_reliability(ComponentKind::LoadBalancer, rel(0.01, 1.0, 800.0));
        let card = profile.rate_card_mut();
        set(card, "os-cluster", 800.0, 0.15);
        set(card, "sds-replicated", 400.0, 0.1);
        set(card, "storage-multipath", 150.0, 0.05);
        set(card, "bgp-dual-circuit", 700.0, 0.1);
        set(card, "db-sync-replica", 600.0, 0.1);
        set(card, "db-quorum-3", 1100.0, 0.15);
        set(card, "dual-lb", 250.0, 0.05);
    }

    // Nimbus: cheaper labor, slightly less reliable infrastructure.
    {
        let mut card = RateCard::new(22.0).expect("constant");
        set(&mut card, "vmware-ha-3p1", 1000.0, 0.2);
        set(&mut card, "raid1", 90.0, 0.05);
        set(&mut card, "dual-gw", 420.0, 0.1);
        set(&mut card, "os-cluster", 650.0, 0.15);
        set(&mut card, "sds-replicated", 340.0, 0.1);
        set(&mut card, "storage-multipath", 120.0, 0.05);
        set(&mut card, "bgp-dual-circuit", 560.0, 0.1);
        set(&mut card, "db-sync-replica", 480.0, 0.1);
        set(&mut card, "db-quorum-3", 880.0, 0.15);
        set(&mut card, "dual-lb", 200.0, 0.05);
        let mut profile = CloudProfile::new(nimbus_id(), "Nimbus Cloud", card);
        profile.set_reliability(ComponentKind::Compute, rel(0.015, 1.5, 400.0));
        profile.set_reliability(ComponentKind::Storage, rel(0.06, 2.5, 400.0));
        profile.set_reliability(ComponentKind::NetworkGateway, rel(0.025, 1.2, 400.0));
        profile.set_reliability(ComponentKind::Database, rel(0.04, 2.0, 300.0));
        profile.set_reliability(ComponentKind::LoadBalancer, rel(0.015, 1.2, 300.0));
        store.register_cloud(profile);
    }

    // Stratus: premium labor, more reliable infrastructure.
    {
        let mut card = RateCard::new(45.0).expect("constant");
        set(&mut card, "vmware-ha-3p1", 1500.0, 0.2);
        set(&mut card, "raid1", 130.0, 0.05);
        set(&mut card, "dual-gw", 620.0, 0.1);
        set(&mut card, "os-cluster", 950.0, 0.15);
        set(&mut card, "sds-replicated", 480.0, 0.1);
        set(&mut card, "storage-multipath", 180.0, 0.05);
        set(&mut card, "bgp-dual-circuit", 840.0, 0.1);
        set(&mut card, "db-sync-replica", 720.0, 0.1);
        set(&mut card, "db-quorum-3", 1300.0, 0.15);
        set(&mut card, "dual-lb", 310.0, 0.05);
        let mut profile = CloudProfile::new(stratus_id(), "Stratus Cloud", card);
        profile.set_reliability(ComponentKind::Compute, rel(0.006, 0.8, 600.0));
        profile.set_reliability(ComponentKind::Storage, rel(0.03, 1.5, 600.0));
        profile.set_reliability(ComponentKind::NetworkGateway, rel(0.012, 0.9, 600.0));
        profile.set_reliability(ComponentKind::Database, rel(0.02, 1.0, 500.0));
        profile.set_reliability(ComponentKind::LoadBalancer, rel(0.006, 0.8, 500.0));
        store.register_cloud(profile);
    }

    store
}

fn set(card: &mut RateCard, id: &str, iaas: f64, fte: f64) {
    card.set_price(
        HaMethodId::new(id),
        MoneyPerMonth::new(iaas).expect("constant"),
        fte,
    )
    .expect("constant FTE");
}

fn rel(p: f64, f: f64, evidence: f64) -> ReliabilityRecord {
    ReliabilityRecord::new(
        Probability::new(p).expect("constant"),
        FailuresPerYear::new(f).expect("constant"),
        evidence,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_methods_cover_future_work_list() {
        let ids: Vec<_> = methods()
            .iter()
            .map(|m| m.id().as_str().to_owned())
            .collect();
        assert_eq!(
            ids,
            vec![
                "os-cluster",
                "sds-replicated",
                "storage-multipath",
                "bgp-dual-circuit",
                "db-sync-replica",
                "db-quorum-3",
                "dual-lb",
            ]
        );
    }

    #[test]
    fn five_tier_chain_fully_supported_on_every_cloud() {
        let c = hybrid_catalog();
        let clouds: Vec<_> = c.cloud_ids().cloned().collect();
        for cloud in &clouds {
            let profile = c.cloud(cloud).unwrap();
            for kind in five_tiers() {
                assert!(profile.reliability(kind).is_some(), "{cloud}/{kind}");
                assert!(
                    !c.methods_for(kind).is_empty(),
                    "{cloud}/{kind} has no methods"
                );
            }
        }
        // Database has three choices (none, sync replica, quorum).
        assert_eq!(c.methods_for(ComponentKind::Database).len(), 3);
        assert_eq!(c.methods_for(ComponentKind::LoadBalancer).len(), 2);
    }

    #[test]
    fn sync_replica_beats_quorum_on_breakdown_availability() {
        let c = hybrid_catalog();
        let cloud = crate::case_study::cloud_id();
        let replica = c
            .cluster_spec(
                &cloud,
                ComponentKind::Database,
                &HaMethodId::new("db-sync-replica"),
            )
            .unwrap();
        let quorum = c
            .cluster_spec(
                &cloud,
                ComponentKind::Database,
                &HaMethodId::new("db-quorum-3"),
            )
            .unwrap();
        // A 1-of-2 pair loses service only when both nodes are down (≈ P²)
        // while a 2-of-3 quorum fails once *two* of three are down (≈ 3P²):
        // quorums buy consistency, not breakdown availability. Where the
        // quorum wins is failover latency (5 s hot re-election vs a 90 s
        // warm promotion).
        assert!(replica.availability() > quorum.availability());
        assert!(quorum.failover_time() < replica.failover_time());
    }

    #[test]
    fn hybrid_catalog_has_three_clouds() {
        let c = hybrid_catalog();
        let ids: Vec<_> = c.cloud_ids().map(CloudId::as_str).collect();
        assert_eq!(ids, vec!["nimbus", "softlayer", "stratus"]);
    }

    #[test]
    fn hybrid_choice_counts() {
        let c = hybrid_catalog();
        assert_eq!(c.methods_for(ComponentKind::Compute).len(), 3);
        assert_eq!(c.methods_for(ComponentKind::Storage).len(), 4);
        assert_eq!(c.methods_for(ComponentKind::NetworkGateway).len(), 3);
    }

    #[test]
    fn every_cloud_prices_every_non_none_method() {
        let c = hybrid_catalog();
        let clouds: Vec<_> = c.cloud_ids().cloned().collect();
        let methods: Vec<_> = c.methods().map(|m| (m.id().clone(), m.is_none())).collect();
        for cloud in &clouds {
            for (id, is_none) in &methods {
                let quote = c.quote(cloud, id);
                assert!(quote.is_ok(), "{cloud}/{id}: {quote:?}");
                if *is_none {
                    assert_eq!(quote.unwrap().total().value(), 0.0);
                }
            }
        }
    }

    #[test]
    fn every_cloud_has_reliability_for_paper_tiers() {
        let c = hybrid_catalog();
        let clouds: Vec<_> = c.cloud_ids().cloned().collect();
        for cloud in &clouds {
            let profile = c.cloud(cloud).unwrap();
            for kind in ComponentKind::paper_tiers() {
                assert!(profile.reliability(kind).is_some(), "{cloud}/{kind}");
            }
        }
    }

    #[test]
    fn stratus_is_more_reliable_than_nimbus() {
        let c = hybrid_catalog();
        let nimbus = c.cloud(&nimbus_id()).unwrap();
        let stratus = c.cloud(&stratus_id()).unwrap();
        for kind in ComponentKind::paper_tiers() {
            assert!(
                stratus.reliability(kind).unwrap().down_probability()
                    < nimbus.reliability(kind).unwrap().down_probability(),
                "{kind}"
            );
        }
    }

    #[test]
    fn hot_standby_methods_fail_over_faster_than_warm() {
        assert!(sds_replicated().failover_time() < os_cluster().failover_time());
        assert!(storage_multipath().failover_time() < bgp_dual_circuit().failover_time());
    }

    #[test]
    fn hybrid_catalog_still_reproduces_case_study_quotes() {
        let c = hybrid_catalog();
        let q = c
            .quote(&crate::case_study::cloud_id(), &HaMethodId::new("raid1"))
            .unwrap();
        assert!((q.total().value() - 350.0).abs() < 1.0);
    }
}
