//! Saving and loading the broker's knowledge base.
//!
//! A real brokered service accumulates `P_i`/`f_i`/`t_i` observations over
//! years (§II.C); the knowledge base must outlive the process. The store
//! serializes to a versioned JSON envelope so future schema changes can be
//! migrated explicitly instead of silently misread.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::store::CatalogStore;

/// Current envelope schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Errors from catalog persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistenceError {
    /// Filesystem I/O failed.
    Io(io::Error),
    /// The payload was not valid JSON for the envelope.
    Malformed(serde_json::Error),
    /// The envelope's schema version is not supported.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
}

impl fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistenceError::Io(e) => write!(f, "catalog i/o failed: {e}"),
            PersistenceError::Malformed(e) => write!(f, "catalog payload malformed: {e}"),
            PersistenceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported catalog schema version {found} (supported: {SCHEMA_VERSION})"
                )
            }
        }
    }
}

impl std::error::Error for PersistenceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistenceError::Io(e) => Some(e),
            PersistenceError::Malformed(e) => Some(e),
            PersistenceError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<io::Error> for PersistenceError {
    fn from(e: io::Error) -> Self {
        PersistenceError::Io(e)
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    schema_version: u32,
    catalog: CatalogStore,
}

/// Serializes a catalog to the versioned JSON envelope.
///
/// # Errors
///
/// Returns [`PersistenceError::Malformed`] if serialization fails (it
/// cannot for well-formed stores).
pub fn to_json(catalog: &CatalogStore) -> Result<String, PersistenceError> {
    serde_json::to_string_pretty(&Envelope {
        schema_version: SCHEMA_VERSION,
        catalog: catalog.clone(),
    })
    .map_err(PersistenceError::Malformed)
}

/// Parses a catalog from the versioned JSON envelope.
///
/// # Errors
///
/// * [`PersistenceError::Malformed`] for invalid JSON.
/// * [`PersistenceError::UnsupportedVersion`] for foreign versions.
pub fn from_json(payload: &str) -> Result<CatalogStore, PersistenceError> {
    let envelope: Envelope = serde_json::from_str(payload).map_err(PersistenceError::Malformed)?;
    if envelope.schema_version != SCHEMA_VERSION {
        return Err(PersistenceError::UnsupportedVersion {
            found: envelope.schema_version,
        });
    }
    Ok(envelope.catalog)
}

/// Writes a catalog to a file, atomically (write-to-temp then rename).
///
/// # Errors
///
/// Propagates filesystem and serialization failures.
pub fn save(catalog: &CatalogStore, path: impl AsRef<Path>) -> Result<(), PersistenceError> {
    let path = path.as_ref();
    let payload = to_json(catalog)?;
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, payload)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a catalog from a file.
///
/// # Errors
///
/// Propagates filesystem, parse, and version failures.
pub fn load(path: impl AsRef<Path>) -> Result<CatalogStore, PersistenceError> {
    let payload = fs::read_to_string(path)?;
    from_json(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study;

    #[test]
    fn json_roundtrip_preserves_catalog() {
        let catalog = case_study::catalog();
        let json = to_json(&catalog).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, catalog);
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("uptime-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.json");
        let catalog = crate::extended::hybrid_catalog();
        save(&catalog, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, catalog);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors() {
        let err = load("/nonexistent/uptime/catalog.json").unwrap_err();
        assert!(matches!(err, PersistenceError::Io(_)));
        assert!(err.to_string().contains("i/o failed"));
    }

    #[test]
    fn malformed_payload_rejected() {
        assert!(matches!(
            from_json("not json at all"),
            Err(PersistenceError::Malformed(_))
        ));
        assert!(matches!(
            from_json("{\"schema_version\": 1}"),
            Err(PersistenceError::Malformed(_))
        ));
    }

    #[test]
    fn foreign_version_rejected() {
        let catalog = case_study::catalog();
        let json = to_json(&catalog)
            .unwrap()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = from_json(&json).unwrap_err();
        assert!(matches!(
            err,
            PersistenceError::UnsupportedVersion { found: 99 }
        ));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn corrupted_payloads_never_panic() {
        // Deterministic fuzz: flip/truncate the valid payload in many ways
        // and require a clean Ok/Err — no panics, no UB.
        let base = to_json(&case_study::catalog()).unwrap();
        let bytes = base.as_bytes();
        for cut in (0..base.len()).step_by(37) {
            let truncated = &base[..cut];
            let _ = from_json(truncated);
        }
        for i in (0..bytes.len()).step_by(53) {
            let mut mutated = bytes.to_vec();
            mutated[i] = mutated[i].wrapping_add(13);
            if let Ok(s) = std::str::from_utf8(&mutated) {
                let _ = from_json(s);
            }
        }
        for junk in [
            "",
            "{}",
            "[]",
            "null",
            "42",
            "\"x\"",
            "{\"schema_version\":1,\"catalog\":[]}",
        ] {
            assert!(from_json(junk).is_err(), "junk `{junk}` must not parse");
        }
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let err = load("/nonexistent/uptime/catalog.json").unwrap_err();
        assert!(err.source().is_some());
    }
}
