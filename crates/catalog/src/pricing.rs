//! Rate cards: the monthly price of engineering an HA construct.
//!
//! The paper prices `C_HA` as "monthly infrastructure cost of clustering on
//! the SoftLayer cloud plus the monthly labor (at $30/hour) to deploy and
//! sustain the HA layers", quoting labor in FTE fractions (e.g. "0.1 FTE").
//! The case-study tables imply one FTE-month ≈ 166.7 hours ($5000/month at
//! $30/h): `$500 IaaS + 0.1 FTE = $1K`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uptime_core::MoneyPerMonth;

use crate::error::CatalogError;
use crate::method::HaMethodId;

/// Working hours in one FTE-month (2000 h/year ÷ 12), matching the paper's
/// arithmetic ($30/h × 166.7 h × 0.1 FTE ≈ $500).
pub const FTE_HOURS_PER_MONTH: f64 = 2000.0 / 12.0;

/// An itemized monthly price for one HA method on one cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostQuote {
    iaas: MoneyPerMonth,
    labor_fte: f64,
    labor_rate_per_hour: f64,
}

impl CostQuote {
    /// Creates a quote from IaaS cost, labor FTE fraction and hourly rate.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Model`] for negative or non-finite labor
    /// values.
    pub fn new(
        iaas: MoneyPerMonth,
        labor_fte: f64,
        labor_rate_per_hour: f64,
    ) -> Result<Self, CatalogError> {
        for (what, value) in [
            ("labor FTE", labor_fte),
            ("labor rate", labor_rate_per_hour),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                return Err(CatalogError::Model(
                    uptime_core::ModelError::InvalidQuantity {
                        what: match what {
                            "labor FTE" => "labor FTE fraction",
                            _ => "labor hourly rate",
                        },
                        value,
                    },
                ));
            }
        }
        Ok(CostQuote {
            iaas,
            labor_fte,
            labor_rate_per_hour,
        })
    }

    /// A zero-cost quote (the "no HA" method).
    #[must_use]
    pub fn free() -> Self {
        CostQuote {
            iaas: MoneyPerMonth::ZERO,
            labor_fte: 0.0,
            labor_rate_per_hour: 0.0,
        }
    }

    /// Monthly IaaS infrastructure cost.
    #[must_use]
    pub fn iaas(&self) -> MoneyPerMonth {
        self.iaas
    }

    /// Labor commitment as a fraction of one FTE.
    #[must_use]
    pub fn labor_fte(&self) -> f64 {
        self.labor_fte
    }

    /// Monthly labor cost: `FTE × 166.7 h × rate`.
    #[must_use]
    pub fn labor(&self) -> MoneyPerMonth {
        MoneyPerMonth::new(self.labor_fte * FTE_HOURS_PER_MONTH * self.labor_rate_per_hour)
            .expect("validated non-negative inputs")
    }

    /// Total monthly cost `C_HA` = IaaS + labor.
    #[must_use]
    pub fn total(&self) -> MoneyPerMonth {
        self.iaas + self.labor()
    }
}

/// A cloud's rate card: prices per HA method plus the cloud's labor rate.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{HaMethodId, RateCard};
/// use uptime_core::MoneyPerMonth;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut card = RateCard::new(30.0)?;
/// card.set_price(HaMethodId::new("raid1"), MoneyPerMonth::new(100.0)?, 0.05)?;
/// let quote = card.quote(&HaMethodId::new("raid1")).unwrap();
/// assert!((quote.total().value() - 350.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateCard {
    labor_rate_per_hour: f64,
    prices: BTreeMap<HaMethodId, PriceEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PriceEntry {
    iaas: MoneyPerMonth,
    labor_fte: f64,
}

impl RateCard {
    /// Creates an empty rate card with the given labor rate.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Model`] for a negative or non-finite rate.
    pub fn new(labor_rate_per_hour: f64) -> Result<Self, CatalogError> {
        if !(labor_rate_per_hour.is_finite() && labor_rate_per_hour >= 0.0) {
            return Err(CatalogError::Model(
                uptime_core::ModelError::InvalidQuantity {
                    what: "labor hourly rate",
                    value: labor_rate_per_hour,
                },
            ));
        }
        Ok(RateCard {
            labor_rate_per_hour,
            prices: BTreeMap::new(),
        })
    }

    /// The cloud's hourly labor rate.
    #[must_use]
    pub fn labor_rate_per_hour(&self) -> f64 {
        self.labor_rate_per_hour
    }

    /// Registers (or replaces) the price of an HA method.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Model`] for an invalid FTE fraction.
    pub fn set_price(
        &mut self,
        method: HaMethodId,
        iaas: MoneyPerMonth,
        labor_fte: f64,
    ) -> Result<(), CatalogError> {
        if !(labor_fte.is_finite() && labor_fte >= 0.0) {
            return Err(CatalogError::Model(
                uptime_core::ModelError::InvalidQuantity {
                    what: "labor FTE fraction",
                    value: labor_fte,
                },
            ));
        }
        self.prices.insert(method, PriceEntry { iaas, labor_fte });
        Ok(())
    }

    /// Looks up the quote for a method, if priced on this cloud.
    #[must_use]
    pub fn quote(&self, method: &HaMethodId) -> Option<CostQuote> {
        self.prices.get(method).map(|e| CostQuote {
            iaas: e.iaas,
            labor_fte: e.labor_fte,
            labor_rate_per_hour: self.labor_rate_per_hour,
        })
    }

    /// Methods priced on this card.
    pub fn priced_methods(&self) -> impl Iterator<Item = &HaMethodId> {
        self.prices.keys()
    }

    /// Number of priced methods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the card has no prices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn money(v: f64) -> MoneyPerMonth {
        MoneyPerMonth::new(v).unwrap()
    }

    #[test]
    fn fte_constant_matches_paper_arithmetic() {
        // 0.1 FTE at $30/h must come to ~$500/month.
        let labor = 0.1 * FTE_HOURS_PER_MONTH * 30.0;
        assert!((labor - 500.0).abs() < 1.0, "got {labor}");
    }

    #[test]
    fn paper_quotes() {
        // RAID-1: $100 IaaS + 0.05 FTE = $350.
        let raid = CostQuote::new(money(100.0), 0.05, 30.0).unwrap();
        assert!((raid.total().value() - 350.0).abs() < 1.0);
        // Dual GW: $500 IaaS + 0.1 FTE = $1000.
        let gw = CostQuote::new(money(500.0), 0.1, 30.0).unwrap();
        assert!((gw.total().value() - 1000.0).abs() < 1.0);
        // VMware: $1200 IaaS + 0.2 FTE = $2200.
        let vm = CostQuote::new(money(1200.0), 0.2, 30.0).unwrap();
        assert!((vm.total().value() - 2200.0).abs() < 1.0);
    }

    #[test]
    fn free_quote_is_zero() {
        let q = CostQuote::free();
        assert_eq!(q.total(), MoneyPerMonth::ZERO);
        assert_eq!(q.labor(), MoneyPerMonth::ZERO);
        assert_eq!(q.iaas(), MoneyPerMonth::ZERO);
        assert_eq!(q.labor_fte(), 0.0);
    }

    #[test]
    fn quote_validation() {
        assert!(CostQuote::new(money(1.0), -0.1, 30.0).is_err());
        assert!(CostQuote::new(money(1.0), 0.1, f64::NAN).is_err());
        assert!(CostQuote::new(money(1.0), 0.0, 0.0).is_ok());
    }

    #[test]
    fn rate_card_lookup() {
        let mut card = RateCard::new(30.0).unwrap();
        assert!(card.is_empty());
        card.set_price(HaMethodId::new("raid1"), money(100.0), 0.05)
            .unwrap();
        card.set_price(HaMethodId::new("dual-gw"), money(500.0), 0.1)
            .unwrap();
        assert_eq!(card.len(), 2);
        assert!(card.quote(&HaMethodId::new("nope")).is_none());
        let q = card.quote(&HaMethodId::new("raid1")).unwrap();
        assert!((q.total().value() - 350.0).abs() < 1.0);
        let methods: Vec<_> = card.priced_methods().map(HaMethodId::as_str).collect();
        assert_eq!(methods, vec!["dual-gw", "raid1"]);
    }

    #[test]
    fn rate_card_replaces_price() {
        let mut card = RateCard::new(30.0).unwrap();
        card.set_price(HaMethodId::new("raid1"), money(100.0), 0.05)
            .unwrap();
        card.set_price(HaMethodId::new("raid1"), money(200.0), 0.05)
            .unwrap();
        assert_eq!(card.len(), 1);
        assert_eq!(
            card.quote(&HaMethodId::new("raid1")).unwrap().iaas(),
            money(200.0)
        );
    }

    #[test]
    fn rate_card_validation() {
        assert!(RateCard::new(-1.0).is_err());
        assert!(RateCard::new(f64::INFINITY).is_err());
        let mut card = RateCard::new(10.0).unwrap();
        assert!(card
            .set_price(HaMethodId::new("x"), money(1.0), f64::NAN)
            .is_err());
    }

    #[test]
    fn different_labor_rates_change_totals() {
        let cheap = CostQuote::new(money(100.0), 0.1, 15.0).unwrap();
        let costly = CostQuote::new(money(100.0), 0.1, 60.0).unwrap();
        assert!(costly.total() > cheap.total());
        assert_eq!(cheap.iaas(), costly.iaas());
    }

    #[test]
    fn serde_roundtrip() {
        let mut card = RateCard::new(30.0).unwrap();
        card.set_price(HaMethodId::new("raid1"), money(100.0), 0.05)
            .unwrap();
        let json = serde_json::to_string(&card).unwrap();
        let back: RateCard = serde_json::from_str(&json).unwrap();
        assert_eq!(back, card);
    }
}
