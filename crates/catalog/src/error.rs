//! Catalog lookup and validation errors.

use std::fmt;

use crate::cloud::CloudId;
use crate::component::ComponentKind;
use crate::method::HaMethodId;

/// Errors from catalog queries and construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CatalogError {
    /// No HA method registered under the given id.
    UnknownMethod {
        /// The id that failed to resolve.
        id: HaMethodId,
    },
    /// No cloud registered under the given id.
    UnknownCloud {
        /// The id that failed to resolve.
        id: CloudId,
    },
    /// The cloud exists but carries no price for the method.
    MissingPrice {
        /// Cloud queried.
        cloud: CloudId,
        /// Method queried.
        method: HaMethodId,
    },
    /// The cloud exists but has no reliability record for the component.
    MissingReliability {
        /// Cloud queried.
        cloud: CloudId,
        /// Component queried.
        component: ComponentKind,
    },
    /// An HA method was applied to a component kind it does not support.
    MethodNotApplicable {
        /// Method in question.
        method: HaMethodId,
        /// Component it was applied to.
        component: ComponentKind,
    },
    /// A method id was registered twice.
    DuplicateMethod {
        /// The duplicated id.
        id: HaMethodId,
    },
    /// Underlying model-parameter validation failed.
    Model(uptime_core::ModelError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownMethod { id } => write!(f, "unknown HA method `{id}`"),
            CatalogError::UnknownCloud { id } => write!(f, "unknown cloud `{id}`"),
            CatalogError::MissingPrice { cloud, method } => {
                write!(
                    f,
                    "cloud `{cloud}` has no rate card entry for method `{method}`"
                )
            }
            CatalogError::MissingReliability { cloud, component } => {
                write!(
                    f,
                    "cloud `{cloud}` has no reliability record for {component}"
                )
            }
            CatalogError::MethodNotApplicable { method, component } => {
                write!(f, "HA method `{method}` is not applicable to {component}")
            }
            CatalogError::DuplicateMethod { id } => {
                write!(f, "HA method `{id}` registered twice")
            }
            CatalogError::Model(err) => write!(f, "model parameter invalid: {err}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<uptime_core::ModelError> for CatalogError {
    fn from(err: uptime_core::ModelError) -> Self {
        CatalogError::Model(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_identifiers() {
        let err = CatalogError::MissingPrice {
            cloud: CloudId::new("softlayer"),
            method: HaMethodId::new("raid1"),
        };
        let msg = err.to_string();
        assert!(msg.contains("softlayer"));
        assert!(msg.contains("raid1"));
    }

    #[test]
    fn model_error_is_wrapped_with_source() {
        use std::error::Error;
        let inner = uptime_core::ModelError::EmptySystem;
        let err = CatalogError::from(inner.clone());
        assert!(err.source().is_some());
        assert!(err.to_string().contains("at least one cluster"));
        assert_eq!(err, CatalogError::Model(inner));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<CatalogError>();
    }
}
