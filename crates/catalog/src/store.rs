//! The assembled catalog: methods + clouds, with combined queries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uptime_core::ClusterSpec;

use crate::cloud::{CloudId, CloudProfile};
use crate::component::ComponentKind;
use crate::error::CatalogError;
use crate::method::{HaMethod, HaMethodId};
use crate::pricing::CostQuote;

/// The broker's complete knowledge base: every registered HA method and
/// every cloud profile, with the combined queries the optimizer needs.
///
/// # Examples
///
/// ```
/// use uptime_catalog::case_study;
///
/// let catalog = case_study::catalog();
/// // Enumerate the per-tier choice sets the optimizer will search over.
/// for kind in uptime_catalog::ComponentKind::paper_tiers() {
///     let methods = catalog.methods_for(kind);
///     assert_eq!(methods.len(), 2, "paper has k = 2 choices per tier");
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CatalogStore {
    methods: BTreeMap<HaMethodId, HaMethod>,
    clouds: BTreeMap<CloudId, CloudProfile>,
}

impl CatalogStore {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        CatalogStore::default()
    }

    /// Registers an HA method.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateMethod`] if the id is taken.
    pub fn register_method(&mut self, method: HaMethod) -> Result<(), CatalogError> {
        if self.methods.contains_key(method.id()) {
            return Err(CatalogError::DuplicateMethod {
                id: method.id().clone(),
            });
        }
        self.methods.insert(method.id().clone(), method);
        Ok(())
    }

    /// Registers (or replaces) a cloud profile.
    pub fn register_cloud(&mut self, profile: CloudProfile) {
        self.clouds.insert(profile.id().clone(), profile);
    }

    /// Looks up a method by id.
    #[must_use]
    pub fn method(&self, id: impl Into<HaMethodId>) -> Option<&HaMethod> {
        self.methods.get(&id.into())
    }

    /// All methods applicable to a component kind, "no HA" first, then by id.
    #[must_use]
    pub fn methods_for(&self, kind: ComponentKind) -> Vec<&HaMethod> {
        let mut out: Vec<&HaMethod> = self
            .methods
            .values()
            .filter(|m| m.applies_to() == kind)
            .collect();
        out.sort_by_key(|m| (!m.is_none(), m.id().clone()));
        out
    }

    /// All registered methods.
    pub fn methods(&self) -> impl Iterator<Item = &HaMethod> {
        self.methods.values()
    }

    /// Looks up a cloud profile.
    #[must_use]
    pub fn cloud(&self, id: &CloudId) -> Option<&CloudProfile> {
        self.clouds.get(id)
    }

    /// Mutable access to a cloud profile (for telemetry absorption).
    pub fn cloud_mut(&mut self, id: &CloudId) -> Option<&mut CloudProfile> {
        self.clouds.get_mut(id)
    }

    /// All registered cloud ids.
    pub fn cloud_ids(&self) -> impl Iterator<Item = &CloudId> {
        self.clouds.keys()
    }

    /// Monthly `C_HA` for a method on a cloud. "No HA" methods are free
    /// even without a rate-card entry.
    ///
    /// # Errors
    ///
    /// * [`CatalogError::UnknownMethod`] / [`CatalogError::UnknownCloud`]
    ///   for unregistered ids.
    /// * [`CatalogError::MissingPrice`] when the cloud does not price the
    ///   method.
    pub fn quote(&self, cloud: &CloudId, method: &HaMethodId) -> Result<CostQuote, CatalogError> {
        let m = self
            .methods
            .get(method)
            .ok_or_else(|| CatalogError::UnknownMethod { id: method.clone() })?;
        let profile = self
            .clouds
            .get(cloud)
            .ok_or_else(|| CatalogError::UnknownCloud { id: cloud.clone() })?;
        if m.is_none() {
            return Ok(CostQuote::free());
        }
        profile
            .rate_card()
            .quote(method)
            .ok_or_else(|| CatalogError::MissingPrice {
                cloud: cloud.clone(),
                method: method.clone(),
            })
    }

    /// Materializes the [`ClusterSpec`] for applying `method` to `kind` on
    /// `cloud`, using the cloud's recorded reliability for that component.
    ///
    /// # Errors
    ///
    /// Lookup errors as in [`Self::quote`], plus
    /// [`CatalogError::MissingReliability`] when the cloud has no record
    /// for the component, and [`CatalogError::MethodNotApplicable`] when
    /// the method targets a different kind.
    pub fn cluster_spec(
        &self,
        cloud: &CloudId,
        kind: ComponentKind,
        method: &HaMethodId,
    ) -> Result<ClusterSpec, CatalogError> {
        let m = self
            .methods
            .get(method)
            .ok_or_else(|| CatalogError::UnknownMethod { id: method.clone() })?;
        let profile = self
            .clouds
            .get(cloud)
            .ok_or_else(|| CatalogError::UnknownCloud { id: cloud.clone() })?;
        let reliability = profile
            .reliability(kind)
            .ok_or(CatalogError::MissingReliability {
                cloud: cloud.clone(),
                component: kind,
            })?;
        m.to_cluster_spec(kind, reliability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::RateCard;
    use uptime_core::{FailuresPerYear, MoneyPerMonth, Probability};

    fn store() -> CatalogStore {
        let mut s = CatalogStore::new();
        s.register_method(HaMethod::none(ComponentKind::Storage))
            .unwrap();
        s.register_method(HaMethod::raid1()).unwrap();
        let mut card = RateCard::new(30.0).unwrap();
        card.set_price(
            HaMethodId::new("raid1"),
            MoneyPerMonth::new(100.0).unwrap(),
            0.05,
        )
        .unwrap();
        let mut profile = CloudProfile::new("softlayer", "IBM SoftLayer", card);
        profile.set_reliability(
            ComponentKind::Storage,
            crate::reliability::ReliabilityRecord::new(
                Probability::new(0.05).unwrap(),
                FailuresPerYear::new(2.0).unwrap(),
                100.0,
            ),
        );
        s.register_cloud(profile);
        s
    }

    #[test]
    fn duplicate_method_rejected() {
        let mut s = store();
        let err = s.register_method(HaMethod::raid1()).unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateMethod { .. }));
    }

    #[test]
    fn methods_for_orders_none_first() {
        let s = store();
        let methods = s.methods_for(ComponentKind::Storage);
        assert_eq!(methods.len(), 2);
        assert!(methods[0].is_none());
        assert_eq!(methods[1].id().as_str(), "raid1");
        assert!(s.methods_for(ComponentKind::Compute).is_empty());
    }

    #[test]
    fn quote_paper_raid1() {
        let s = store();
        let q = s
            .quote(&CloudId::new("softlayer"), &HaMethodId::new("raid1"))
            .unwrap();
        assert!((q.total().value() - 350.0).abs() < 1.0);
    }

    #[test]
    fn quote_none_is_free_without_entry() {
        let s = store();
        let q = s
            .quote(&CloudId::new("softlayer"), &HaMethodId::new("none-storage"))
            .unwrap();
        assert_eq!(q.total(), MoneyPerMonth::ZERO);
    }

    #[test]
    fn quote_error_paths() {
        let s = store();
        assert!(matches!(
            s.quote(&CloudId::new("softlayer"), &HaMethodId::new("ghost")),
            Err(CatalogError::UnknownMethod { .. })
        ));
        assert!(matches!(
            s.quote(&CloudId::new("ghost"), &HaMethodId::new("raid1")),
            Err(CatalogError::UnknownCloud { .. })
        ));
        // Method exists but unpriced on cloud: register another method.
        let mut s2 = store();
        s2.register_method(HaMethod::dual_gateway()).unwrap();
        assert!(matches!(
            s2.quote(&CloudId::new("softlayer"), &HaMethodId::new("dual-gw")),
            Err(CatalogError::MissingPrice { .. })
        ));
    }

    #[test]
    fn cluster_spec_materialization() {
        let s = store();
        let spec = s
            .cluster_spec(
                &CloudId::new("softlayer"),
                ComponentKind::Storage,
                &HaMethodId::new("raid1"),
            )
            .unwrap();
        assert_eq!(spec.total_nodes(), 2);
        assert_eq!(spec.node_down_probability().value(), 0.05);
        assert!((spec.availability().value() - 0.9975).abs() < 1e-12);
    }

    #[test]
    fn cluster_spec_missing_reliability() {
        let mut s = store();
        s.register_method(HaMethod::none(ComponentKind::Compute))
            .unwrap();
        let err = s
            .cluster_spec(
                &CloudId::new("softlayer"),
                ComponentKind::Compute,
                &HaMethodId::new("none-compute"),
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::MissingReliability { .. }));
    }

    #[test]
    fn cluster_spec_wrong_kind() {
        let s = store();
        let err = s
            .cluster_spec(
                &CloudId::new("softlayer"),
                ComponentKind::Compute,
                &HaMethodId::new("raid1"),
            )
            .unwrap_err();
        // Reliability for compute is missing first; register it to hit the
        // applicability check.
        assert!(matches!(err, CatalogError::MissingReliability { .. }));

        let mut s2 = store();
        s2.cloud_mut(&CloudId::new("softlayer"))
            .unwrap()
            .set_reliability(
                ComponentKind::Compute,
                crate::reliability::ReliabilityRecord::new(
                    Probability::new(0.01).unwrap(),
                    FailuresPerYear::new(1.0).unwrap(),
                    10.0,
                ),
            );
        let err2 = s2
            .cluster_spec(
                &CloudId::new("softlayer"),
                ComponentKind::Compute,
                &HaMethodId::new("raid1"),
            )
            .unwrap_err();
        assert!(matches!(err2, CatalogError::MethodNotApplicable { .. }));
    }

    #[test]
    fn cloud_ids_iterates() {
        let s = store();
        let ids: Vec<_> = s.cloud_ids().map(CloudId::as_str).collect();
        assert_eq!(ids, vec!["softlayer"]);
        assert_eq!(s.methods().count(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let s = store();
        let json = serde_json::to_string(&s).unwrap();
        let back: CatalogStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
