//! # uptime-catalog
//!
//! The broker's knowledge base. The paper (§II.C) argues that a hybrid
//! cloud broker "sits at a cross-cloud cross-customer vantage point" and can
//! therefore maintain:
//!
//! 1. the node down-probabilities `P_i` and yearly failure rates `f_i` of
//!    IaaS components across clouds,
//! 2. the failover latencies `t_i` of the HA technologies deployable on
//!    those clouds, and
//! 3. the rate-carded monthly price `C_HA` (infrastructure + labor) of each
//!    HA construct.
//!
//! This crate models that database: [`ComponentKind`]s, [`HaMethod`]s with
//! their cluster shape and standby mode, [`RateCard`]s, per-cloud
//! [`ReliabilityRecord`]s, and a [`CatalogStore`] tying them together. The
//! [`case_study`] module ships the paper's exact SoftLayer-flavoured data;
//! [`extended`] adds the future-work HA strategies (§V) and two more
//! synthetic clouds for hybrid-brokerage scenarios.
//!
//! # Example
//!
//! ```
//! use uptime_catalog::{case_study, ComponentKind};
//!
//! let catalog = case_study::catalog();
//! let cloud = case_study::cloud_id();
//! let methods = catalog.methods_for(ComponentKind::Storage);
//! assert!(methods.iter().any(|m| m.id().as_str() == "raid1"));
//! let raid1 = catalog.method("raid1").unwrap();
//! let cost = catalog.quote(&cloud, raid1.id()).unwrap();
//! assert_eq!(cost.total().value(), 350.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_study;
pub mod cloud;
pub mod component;
pub mod error;
pub mod extended;
pub mod method;
pub mod persistence;
pub mod pricing;
pub mod reliability;
pub mod store;

pub use cloud::{CloudId, CloudProfile};
pub use component::ComponentKind;
pub use error::CatalogError;
pub use method::{ClusterShape, HaMethod, HaMethodId, StandbyMode};
pub use persistence::PersistenceError;
pub use pricing::{CostQuote, RateCard, FTE_HOURS_PER_MONTH};
pub use reliability::ReliabilityRecord;
pub use store::CatalogStore;
