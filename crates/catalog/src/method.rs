//! HA method descriptors: the clustering technologies a broker can deploy.

use std::fmt;

use serde::{Deserialize, Serialize};
use uptime_core::{ClusterSpec, Minutes};

use crate::component::ComponentKind;
use crate::error::CatalogError;
use crate::reliability::ReliabilityRecord;

/// Identifier of an HA method within a catalog (e.g. `"raid1"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HaMethodId(String);

impl HaMethodId {
    /// Creates an id from a string-like value.
    pub fn new(id: impl Into<String>) -> Self {
        HaMethodId(id.into())
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HaMethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for HaMethodId {
    fn from(s: &str) -> Self {
        HaMethodId::new(s)
    }
}

/// The cluster topology an HA method engineers: `K` total nodes with a
/// standby budget of `K̂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterShape {
    /// Total node count `K`.
    pub total_nodes: u32,
    /// Standby budget `K̂` (tolerated simultaneous failures).
    pub standby_budget: u32,
}

impl ClusterShape {
    /// A single unclustered node.
    pub const SINGLETON: ClusterShape = ClusterShape {
        total_nodes: 1,
        standby_budget: 0,
    };

    /// `n + s` shape: `n` active nodes plus `s` standbys.
    #[must_use]
    pub fn n_plus(active: u32, standby: u32) -> Self {
        ClusterShape {
            total_nodes: active + standby,
            standby_budget: standby,
        }
    }

    /// Active node count `K − K̂`.
    #[must_use]
    pub fn active_nodes(self) -> u32 {
        self.total_nodes - self.standby_budget
    }
}

impl fmt::Display for ClusterShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.active_nodes(), self.standby_budget)
    }
}

/// How a standby node is kept, which determines failover latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StandbyMode {
    /// Standby runs in lockstep; failover is near-instant.
    Hot,
    /// Standby is booted but idle; failover takes seconds to minutes.
    Warm,
    /// Standby must be powered on; failover takes minutes.
    Cold,
    /// Not applicable (no standby — the "no HA" method).
    None,
}

impl fmt::Display for StandbyMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StandbyMode::Hot => "hot",
            StandbyMode::Warm => "warm",
            StandbyMode::Cold => "cold",
            StandbyMode::None => "none",
        };
        f.write_str(s)
    }
}

/// A deployable HA technology: its topology, failover behaviour, and the
/// component kinds it applies to.
///
/// # Examples
///
/// ```
/// use uptime_catalog::{ClusterShape, ComponentKind, HaMethod, StandbyMode};
/// use uptime_core::Minutes;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let raid1 = HaMethod::new(
///     "raid1",
///     "RAID-1 mirrored disks",
///     ComponentKind::Storage,
///     ClusterShape::n_plus(1, 1),
///     StandbyMode::Hot,
///     Minutes::from_seconds(30.0)?,
/// );
/// assert_eq!(raid1.shape().to_string(), "1+1");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaMethod {
    id: HaMethodId,
    display_name: String,
    applies_to: ComponentKind,
    shape: ClusterShape,
    standby_mode: StandbyMode,
    failover_time: Minutes,
}

impl HaMethod {
    /// Creates an HA method descriptor.
    pub fn new(
        id: impl Into<HaMethodId>,
        display_name: impl Into<String>,
        applies_to: ComponentKind,
        shape: ClusterShape,
        standby_mode: StandbyMode,
        failover_time: Minutes,
    ) -> Self {
        HaMethod {
            id: id.into(),
            display_name: display_name.into(),
            applies_to,
            shape,
            standby_mode,
            failover_time,
        }
    }

    /// The "no HA" pseudo-method for a component kind: a bare singleton
    /// with zero failover time and zero cost.
    #[must_use]
    pub fn none(applies_to: ComponentKind) -> Self {
        HaMethod {
            id: HaMethodId::new(format!("none-{}", applies_to.label())),
            display_name: "None".to_owned(),
            applies_to,
            shape: ClusterShape::SINGLETON,
            standby_mode: StandbyMode::None,
            failover_time: Minutes::ZERO,
        }
    }

    /// The method's identifier.
    #[must_use]
    pub fn id(&self) -> &HaMethodId {
        &self.id
    }

    /// Human-readable name (e.g. "VMware HA (3+1)").
    #[must_use]
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// The component kind this method clusters.
    #[must_use]
    pub fn applies_to(&self) -> ComponentKind {
        self.applies_to
    }

    /// The engineered cluster shape.
    #[must_use]
    pub fn shape(&self) -> ClusterShape {
        self.shape
    }

    /// The standby mode.
    #[must_use]
    pub fn standby_mode(&self) -> StandbyMode {
        self.standby_mode
    }

    /// Failover latency `t_i` in HA mode.
    #[must_use]
    pub fn failover_time(&self) -> Minutes {
        self.failover_time
    }

    /// Whether this is the "no HA" pseudo-method.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.standby_mode == StandbyMode::None
    }

    /// Materializes the [`ClusterSpec`] obtained by applying this method to
    /// a component with the given baseline reliability.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::MethodNotApplicable`] if `component` differs
    /// from [`Self::applies_to`], or a wrapped model error if the resulting
    /// spec is invalid.
    pub fn to_cluster_spec(
        &self,
        component: ComponentKind,
        reliability: &ReliabilityRecord,
    ) -> Result<ClusterSpec, CatalogError> {
        if component != self.applies_to {
            return Err(CatalogError::MethodNotApplicable {
                method: self.id.clone(),
                component,
            });
        }
        let spec = ClusterSpec::builder(format!("{}:{}", component.label(), self.id))
            .total_nodes(self.shape.total_nodes)
            .standby_budget(self.shape.standby_budget)
            .node_down_probability(reliability.down_probability())
            .failures_per_year(reliability.failures_per_year())
            .failover_time(self.failover_time)
            .build()?;
        Ok(spec)
    }
}

/// Convenience: the paper's three case-study methods.
impl HaMethod {
    /// VMware ESX HA, 3 active + 1 standby, 6-minute failover.
    #[must_use]
    pub fn vmware_ha_3_plus_1() -> Self {
        HaMethod::new(
            "vmware-ha-3p1",
            "VMware HA (3+1)",
            ComponentKind::Compute,
            ClusterShape::n_plus(3, 1),
            StandbyMode::Cold,
            Minutes::new(6.0).expect("constant"),
        )
    }

    /// RAID-1 disk mirroring, 30-second failover.
    #[must_use]
    pub fn raid1() -> Self {
        HaMethod::new(
            "raid1",
            "RAID 1",
            ComponentKind::Storage,
            ClusterShape::n_plus(1, 1),
            StandbyMode::Hot,
            Minutes::from_seconds(30.0).expect("constant"),
        )
    }

    /// Dual-node network gateway cluster, 1-minute failover.
    #[must_use]
    pub fn dual_gateway() -> Self {
        HaMethod::new(
            "dual-gw",
            "Dual Node GW Cluster",
            ComponentKind::NetworkGateway,
            ClusterShape::n_plus(1, 1),
            StandbyMode::Warm,
            Minutes::new(1.0).expect("constant"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uptime_core::{FailuresPerYear, Probability};

    fn reliability(p: f64, f: f64) -> ReliabilityRecord {
        ReliabilityRecord::new(
            Probability::new(p).unwrap(),
            FailuresPerYear::new(f).unwrap(),
            100.0,
        )
    }

    #[test]
    fn shape_arithmetic() {
        let s = ClusterShape::n_plus(3, 1);
        assert_eq!(s.total_nodes, 4);
        assert_eq!(s.standby_budget, 1);
        assert_eq!(s.active_nodes(), 3);
        assert_eq!(s.to_string(), "3+1");
        assert_eq!(ClusterShape::SINGLETON.active_nodes(), 1);
    }

    #[test]
    fn none_method_is_singleton_zero_failover() {
        let none = HaMethod::none(ComponentKind::Compute);
        assert!(none.is_none());
        assert_eq!(none.shape(), ClusterShape::SINGLETON);
        assert_eq!(none.failover_time(), Minutes::ZERO);
        assert_eq!(none.id().as_str(), "none-compute");
    }

    #[test]
    fn none_ids_distinct_per_kind() {
        let a = HaMethod::none(ComponentKind::Compute);
        let b = HaMethod::none(ComponentKind::Storage);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn to_cluster_spec_applies_shape_and_reliability() {
        let m = HaMethod::vmware_ha_3_plus_1();
        let spec = m
            .to_cluster_spec(ComponentKind::Compute, &reliability(0.01, 1.0))
            .unwrap();
        assert_eq!(spec.total_nodes(), 4);
        assert_eq!(spec.standby_budget(), 1);
        assert_eq!(spec.node_down_probability().value(), 0.01);
        assert_eq!(spec.failover_time().value(), 6.0);
        assert!(spec.name().contains("compute"));
    }

    #[test]
    fn to_cluster_spec_rejects_wrong_component() {
        let m = HaMethod::raid1();
        let err = m
            .to_cluster_spec(ComponentKind::Compute, &reliability(0.01, 1.0))
            .unwrap_err();
        assert!(matches!(err, CatalogError::MethodNotApplicable { .. }));
    }

    #[test]
    fn paper_methods_have_expected_parameters() {
        let vmware = HaMethod::vmware_ha_3_plus_1();
        assert_eq!(vmware.failover_time().value(), 6.0);
        assert_eq!(vmware.shape().to_string(), "3+1");

        let raid = HaMethod::raid1();
        assert_eq!(raid.failover_time().value(), 0.5);
        assert_eq!(raid.applies_to(), ComponentKind::Storage);

        let gw = HaMethod::dual_gateway();
        assert_eq!(gw.failover_time().value(), 1.0);
        assert_eq!(gw.applies_to(), ComponentKind::NetworkGateway);
    }

    #[test]
    fn standby_mode_display() {
        assert_eq!(StandbyMode::Hot.to_string(), "hot");
        assert_eq!(StandbyMode::Cold.to_string(), "cold");
        assert_eq!(StandbyMode::None.to_string(), "none");
    }

    #[test]
    fn method_id_conversions() {
        let id: HaMethodId = "raid1".into();
        assert_eq!(id.as_str(), "raid1");
        assert_eq!(id.to_string(), "raid1");
    }

    #[test]
    fn serde_roundtrip() {
        let m = HaMethod::dual_gateway();
        let json = serde_json::to_string(&m).unwrap();
        let back: HaMethod = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
