//! Per-component reliability records (`P_i`, `f_i`) and their aggregation.
//!
//! The broker accumulates these "across clouds across customers spanning a
//! long timeline" (paper §II.C). Records carry the number of node-years of
//! observation behind them so that merging weights by evidence and
//! consumers can discount thin data (paper §IV's skew concern).

use serde::{Deserialize, Serialize};
use uptime_core::{FailureDynamics, FailuresPerYear, Probability};

/// An observed `(P, f)` pair for one component kind on one cloud, with the
/// observation mass behind it.
///
/// # Examples
///
/// ```
/// use uptime_catalog::ReliabilityRecord;
/// use uptime_core::{FailuresPerYear, Probability};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let a = ReliabilityRecord::new(Probability::new(0.02)?, FailuresPerYear::new(1.0)?, 100.0);
/// let b = ReliabilityRecord::new(Probability::new(0.04)?, FailuresPerYear::new(3.0)?, 300.0);
/// let merged = a.merge(&b);
/// assert!((merged.down_probability().value() - 0.035).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityRecord {
    down_probability: Probability,
    failures_per_year: FailuresPerYear,
    node_years_observed: f64,
}

impl ReliabilityRecord {
    /// Creates a record. `node_years_observed` of zero denotes a prior or
    /// vendor-claimed figure with no direct evidence.
    #[must_use]
    pub fn new(
        down_probability: Probability,
        failures_per_year: FailuresPerYear,
        node_years_observed: f64,
    ) -> Self {
        ReliabilityRecord {
            down_probability,
            failures_per_year,
            node_years_observed: node_years_observed.max(0.0),
        }
    }

    /// Node down-probability `P`.
    #[must_use]
    pub fn down_probability(&self) -> Probability {
        self.down_probability
    }

    /// Yearly failure rate `f`.
    #[must_use]
    pub fn failures_per_year(&self) -> FailuresPerYear {
        self.failures_per_year
    }

    /// Node-years of telemetry behind this record.
    #[must_use]
    pub fn node_years_observed(&self) -> f64 {
        self.node_years_observed
    }

    /// Whether the record has enough observation mass to be trusted for
    /// contractual commitments (an arbitrary but explicit 10 node-year bar).
    #[must_use]
    pub fn is_well_evidenced(&self) -> bool {
        self.node_years_observed >= 10.0
    }

    /// Equivalent MTBF/MTTR dynamics, for simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`uptime_core::ModelError`] for contradictory parameters
    /// (see [`FailureDynamics::from_paper_params`]).
    pub fn dynamics(&self) -> Result<FailureDynamics, uptime_core::ModelError> {
        FailureDynamics::from_paper_params(self.down_probability, self.failures_per_year)
    }

    /// Evidence-weighted merge of two records. With zero total evidence the
    /// plain average is used.
    #[must_use]
    pub fn merge(&self, other: &ReliabilityRecord) -> ReliabilityRecord {
        let wa = self.node_years_observed;
        let wb = other.node_years_observed;
        let total = wa + wb;
        let (ca, cb) = if total > 0.0 {
            (wa / total, wb / total)
        } else {
            (0.5, 0.5)
        };
        ReliabilityRecord {
            down_probability: Probability::saturating(
                self.down_probability.value() * ca + other.down_probability.value() * cb,
            ),
            failures_per_year: FailuresPerYear::new(
                self.failures_per_year.value() * ca + other.failures_per_year.value() * cb,
            )
            .expect("convex combination of valid rates"),
            node_years_observed: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(p: f64, f: f64, w: f64) -> ReliabilityRecord {
        ReliabilityRecord::new(
            Probability::new(p).unwrap(),
            FailuresPerYear::new(f).unwrap(),
            w,
        )
    }

    #[test]
    fn accessors() {
        let r = rec(0.05, 2.0, 42.0);
        assert_eq!(r.down_probability().value(), 0.05);
        assert_eq!(r.failures_per_year().value(), 2.0);
        assert_eq!(r.node_years_observed(), 42.0);
        assert!(r.is_well_evidenced());
        assert!(!rec(0.05, 2.0, 9.9).is_well_evidenced());
    }

    #[test]
    fn negative_evidence_clamped() {
        assert_eq!(rec(0.1, 1.0, -5.0).node_years_observed(), 0.0);
    }

    #[test]
    fn merge_weights_by_evidence() {
        let a = rec(0.02, 1.0, 100.0);
        let b = rec(0.04, 3.0, 300.0);
        let m = a.merge(&b);
        assert!((m.down_probability().value() - 0.035).abs() < 1e-12);
        assert!((m.failures_per_year().value() - 2.5).abs() < 1e-12);
        assert_eq!(m.node_years_observed(), 400.0);
    }

    #[test]
    fn merge_with_zero_evidence_averages() {
        let a = rec(0.02, 1.0, 0.0);
        let b = rec(0.04, 3.0, 0.0);
        let m = a.merge(&b);
        assert!((m.down_probability().value() - 0.03).abs() < 1e-12);
        assert!((m.failures_per_year().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_commutative() {
        let a = rec(0.01, 1.0, 10.0);
        let b = rec(0.09, 5.0, 30.0);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_bounded_by_inputs() {
        let a = rec(0.01, 1.0, 10.0);
        let b = rec(0.09, 5.0, 30.0);
        let m = a.merge(&b);
        assert!(m.down_probability() >= a.down_probability());
        assert!(m.down_probability() <= b.down_probability());
    }

    #[test]
    fn dynamics_roundtrip() {
        let r = rec(0.05, 2.0, 1.0);
        let d = r.dynamics().unwrap();
        assert!((d.down_probability().value() - 0.05).abs() < 1e-12);
        assert!((d.failures_per_year().value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let r = rec(0.02, 1.0, 55.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: ReliabilityRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
