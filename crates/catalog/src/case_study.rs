//! The paper's §III client case study as a ready-made catalog.
//!
//! A three-tier system on the IBM SoftLayer cloud:
//!
//! | Tier | `P_i` | `f_i` | HA choice | `t_i` | `C_HA` |
//! |------|-------|-------|-----------|-------|--------|
//! | Compute | 1 % | 1/yr | VMware HA (3+1) | 6 min | $1200 IaaS + 0.2 FTE = $2200 |
//! | Storage | 5 % | 2/yr | RAID 1 | 30 s | $100 IaaS + 0.05 FTE = $350 |
//! | Network | 2 % | 1/yr | Dual Node GW Cluster | 1 min | $500 IaaS + 0.1 FTE = $1000 |
//!
//! Contract: 98 % uptime SLA, $100/hour slippage penalty, labor at $30/h.

use uptime_core::{
    FailuresPerYear, MoneyPerMonth, PenaltyClause, Probability, SlaTarget, TcoModel,
};

use crate::cloud::{CloudId, CloudProfile};
use crate::component::ComponentKind;
use crate::method::{HaMethod, HaMethodId};
use crate::pricing::RateCard;
use crate::reliability::ReliabilityRecord;
use crate::store::CatalogStore;

/// The case study's labor rate: $30/hour.
pub const LABOR_RATE_PER_HOUR: f64 = 30.0;

/// The case study's SLA slippage penalty: $100/hour.
pub const PENALTY_PER_HOUR: f64 = 100.0;

/// The case study's uptime SLA: 98 %.
pub const SLA_PERCENT: f64 = 98.0;

/// Id of the SoftLayer-like cloud in the case-study catalog.
#[must_use]
pub fn cloud_id() -> CloudId {
    CloudId::new("softlayer")
}

/// Builds the paper's catalog: three tiers, two HA choices each
/// (`k = 2`, `n = 3` → `2³ = 8` permutations), priced per the tables.
#[must_use]
pub fn catalog() -> CatalogStore {
    let mut store = CatalogStore::new();

    for kind in ComponentKind::paper_tiers() {
        store
            .register_method(HaMethod::none(kind))
            .expect("fresh store has no duplicates");
    }
    store
        .register_method(HaMethod::vmware_ha_3_plus_1())
        .expect("fresh store");
    store
        .register_method(HaMethod::raid1())
        .expect("fresh store");
    store
        .register_method(HaMethod::dual_gateway())
        .expect("fresh store");

    let mut card = RateCard::new(LABOR_RATE_PER_HOUR).expect("valid constant rate");
    card.set_price(
        HaMethodId::new("vmware-ha-3p1"),
        MoneyPerMonth::new(1200.0).expect("constant"),
        0.2,
    )
    .expect("valid FTE");
    card.set_price(
        HaMethodId::new("raid1"),
        MoneyPerMonth::new(100.0).expect("constant"),
        0.05,
    )
    .expect("valid FTE");
    card.set_price(
        HaMethodId::new("dual-gw"),
        MoneyPerMonth::new(500.0).expect("constant"),
        0.1,
    )
    .expect("valid FTE");

    let mut profile = CloudProfile::new(cloud_id(), "IBM SoftLayer", card);
    profile.set_reliability(ComponentKind::Compute, reliability(0.01, 1.0));
    profile.set_reliability(ComponentKind::Storage, reliability(0.05, 2.0));
    profile.set_reliability(ComponentKind::NetworkGateway, reliability(0.02, 1.0));
    store.register_cloud(profile);

    store
}

/// The case study's contract as a [`TcoModel`] (98 % SLA, $100/h penalty,
/// paper-matching ceiling rounding).
#[must_use]
pub fn tco_model() -> TcoModel {
    TcoModel::new(
        SlaTarget::from_percent(SLA_PERCENT).expect("constant within range"),
        PenaltyClause::per_hour(PENALTY_PER_HOUR).expect("constant non-negative"),
    )
}

fn reliability(p: f64, f: f64) -> ReliabilityRecord {
    ReliabilityRecord::new(
        Probability::new(p).expect("constant probability"),
        FailuresPerYear::new(f).expect("constant rate"),
        // The broker's SoftLayer history: a mature estate.
        1000.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_two_choices_per_tier() {
        let c = catalog();
        for kind in ComponentKind::paper_tiers() {
            assert_eq!(c.methods_for(kind).len(), 2, "{kind}");
        }
    }

    #[test]
    fn quotes_match_paper_tables() {
        let c = catalog();
        let cloud = cloud_id();
        let cases = [
            ("vmware-ha-3p1", 2200.0),
            ("raid1", 350.0),
            ("dual-gw", 1000.0),
            ("none-compute", 0.0),
            ("none-storage", 0.0),
            ("none-network-gateway", 0.0),
        ];
        for (id, expected) in cases {
            let q = c.quote(&cloud, &HaMethodId::new(id)).unwrap();
            assert!(
                (q.total().value() - expected).abs() < 1.0,
                "{id}: got {} want {expected}",
                q.total()
            );
        }
    }

    #[test]
    fn reliability_matches_paper_tables() {
        let c = catalog();
        let profile = c.cloud(&cloud_id()).unwrap();
        let cases = [
            (ComponentKind::Compute, 0.01, 1.0),
            (ComponentKind::Storage, 0.05, 2.0),
            (ComponentKind::NetworkGateway, 0.02, 1.0),
        ];
        for (kind, p, f) in cases {
            let r = profile.reliability(kind).unwrap();
            assert_eq!(r.down_probability().value(), p, "{kind}");
            assert_eq!(r.failures_per_year().value(), f, "{kind}");
            assert!(r.is_well_evidenced());
        }
    }

    #[test]
    fn cluster_specs_reproduce_paper_availabilities() {
        let c = catalog();
        let cloud = cloud_id();
        // Compute with VMware 3+1: 99.94 %.
        let spec = c
            .cluster_spec(
                &cloud,
                ComponentKind::Compute,
                &HaMethodId::new("vmware-ha-3p1"),
            )
            .unwrap();
        assert!((spec.availability().value() - 0.999408).abs() < 1e-5);
        // Storage RAID-1: 99.75 %.
        let spec = c
            .cluster_spec(&cloud, ComponentKind::Storage, &HaMethodId::new("raid1"))
            .unwrap();
        assert!((spec.availability().value() - 0.9975).abs() < 1e-12);
        // Network dual GW: 99.96 %.
        let spec = c
            .cluster_spec(
                &cloud,
                ComponentKind::NetworkGateway,
                &HaMethodId::new("dual-gw"),
            )
            .unwrap();
        assert!((spec.availability().value() - 0.9996).abs() < 1e-12);
    }

    #[test]
    fn tco_model_contract_values() {
        let m = tco_model();
        assert_eq!(m.sla().as_percent(), 98.0);
        assert!(
            matches!(m.penalty(), PenaltyClause::PerHour { rate } if *rate == PENALTY_PER_HOUR)
        );
    }
}
