//! IaaS component kinds a cloud-hosted system is assembled from.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of IaaS component a cluster provides.
///
/// The paper's case study uses a three-tier serial chain — compute, storage
/// and network gateway. The additional kinds let the hybrid-brokerage
/// scenarios model richer topologies without changing the math (the model
/// only cares about `K`, `K̂`, `P`, `f`, `t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ComponentKind {
    /// Virtual machines / hypervisor hosts running the application tier.
    Compute,
    /// Block or file storage backing the data tier.
    Storage,
    /// Network gateways fronting the system.
    NetworkGateway,
    /// Managed database service.
    Database,
    /// Load balancer tier.
    LoadBalancer,
    /// In-memory cache tier.
    Cache,
}

impl ComponentKind {
    /// All component kinds, in canonical order.
    #[must_use]
    pub fn all() -> &'static [ComponentKind] {
        &[
            ComponentKind::Compute,
            ComponentKind::Storage,
            ComponentKind::NetworkGateway,
            ComponentKind::Database,
            ComponentKind::LoadBalancer,
            ComponentKind::Cache,
        ]
    }

    /// The three kinds of the paper's case study, in serial order.
    #[must_use]
    pub fn paper_tiers() -> [ComponentKind; 3] {
        [
            ComponentKind::Compute,
            ComponentKind::Storage,
            ComponentKind::NetworkGateway,
        ]
    }

    /// A short lowercase label, stable across releases.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::Compute => "compute",
            ComponentKind::Storage => "storage",
            ComponentKind::NetworkGateway => "network-gateway",
            ComponentKind::Database => "database",
            ComponentKind::LoadBalancer => "load-balancer",
            ComponentKind::Cache => "cache",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = ComponentKind::all().iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn paper_tiers_order() {
        let [a, b, c] = ComponentKind::paper_tiers();
        assert_eq!(a, ComponentKind::Compute);
        assert_eq!(b, ComponentKind::Storage);
        assert_eq!(c, ComponentKind::NetworkGateway);
    }

    #[test]
    fn display_matches_label() {
        for k in ComponentKind::all() {
            assert_eq!(k.to_string(), k.label());
        }
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(ComponentKind::Compute, 1);
        m.insert(ComponentKind::Storage, 2);
        assert_eq!(m[&ComponentKind::Storage], 2);
    }

    #[test]
    fn serde_uses_variant_names() {
        let json = serde_json::to_string(&ComponentKind::NetworkGateway).unwrap();
        assert_eq!(json, "\"NetworkGateway\"");
        let back: ComponentKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ComponentKind::NetworkGateway);
    }
}
