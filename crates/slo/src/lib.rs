//! # uptime-slo
//!
//! A small declarative SLO language for the broker. The paper's broker
//! answers one question — "cheapest variant meeting one uptime target" —
//! but real clients negotiate several objectives at once: an uptime
//! floor, a monthly budget, and a failover-latency budget. This crate
//! parses that multi-objective contract from JSON into a validated
//! [`ObjectiveNode`] tree with typed [`SpecError`]s, and scores candidate
//! deployment points ([`PointMetrics`]) against it.
//!
//! The grammar (checked in at `schemas/slo_spec.schema.json`):
//!
//! ```json
//! {
//!   "epsilon": 1e-9,
//!   "objectives": [
//!     { "metric": "uptime",   "threshold": 99.0,   "mode": "hard" },
//!     { "metric": "cost",     "threshold": 2000.0, "mode": "soft", "weight": 2.0 },
//!     { "metric": "failover", "threshold": 5.0,    "mode": "soft" }
//!   ]
//! }
//! ```
//!
//! Threshold semantics per metric:
//!
//! | metric     | threshold means                                  | direction |
//! |------------|--------------------------------------------------|-----------|
//! | `uptime`   | minimum availability, **percent** (0, 100]       | ≥         |
//! | `cost`     | monthly HA-spend cap, $/month                    | ≤         |
//! | `failover` | expected failover downtime budget, minutes/month | ≤         |
//!
//! `hard` objectives are box constraints (infeasible points are excluded
//! from the frontier); `soft` objectives carry a finite non-negative
//! `weight` and contribute to [`SloSpec::soft_score`], a weighted sum of
//! relative violations used to rank frontier points. Unknown keys, NaN or
//! negative weights, and out-of-range thresholds are rejected with typed
//! errors — never panics.
//!
//! # Example
//!
//! ```
//! use uptime_slo::{PointMetrics, SloSpec};
//!
//! let spec = SloSpec::from_json_str(
//!     r#"{ "objectives": [
//!         { "metric": "uptime", "threshold": 98.0, "mode": "hard" },
//!         { "metric": "cost", "threshold": 1500.0, "mode": "soft" }
//!     ] }"#,
//! )
//! .unwrap();
//! assert_eq!(spec.uptime_target_percent(), 98.0);
//! let point = PointMetrics::new(1350.0, 0.9996, 2.0);
//! assert!(spec.hard_ok(&point));
//! assert_eq!(spec.soft_score(&point), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::Value;

/// Grammar revision embedded in serialized specs and fingerprints.
pub const SPEC_VERSION: u32 = 1;

/// Default epsilon-dominance margin when the spec does not set one.
pub const DEFAULT_EPSILON: f64 = 1e-9;

/// Which measurable quantity an objective constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloMetric {
    /// Availability floor; threshold is a percent in (0, 100].
    Uptime,
    /// Monthly HA-spend cap; threshold is $/month, ≥ 0.
    Cost,
    /// Expected failover downtime budget; threshold is minutes/month, ≥ 0.
    Failover,
}

impl SloMetric {
    /// The spec keyword for this metric.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SloMetric::Uptime => "uptime",
            SloMetric::Cost => "cost",
            SloMetric::Failover => "failover",
        }
    }

    /// Stable one-byte tag for fingerprinting.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            SloMetric::Uptime => 0,
            SloMetric::Cost => 1,
            SloMetric::Failover => 2,
        }
    }
}

impl fmt::Display for SloMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether an objective excludes points (`Hard`) or merely ranks them
/// (`Soft`, with a weight).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectiveMode {
    /// A box constraint: violating points are infeasible.
    Hard,
    /// A weighted preference folded into [`SloSpec::soft_score`].
    Soft,
}

impl ObjectiveMode {
    /// The spec keyword for this mode.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ObjectiveMode::Hard => "hard",
            ObjectiveMode::Soft => "soft",
        }
    }

    /// Stable one-byte tag for fingerprinting.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            ObjectiveMode::Hard => 0,
            ObjectiveMode::Soft => 1,
        }
    }
}

impl fmt::Display for ObjectiveMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One validated leaf objective.
#[derive(Clone, Debug, PartialEq)]
pub struct SloObjective {
    metric: SloMetric,
    threshold: f64,
    mode: ObjectiveMode,
    weight: f64,
}

impl SloObjective {
    /// The constrained metric.
    #[must_use]
    pub fn metric(&self) -> SloMetric {
        self.metric
    }

    /// The threshold, in the metric's native unit (see crate docs).
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Hard constraint or soft preference.
    #[must_use]
    pub fn mode(&self) -> ObjectiveMode {
        self.mode
    }

    /// Weight for soft objectives; `1.0` for hard ones (unused).
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// For uptime objectives, the threshold as an availability fraction.
    #[must_use]
    pub fn uptime_fraction(&self) -> Option<f64> {
        (self.metric == SloMetric::Uptime).then(|| self.threshold / 100.0)
    }

    /// How far `point` overshoots this objective, as a dimensionless
    /// relative violation (`0.0` when satisfied).
    ///
    /// Uptime violations are scaled by the *allowed downtime budget*
    /// `1 − target`, so "promised three nines, delivered two" scores
    /// much worse than a hair-thin miss; cost and failover violations
    /// are scaled by their own threshold.
    #[must_use]
    pub fn violation(&self, point: &PointMetrics) -> f64 {
        match self.metric {
            SloMetric::Uptime => {
                let target = self.threshold / 100.0;
                let short = (target - point.uptime).max(0.0);
                short / (1.0 - target).max(1e-9)
            }
            SloMetric::Cost => {
                (point.cost_per_month - self.threshold).max(0.0) / self.threshold.max(1.0)
            }
            SloMetric::Failover => {
                (point.failover_minutes_per_month - self.threshold).max(0.0)
                    / self.threshold.max(1.0)
            }
        }
    }

    /// Whether `point` satisfies this objective's threshold exactly
    /// (no epsilon slack — feasibility is crisp).
    #[must_use]
    pub fn is_met_by(&self, point: &PointMetrics) -> bool {
        match self.metric {
            SloMetric::Uptime => point.uptime >= self.threshold / 100.0,
            SloMetric::Cost => point.cost_per_month <= self.threshold,
            SloMetric::Failover => point.failover_minutes_per_month <= self.threshold,
        }
    }
}

/// The objective tree. The JSON grammar is a flat conjunction today, so
/// parsed specs always have an [`ObjectiveNode::All`] root over
/// [`ObjectiveNode::Leaf`] children, but consumers should walk the tree
/// (via [`ObjectiveNode::leaves`]) rather than assume that shape — future
/// grammar revisions may nest `any_of` groups.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjectiveNode {
    /// Conjunction: every child must hold / all soft children score.
    All(Vec<ObjectiveNode>),
    /// A single objective.
    Leaf(SloObjective),
}

impl ObjectiveNode {
    /// Every leaf objective under this node, in spec order.
    #[must_use]
    pub fn leaves(&self) -> Vec<&SloObjective> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a SloObjective>) {
        match self {
            ObjectiveNode::All(children) => {
                for child in children {
                    child.collect(out);
                }
            }
            ObjectiveNode::Leaf(obj) => out.push(obj),
        }
    }
}

/// The measured coordinates of one candidate deployment point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointMetrics {
    /// Monthly HA spend, $/month.
    pub cost_per_month: f64,
    /// Availability as a fraction in [0, 1].
    pub uptime: f64,
    /// Expected failover downtime, minutes/month.
    pub failover_minutes_per_month: f64,
}

impl PointMetrics {
    /// Bundles the three frontier coordinates.
    #[must_use]
    pub fn new(cost_per_month: f64, uptime: f64, failover_minutes_per_month: f64) -> Self {
        PointMetrics {
            cost_per_month,
            uptime,
            failover_minutes_per_month,
        }
    }
}

/// The strictest hard threshold per metric, as search-space box bounds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HardBounds {
    /// Largest hard uptime floor, as an availability fraction.
    pub min_uptime: Option<f64>,
    /// Smallest hard monthly cost cap, $/month.
    pub max_cost: Option<f64>,
    /// Smallest hard failover budget, minutes/month.
    pub max_failover_minutes: Option<f64>,
}

/// A parsed, validated SLO spec.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    root: ObjectiveNode,
    epsilon: f64,
}

impl SloSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON, otherwise any
    /// [`SpecError`] from [`SloSpec::from_value`].
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpecError::Json(e.to_string()))?;
        SloSpec::from_value(&value)
    }

    /// Parses a spec from a decoded JSON value.
    ///
    /// # Errors
    ///
    /// A typed [`SpecError`] naming the first violated rule: unknown
    /// keys, bad types, NaN/negative weights, out-of-range thresholds,
    /// or a spec with no uptime objective.
    pub fn from_value(value: &Value) -> Result<Self, SpecError> {
        let map = value
            .as_object()
            .ok_or_else(|| SpecError::Type("spec must be a JSON object".into()))?;
        for key in map.keys() {
            if !matches!(key.as_str(), "objectives" | "epsilon") {
                return Err(SpecError::UnknownKey {
                    key: key.clone(),
                    context: "spec".into(),
                });
            }
        }
        let epsilon = match map.get("epsilon") {
            None => DEFAULT_EPSILON,
            Some(v) => {
                let eps = v
                    .as_f64()
                    .ok_or_else(|| SpecError::Type("`epsilon` must be a number".into()))?;
                if !eps.is_finite() || eps < 0.0 {
                    return Err(SpecError::InvalidEpsilon { value: eps });
                }
                eps
            }
        };
        let objectives = map
            .get("objectives")
            .ok_or_else(|| SpecError::Type("spec needs an `objectives` array".into()))?
            .as_array()
            .ok_or_else(|| SpecError::Type("`objectives` must be an array".into()))?;
        if objectives.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut leaves = Vec::with_capacity(objectives.len());
        for (index, item) in objectives.iter().enumerate() {
            leaves.push(ObjectiveNode::Leaf(parse_objective(item, index)?));
        }
        let root = ObjectiveNode::All(leaves);
        if !root
            .leaves()
            .iter()
            .any(|o| o.metric() == SloMetric::Uptime)
        {
            return Err(SpecError::MissingUptimeObjective);
        }
        Ok(SloSpec { root, epsilon })
    }

    /// The objective tree root.
    #[must_use]
    pub fn tree(&self) -> &ObjectiveNode {
        &self.root
    }

    /// All leaf objectives in spec order.
    #[must_use]
    pub fn objectives(&self) -> Vec<&SloObjective> {
        self.root.leaves()
    }

    /// The epsilon-dominance margin for frontier extraction.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The strictest uptime target across **all** objectives (hard or
    /// soft), in percent. This is the SLA the TCO penalty model prices
    /// against. Guaranteed present — parsing rejects specs without an
    /// uptime objective.
    #[must_use]
    pub fn uptime_target_percent(&self) -> f64 {
        self.objectives()
            .iter()
            .filter(|o| o.metric() == SloMetric::Uptime)
            .map(|o| o.threshold())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The strictest hard threshold per metric, for search-space pruning.
    #[must_use]
    pub fn hard_bounds(&self) -> HardBounds {
        let mut bounds = HardBounds::default();
        for obj in self.objectives() {
            if obj.mode() != ObjectiveMode::Hard {
                continue;
            }
            match obj.metric() {
                SloMetric::Uptime => {
                    let frac = obj.threshold() / 100.0;
                    bounds.min_uptime =
                        Some(bounds.min_uptime.map_or(frac, |cur: f64| cur.max(frac)));
                }
                SloMetric::Cost => {
                    let cap = obj.threshold();
                    bounds.max_cost = Some(bounds.max_cost.map_or(cap, |cur: f64| cur.min(cap)));
                }
                SloMetric::Failover => {
                    let cap = obj.threshold();
                    bounds.max_failover_minutes = Some(
                        bounds
                            .max_failover_minutes
                            .map_or(cap, |cur: f64| cur.min(cap)),
                    );
                }
            }
        }
        bounds
    }

    /// Whether `point` satisfies every hard objective.
    #[must_use]
    pub fn hard_ok(&self, point: &PointMetrics) -> bool {
        self.objectives()
            .iter()
            .filter(|o| o.mode() == ObjectiveMode::Hard)
            .all(|o| o.is_met_by(point))
    }

    /// Weighted sum of relative soft-objective violations; `0.0` when
    /// every soft objective is satisfied. Lower is better.
    #[must_use]
    pub fn soft_score(&self, point: &PointMetrics) -> f64 {
        self.objectives()
            .iter()
            .filter(|o| o.mode() == ObjectiveMode::Soft)
            .map(|o| o.weight() * o.violation(point))
            .sum()
    }

    /// Re-serializes the spec to its canonical JSON value (flat
    /// conjunction grammar, explicit mode and weight).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let objectives: Vec<Value> = self
            .objectives()
            .iter()
            .map(|o| match o.mode() {
                ObjectiveMode::Hard => serde_json::json!({
                    "metric": o.metric().as_str(),
                    "threshold": o.threshold(),
                    "mode": o.mode().as_str(),
                }),
                ObjectiveMode::Soft => serde_json::json!({
                    "metric": o.metric().as_str(),
                    "threshold": o.threshold(),
                    "mode": o.mode().as_str(),
                    "weight": o.weight(),
                }),
            })
            .collect();
        serde_json::json!({
            "epsilon": self.epsilon,
            "objectives": objectives,
        })
    }
}

fn parse_objective(value: &Value, index: usize) -> Result<SloObjective, SpecError> {
    let map = value
        .as_object()
        .ok_or_else(|| SpecError::Type(format!("objectives[{index}] must be a JSON object")))?;
    for key in map.keys() {
        if !matches!(key.as_str(), "metric" | "threshold" | "mode" | "weight") {
            return Err(SpecError::UnknownKey {
                key: key.clone(),
                context: format!("objectives[{index}]"),
            });
        }
    }
    let metric = match map.get("metric").and_then(Value::as_str) {
        Some("uptime") => SloMetric::Uptime,
        Some("cost") => SloMetric::Cost,
        Some("failover") => SloMetric::Failover,
        Some(other) => {
            return Err(SpecError::UnknownMetric {
                metric: other.to_string(),
            })
        }
        None => {
            return Err(SpecError::Type(format!(
                "objectives[{index}] needs a string `metric`"
            )))
        }
    };
    let threshold = map
        .get("threshold")
        .and_then(Value::as_f64)
        .ok_or_else(|| {
            SpecError::Type(format!("objectives[{index}] needs a numeric `threshold`"))
        })?;
    let threshold_ok = threshold.is_finite()
        && match metric {
            SloMetric::Uptime => threshold > 0.0 && threshold <= 100.0,
            SloMetric::Cost | SloMetric::Failover => threshold >= 0.0,
        };
    if !threshold_ok {
        return Err(SpecError::InvalidThreshold {
            metric,
            value: threshold,
        });
    }
    let mode = match map.get("mode") {
        None => ObjectiveMode::Hard,
        Some(v) => match v.as_str() {
            Some("hard") => ObjectiveMode::Hard,
            Some("soft") => ObjectiveMode::Soft,
            _ => {
                return Err(SpecError::Type(format!(
                    "objectives[{index}] `mode` must be \"hard\" or \"soft\""
                )))
            }
        },
    };
    let weight = match map.get("weight") {
        None => 1.0,
        Some(_) if mode == ObjectiveMode::Hard => {
            return Err(SpecError::WeightOnHard { metric });
        }
        Some(v) => {
            let w = v.as_f64().ok_or_else(|| {
                SpecError::Type(format!("objectives[{index}] `weight` must be a number"))
            })?;
            if !w.is_finite() || w < 0.0 {
                return Err(SpecError::InvalidWeight { value: w });
            }
            w
        }
    };
    Ok(SloObjective {
        metric,
        threshold,
        mode,
        weight,
    })
}

/// Why a spec failed to parse or validate.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// The text was not valid JSON.
    Json(String),
    /// A value had the wrong JSON type or a required field was missing.
    Type(String),
    /// An object carried a key the grammar does not define.
    UnknownKey {
        /// The offending key.
        key: String,
        /// Where it appeared (`spec` or `objectives[i]`).
        context: String,
    },
    /// `metric` named none of `uptime`/`cost`/`failover`.
    UnknownMetric {
        /// The unrecognized metric name.
        metric: String,
    },
    /// A threshold was NaN, infinite, or outside the metric's range.
    InvalidThreshold {
        /// Which metric the threshold belonged to.
        metric: SloMetric,
        /// The rejected value.
        value: f64,
    },
    /// A weight was NaN, infinite, or negative.
    InvalidWeight {
        /// The rejected value.
        value: f64,
    },
    /// A `weight` key appeared on a hard objective.
    WeightOnHard {
        /// Which metric carried the stray weight.
        metric: SloMetric,
    },
    /// `epsilon` was NaN, infinite, or negative.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// The `objectives` array was empty.
    Empty,
    /// No objective constrained uptime, so no SLA target exists.
    MissingUptimeObjective,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(msg) => write!(f, "invalid JSON: {msg}"),
            SpecError::Type(msg) => write!(f, "invalid spec: {msg}"),
            SpecError::UnknownKey { key, context } => {
                write!(f, "unknown key `{key}` in {context}")
            }
            SpecError::UnknownMetric { metric } => {
                write!(
                    f,
                    "unknown metric `{metric}` (expected uptime, cost, or failover)"
                )
            }
            SpecError::InvalidThreshold { metric, value } => {
                write!(f, "invalid threshold {value} for metric {metric}")
            }
            SpecError::InvalidWeight { value } => {
                write!(f, "invalid weight {value}: must be finite and non-negative")
            }
            SpecError::WeightOnHard { metric } => {
                write!(f, "hard {metric} objective cannot carry a weight")
            }
            SpecError::InvalidEpsilon { value } => {
                write!(
                    f,
                    "invalid epsilon {value}: must be finite and non-negative"
                )
            }
            SpecError::Empty => f.write_str("spec has no objectives"),
            SpecError::MissingUptimeObjective => {
                f.write_str("spec needs at least one uptime objective")
            }
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<SloSpec, SpecError> {
        SloSpec::from_json_str(text)
    }

    #[test]
    fn parses_full_spec() {
        let spec = parse(
            r#"{ "epsilon": 1e-6, "objectives": [
                { "metric": "uptime", "threshold": 99.5 },
                { "metric": "cost", "threshold": 2000.0, "mode": "soft", "weight": 2.0 },
                { "metric": "failover", "threshold": 5.0, "mode": "soft" }
            ] }"#,
        )
        .unwrap();
        assert_eq!(spec.epsilon(), 1e-6);
        assert_eq!(spec.objectives().len(), 3);
        assert_eq!(spec.uptime_target_percent(), 99.5);
        let bounds = spec.hard_bounds();
        assert_eq!(bounds.min_uptime, Some(0.995));
        assert_eq!(bounds.max_cost, None);
        assert_eq!(bounds.max_failover_minutes, None);
    }

    #[test]
    fn strictest_thresholds_win() {
        let spec = parse(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 98.0 },
                { "metric": "uptime", "threshold": 99.9 },
                { "metric": "cost", "threshold": 900.0 },
                { "metric": "cost", "threshold": 400.0 }
            ] }"#,
        )
        .unwrap();
        assert_eq!(spec.uptime_target_percent(), 99.9);
        let bounds = spec.hard_bounds();
        assert!((bounds.min_uptime.unwrap() - 0.999).abs() < 1e-12);
        assert_eq!(bounds.max_cost, Some(400.0));
    }

    #[test]
    fn rejects_unknown_keys() {
        let err = parse(r#"{ "objectives": [], "extra": 1 }"#).unwrap_err();
        assert!(matches!(err, SpecError::UnknownKey { ref key, .. } if key == "extra"));
        let err = parse(
            r#"{ "objectives": [ { "metric": "uptime", "threshold": 99.0, "bogus": true } ] }"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::UnknownKey { ref key, .. } if key == "bogus"));
    }

    #[test]
    fn rejects_bad_weights_and_epsilon() {
        let err = parse(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 99.0 },
                { "metric": "cost", "threshold": 100.0, "mode": "soft", "weight": -1.0 }
            ] }"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::InvalidWeight { .. }));
        let err = parse(
            r#"{ "epsilon": -0.5, "objectives": [
                { "metric": "uptime", "threshold": 99.0 }
            ] }"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::InvalidEpsilon { .. }));
    }

    #[test]
    fn rejects_weight_on_hard() {
        let err = parse(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 99.0, "mode": "hard", "weight": 2.0 }
            ] }"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::WeightOnHard { .. }));
    }

    #[test]
    fn requires_uptime_objective() {
        let err =
            parse(r#"{ "objectives": [ { "metric": "cost", "threshold": 10.0 } ] }"#).unwrap_err();
        assert_eq!(err, SpecError::MissingUptimeObjective);
    }

    #[test]
    fn scores_soft_violations() {
        let spec = parse(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 99.0 },
                { "metric": "cost", "threshold": 1000.0, "mode": "soft", "weight": 2.0 }
            ] }"#,
        )
        .unwrap();
        let over = PointMetrics::new(1500.0, 0.995, 0.0);
        assert!(spec.hard_ok(&over));
        assert!((spec.soft_score(&over) - 1.0).abs() < 1e-12);
        let under = PointMetrics::new(900.0, 0.995, 0.0);
        assert_eq!(spec.soft_score(&under), 0.0);
        let infeasible = PointMetrics::new(0.0, 0.9, 0.0);
        assert!(!spec.hard_ok(&infeasible));
    }

    #[test]
    fn round_trips_through_canonical_value() {
        let spec = parse(
            r#"{ "objectives": [
                { "metric": "uptime", "threshold": 99.0 },
                { "metric": "failover", "threshold": 3.0, "mode": "soft", "weight": 0.5 }
            ] }"#,
        )
        .unwrap();
        let round = SloSpec::from_value(&spec.to_value()).unwrap();
        assert_eq!(round.uptime_target_percent(), 99.0);
        assert_eq!(round.objectives().len(), 2);
        assert_eq!(round.epsilon(), spec.epsilon());
    }
}
