//! Property tests for SLO spec parsing (ISSUE PR 9):
//!
//! * **Rejection** — NaN/negative weights, out-of-range thresholds,
//!   unknown keys, and uptime-free specs always surface a typed
//!   [`SpecError`], never a panic and never a silently-accepted spec.
//! * **Round-trip** — every spec the generator produces parses, and its
//!   canonical re-serialization parses back to the same objective list.
//! * **Scoring sanity** — `soft_score` is finite and non-negative for
//!   arbitrary finite point metrics, and `0.0` whenever every soft
//!   threshold is met.

use proptest::prelude::*;
use serde::Value;
use uptime_slo::{ObjectiveMode, PointMetrics, SloSpec, SpecError};

/// Builds one valid-by-construction objective object. `metric_pick`
/// selects uptime/cost/failover; `soft` toggles mode (+ weight).
fn objective_value(metric_pick: usize, threshold_unit: f64, soft: bool, weight: f64) -> Value {
    let metric = ["uptime", "cost", "failover"][metric_pick % 3];
    let threshold = if metric == "uptime" {
        50.0 + threshold_unit * 49.9
    } else {
        threshold_unit * 10_000.0
    };
    if soft {
        serde_json::json!({
            "metric": metric, "threshold": threshold,
            "mode": "soft", "weight": weight,
        })
    } else {
        serde_json::json!({ "metric": metric, "threshold": threshold, "mode": "hard" })
    }
}

/// Strategy: a valid spec value. The first objective is always uptime so
/// the spec satisfies the ≥1-uptime-objective rule.
fn valid_spec() -> impl Strategy<Value = Value> {
    (
        (0.0f64..1.0, any::<bool>(), 0.0f64..100.0),
        prop::collection::vec((0usize..3, 0.0f64..1.0, any::<bool>(), 0.0f64..100.0), 0..4),
        any::<bool>(),
        0.0f64..0.1,
    )
        .prop_map(|((ut, usoft, uw), rest, with_eps, eps)| {
            let mut objectives = vec![objective_value(0, ut, usoft, uw)];
            objectives.extend(
                rest.into_iter()
                    .map(|(pick, t, soft, w)| objective_value(pick, t, soft, w)),
            );
            if with_eps {
                serde_json::json!({ "epsilon": eps, "objectives": objectives })
            } else {
                serde_json::json!({ "objectives": objectives })
            }
        })
}

proptest! {
    #[test]
    fn valid_specs_parse_and_round_trip(value in valid_spec()) {
        let spec = SloSpec::from_value(&value).expect("generator output is valid");
        let round = SloSpec::from_value(&spec.to_value()).expect("canonical form is valid");
        prop_assert_eq!(spec.objectives(), round.objectives());
        prop_assert_eq!(spec.epsilon(), round.epsilon());
        prop_assert!(spec.uptime_target_percent() > 0.0);
    }

    #[test]
    fn negative_or_nan_weights_are_typed_errors(
        value in valid_spec(),
        bad_pick in 0usize..3,
        magnitude in 1e-9f64..1e6,
    ) {
        let weight = match bad_pick {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => -magnitude,
        };
        let Value::Object(mut map) = value else { unreachable!("specs are objects") };
        let Some(Value::Array(objectives)) = map.get_mut("objectives") else {
            unreachable!("specs carry objectives")
        };
        objectives.push(serde_json::json!({
            "metric": "cost", "threshold": 100.0, "mode": "soft", "weight": weight,
        }));
        let err = SloSpec::from_value(&Value::Object(map)).unwrap_err();
        prop_assert!(matches!(err, SpecError::InvalidWeight { .. }), "got {}", err);
    }

    #[test]
    fn unknown_keys_are_typed_errors(
        value in valid_spec(),
        suffix in 0u32..100_000,
        at_top in any::<bool>(),
    ) {
        // The `x_` prefix keeps generated keys clear of every grammar
        // keyword, so rejection is the only acceptable outcome.
        let key = format!("x_{suffix}");
        let Value::Object(mut map) = value else { unreachable!("specs are objects") };
        if at_top {
            map.insert(key.clone(), Value::Bool(true));
        } else {
            let Some(Value::Array(objectives)) = map.get_mut("objectives") else {
                unreachable!("specs carry objectives")
            };
            let Some(Value::Object(first)) = objectives.first_mut() else {
                unreachable!("objectives are objects")
            };
            first.insert(key.clone(), Value::Bool(true));
        }
        let err = SloSpec::from_value(&Value::Object(map)).unwrap_err();
        prop_assert!(
            matches!(err, SpecError::UnknownKey { key: ref k, .. } if *k == key),
            "got {}", err
        );
    }

    #[test]
    fn out_of_range_thresholds_are_typed_errors(
        bad_pick in 0usize..4,
        above in 100.1f64..1e6,
    ) {
        let bad_uptime = match bad_pick {
            0 => f64::NAN,
            1 => -3.0,
            2 => 0.0,
            _ => above,
        };
        let value = serde_json::json!({ "objectives": [
            { "metric": "uptime", "threshold": bad_uptime }
        ] });
        let err = SloSpec::from_value(&value).unwrap_err();
        prop_assert!(matches!(err, SpecError::InvalidThreshold { .. }), "got {}", err);
    }

    #[test]
    fn uptime_free_specs_are_rejected(
        picks in prop::collection::vec((0usize..2, 0.0f64..1.0), 1..4),
    ) {
        let objectives: Vec<Value> = picks
            .into_iter()
            .map(|(pick, t)| objective_value(1 + pick, t, false, 1.0))
            .collect();
        let value = serde_json::json!({ "objectives": objectives });
        let err = SloSpec::from_value(&value).unwrap_err();
        prop_assert_eq!(err, SpecError::MissingUptimeObjective);
    }

    #[test]
    fn soft_score_is_finite_nonnegative(
        value in valid_spec(),
        cost in 0.0f64..1e7,
        uptime in 0.0f64..1.0,
        failover in 0.0f64..1e5,
    ) {
        let spec = SloSpec::from_value(&value).expect("generator output is valid");
        let point = PointMetrics::new(cost, uptime, failover);
        let score = spec.soft_score(&point);
        prop_assert!(score.is_finite() && score >= 0.0, "score {}", score);
        let all_soft_met = spec
            .objectives()
            .iter()
            .filter(|o| o.mode() == ObjectiveMode::Soft)
            .all(|o| o.is_met_by(&point));
        if all_soft_met {
            prop_assert_eq!(score, 0.0);
        }
    }
}
