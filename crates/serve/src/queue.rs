//! The bounded admission queue between connection readers and the worker
//! pool.
//!
//! `try_push` never blocks: when the queue is full the request is *shed*
//! at the door with an explicit `429`-style response instead of silently
//! building unbounded latency — the load-shedding discipline of
//! replicated-frontend serving stacks. `pop` blocks until work arrives or
//! the queue is closed and drained, which is what makes shutdown a drain
//! rather than an abort.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the request.
    Full(T),
    /// The queue is closed (daemon draining); refuse the request.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A blocking bounded MPMC queue.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= inner.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is open and empty. Returns
    /// `None` once the queue is closed *and* fully drained — workers use
    /// that as their exit signal, after every queued request has been
    /// answered.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue wait");
        }
    }

    /// Closes the queue: pushes fail fast, pops drain what remains then
    /// return `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Number of pending items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        // Draining one slot readmits.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1), "queued work survives close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then the queue reports end-of-work");
    }

    #[test]
    fn blocked_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(item) = q2.pop() {
                got.push(item);
            }
            got
        });
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        // Give the consumer a chance to block again, then close.
        thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![10, 20]);
    }
}
