//! The recommendation cache: fingerprint-keyed response bodies, each
//! stamped with the telemetry epoch it was computed under.
//!
//! Invalidation is *epoch equality*: a lookup only hits when the entry's
//! epoch equals the backend's current epoch. The broker bumps its epoch on
//! every telemetry absorb, so a stale recommendation can never be served
//! after the knowledge base moved — without the cache ever scanning or
//! being told which entries a given absorb affected.
//!
//! Capacity is bounded with FIFO eviction (insertion order). The cache
//! optimizes for the repeat-heavy broker workload where a small set of hot
//! intakes dominates; the odd evicted cold entry just recomputes.
//!
//! Entries hold the body *pre-serialized* (`Arc<str>` of canonical JSON):
//! a hit splices the rendered text straight into the response envelope
//! instead of re-walking the value tree on every request.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Result of a cache probe.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// Fresh entry: the cached rendered body, computed under the current
    /// epoch.
    Hit(Arc<str>),
    /// An entry existed but was computed under an older epoch; it has
    /// been evicted.
    Stale,
    /// Nothing cached for this fingerprint.
    Miss,
}

struct Entry {
    epoch: u64,
    body: Arc<str>,
}

/// A bounded, epoch-validated response cache.
pub struct EpochCache {
    inner: Mutex<CacheInner>,
}

struct CacheInner {
    entries: HashMap<u128, Entry>,
    order: VecDeque<u128>,
    capacity: usize,
}

impl EpochCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EpochCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Probes the cache for `fingerprint` at the current `epoch`.
    ///
    /// A stale entry (older epoch) is removed and reported as
    /// [`Lookup::Stale`] so the caller can count invalidations distinctly
    /// from cold misses.
    pub fn lookup(&self, fingerprint: u128, epoch: u64) -> Lookup {
        let mut inner = self.inner.lock().expect("cache lock");
        match inner.entries.get(&fingerprint) {
            Some(entry) if entry.epoch == epoch => Lookup::Hit(Arc::clone(&entry.body)),
            Some(_) => {
                inner.entries.remove(&fingerprint);
                inner.order.retain(|fp| *fp != fingerprint);
                Lookup::Stale
            }
            None => Lookup::Miss,
        }
    }

    /// Stores a rendered body computed under `epoch`, evicting the oldest
    /// entry when at capacity. Replacing an existing fingerprint refreshes
    /// its body in place (insertion order is kept).
    pub fn insert(&self, fingerprint: u128, epoch: u64, body: Arc<str>) {
        let mut inner = self.inner.lock().expect("cache lock");
        if inner
            .entries
            .insert(fingerprint, Entry { epoch, body })
            .is_none()
        {
            inner.order.push_back(fingerprint);
            while inner.order.len() > inner.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.entries.remove(&oldest);
                }
            }
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(n: i64) -> Arc<str> {
        Arc::from(format!("{{\"n\":{n}}}"))
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = EpochCache::new(8);
        cache.insert(1, 5, body(1));
        assert!(matches!(cache.lookup(1, 5), Lookup::Hit(_)));
        // Epoch moved: the same entry is stale exactly once, then gone.
        assert!(matches!(cache.lookup(1, 6), Lookup::Stale));
        assert!(matches!(cache.lookup(1, 6), Lookup::Miss));
    }

    #[test]
    fn unknown_fingerprint_misses() {
        let cache = EpochCache::new(8);
        assert!(matches!(cache.lookup(99, 0), Lookup::Miss));
    }

    #[test]
    fn fifo_eviction_bounds_size() {
        let cache = EpochCache::new(2);
        cache.insert(1, 0, body(1));
        cache.insert(2, 0, body(2));
        cache.insert(3, 0, body(3));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.lookup(1, 0), Lookup::Miss), "oldest evicted");
        assert!(matches!(cache.lookup(3, 0), Lookup::Hit(_)));
    }

    #[test]
    fn reinsert_refreshes_body() {
        let cache = EpochCache::new(2);
        cache.insert(1, 0, body(1));
        cache.insert(1, 1, body(2));
        assert_eq!(cache.len(), 1);
        match cache.lookup(1, 1) {
            Lookup::Hit(b) => assert_eq!(*b, *body(2)),
            other => panic!("expected hit, got {other:?}"),
        }
    }
}
