//! `uptime-serve`: a long-lived broker serving daemon.
//!
//! The one-shot `brokerctl recommend` flow pays full catalog construction
//! and optimizer cost per invocation. This crate turns the broker into a
//! resident service that amortizes that cost across requests:
//!
//! * **Protocol** ([`protocol`]) — newline-delimited JSON frames over
//!   plain TCP. One request per line, one response per line; responses
//!   carry HTTP-flavored status codes (`200`/`400`/`404`/`429`/`500`/`503`)
//!   plus the telemetry epoch they were computed under.
//! * **Recommendation cache** ([`cache`]) — response bodies keyed by a
//!   canonical fingerprint of `(endpoint, request)` and stamped with the
//!   telemetry epoch; any absorb of new telemetry bumps the epoch and
//!   implicitly invalidates everything computed before it.
//! * **Single-flight coalescing** ([`singleflight`]) — concurrent
//!   identical requests share one backend execution.
//! * **Admission control** ([`queue`]) — a bounded queue between
//!   connection readers and the worker pool; overload sheds with explicit
//!   `429`-style responses instead of queueing unboundedly, and shutdown
//!   drains everything already admitted.
//!
//! The daemon is generic over [`backend::ServeBackend`], so the broker
//! dependency points broker → serve and the machinery here is testable
//! with synthetic backends. `uptime-broker` provides the production
//! backend and wires it into `brokerctl serve`.

pub mod backend;
pub mod cache;
pub mod protocol;
pub mod queue;
#[cfg(unix)]
pub mod reactor;
pub mod schema;
pub mod server;
pub mod singleflight;

pub use backend::{BackendError, ServeBackend};
pub use cache::{EpochCache, Lookup};
pub use protocol::{code, RequestFrame, ResponseFrame, Status, PROTOCOL_VERSION};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeCore, Server, ServerConfig, ServerHandle};
pub use singleflight::{Flight, FlightResult, Role, SingleFlight};
