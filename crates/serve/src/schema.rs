//! A subset JSON Schema validator for the checked-in wire contracts.
//!
//! Supports the keywords the `schemas/*.schema.json` files use — `type`,
//! `required`, `properties`, `additionalProperties` (schema or `false`),
//! `items`, `const`, and `enum` — so protocol frames can be validated
//! against the published schema without a schema crate.

use serde::Value;

/// Validates `value` against the schema subset, appending one message per
/// violation to `errors`. `path` seeds the violation locations (use `"$"`).
pub fn validate(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    if let Some(allow) = schema.as_bool() {
        // Boolean schemas: `true` admits anything, `false` nothing.
        if !allow {
            errors.push(format!("{path}: schema forbids this property"));
        }
        return;
    }
    let Some(schema) = schema.as_object() else {
        return;
    };
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            Value::String(s) => vec![s.as_str()],
            Value::Array(options) => options.iter().filter_map(Value::as_str).collect(),
            _ => Vec::new(),
        };
        let actual = type_name(value);
        // JSON Schema: every integer is also a number.
        let matches = allowed
            .iter()
            .any(|t| *t == actual || (*t == "number" && actual == "integer"));
        if !matches {
            errors.push(format!("{path}: expected type {allowed:?}, got {actual}"));
            return;
        }
    }
    if let Some(expected) = schema.get("const") {
        if value != expected {
            errors.push(format!("{path}: expected const {expected}, got {value}"));
        }
    }
    if let Some(options) = schema.get("enum").and_then(Value::as_array) {
        if !options.iter().any(|option| option == value) {
            errors.push(format!("{path}: {value} not in enum {options:?}"));
        }
    }
    if let Some(object) = value.as_object() {
        if let Some(required) = schema.get("required").and_then(Value::as_array) {
            for key in required.iter().filter_map(Value::as_str) {
                if !object.contains_key(key) {
                    errors.push(format!("{path}: missing required property `{key}`"));
                }
            }
        }
        let properties = schema.get("properties").and_then(Value::as_object);
        for (key, child) in object {
            let child_path = format!("{path}.{key}");
            if let Some(child_schema) = properties.and_then(|p| p.get(key)) {
                validate(child, child_schema, &child_path, errors);
            } else if let Some(extra) = schema.get("additionalProperties") {
                validate(child, extra, &child_path, errors);
            }
        }
    }
    if let Some(array) = value.as_array() {
        if let Some(items) = schema.get("items") {
            for (i, child) in array.iter().enumerate() {
                validate(child, items, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Number(n) => {
            if n.as_i64().is_some() || n.as_u64().is_some() {
                "integer"
            } else {
                "number"
            }
        }
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Validates and panics with every violation — the test-friendly form.
///
/// # Panics
///
/// Panics listing all violations when `value` does not conform.
pub fn assert_valid(value: &Value, schema: &Value) {
    let mut errors = Vec::new();
    validate(value, schema, "$", &mut errors);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(value: &Value, schema: &Value) -> Vec<String> {
        let mut errors = Vec::new();
        validate(value, schema, "$", &mut errors);
        errors
    }

    #[test]
    fn type_and_required_enforced() {
        let schema = serde_json::json!({
            "type": "object",
            "required": ["id"],
            "properties": { "id": { "type": "integer" } }
        });
        assert!(check(&serde_json::json!({ "id": 3 }), &schema).is_empty());
        assert_eq!(check(&serde_json::json!({}), &schema).len(), 1);
        assert_eq!(check(&serde_json::json!({ "id": "x" }), &schema).len(), 1);
    }

    #[test]
    fn additional_properties_false_rejects_unknowns() {
        let schema = serde_json::json!({
            "type": "object",
            "properties": { "a": { "type": "integer" } },
            "additionalProperties": false
        });
        assert!(check(&serde_json::json!({ "a": 1 }), &schema).is_empty());
        assert_eq!(
            check(&serde_json::json!({ "a": 1, "b": 2 }), &schema).len(),
            1
        );
    }

    #[test]
    fn enum_and_const_enforced() {
        let schema = serde_json::json!({
            "type": "object",
            "properties": {
                "status": { "enum": ["ok", "error", "shed"] },
                "v": { "const": 1 }
            }
        });
        assert!(check(&serde_json::json!({ "status": "ok", "v": 1 }), &schema).is_empty());
        assert_eq!(
            check(&serde_json::json!({ "status": "nope" }), &schema).len(),
            1
        );
        assert_eq!(check(&serde_json::json!({ "v": 2 }), &schema).len(), 1);
    }

    #[test]
    fn items_validated_per_element() {
        let schema = serde_json::json!({ "type": "array", "items": { "type": "string" } });
        assert!(check(&serde_json::json!(["a", "b"]), &schema).is_empty());
        assert_eq!(check(&serde_json::json!(["a", 3]), &schema).len(), 1);
    }

    #[test]
    fn integer_is_a_number() {
        let schema = serde_json::json!({ "type": "number" });
        assert!(check(&serde_json::json!(3), &schema).is_empty());
        assert!(check(&serde_json::json!(3.5), &schema).is_empty());
    }
}
