//! Single-flight coalescing: concurrent identical requests share one
//! backend execution.
//!
//! The first worker to reach a fingerprint becomes the *leader* and runs
//! the optimizer; every other worker arriving while the leader is in
//! flight becomes a *follower* and blocks on the flight's condvar until
//! the leader publishes its result. Followers receive the same
//! `Arc`-shared body the leader computed — bit-identical, computed once.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use crate::backend::BackendError;

/// What a finished flight publishes: the rendered response body and the
/// epoch it was computed under, or the error every coalesced caller
/// shares.
pub type FlightResult = Result<(Arc<str>, u64), BackendError>;

/// One in-flight computation.
pub struct Flight {
    result: Mutex<Option<FlightResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes, then returns a shared copy.
    pub fn wait(&self) -> FlightResult {
        let mut guard = self.result.lock().expect("flight lock");
        while guard.is_none() {
            guard = self.done.wait(guard).expect("flight wait");
        }
        guard.as_ref().expect("published").clone()
    }

    fn publish(&self, result: FlightResult) {
        *self.result.lock().expect("flight lock") = Some(result);
        self.done.notify_all();
    }
}

/// The caller's role for one fingerprint.
pub enum Role {
    /// This caller must execute the request and [`SingleFlight::complete`] it.
    Leader(Arc<Flight>),
    /// Another caller is executing; wait on the flight.
    Follower(Arc<Flight>),
}

/// The coalescing table: fingerprint → in-flight computation.
#[derive(Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<u128, Arc<Flight>>>,
}

impl SingleFlight {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins the flight for `fingerprint`, creating it if absent.
    #[must_use]
    pub fn join(&self, fingerprint: u128) -> Role {
        let mut flights = self.flights.lock().expect("flights lock");
        match flights.get(&fingerprint) {
            Some(flight) => Role::Follower(Arc::clone(flight)),
            None => {
                let flight = Arc::new(Flight::new());
                flights.insert(fingerprint, Arc::clone(&flight));
                Role::Leader(flight)
            }
        }
    }

    /// Publishes the leader's result and retires the flight. Followers
    /// already holding the `Arc` wake and read the result; callers
    /// arriving after this point start a fresh flight (by then the cache
    /// answers for them on the hot path).
    pub fn complete(&self, fingerprint: u128, flight: &Arc<Flight>, result: FlightResult) {
        self.flights
            .lock()
            .expect("flights lock")
            .remove(&fingerprint);
        flight.publish(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn leader_then_followers_share_one_result() {
        let sf = Arc::new(SingleFlight::new());
        let Role::Leader(flight) = sf.join(7) else {
            panic!("first joiner must lead");
        };

        let mut followers = Vec::new();
        for _ in 0..4 {
            let Role::Follower(f) = sf.join(7) else {
                panic!("subsequent joiners must follow");
            };
            followers.push(thread::spawn(move || f.wait()));
        }

        let body: Arc<str> = Arc::from("{\"answer\":42}");
        sf.complete(7, &flight, Ok((Arc::clone(&body), 3)));

        for handle in followers {
            let (got, epoch) = handle.join().unwrap().expect("shared success");
            assert!(Arc::ptr_eq(&got, &body), "followers share the leader's Arc");
            assert_eq!(epoch, 3);
        }
        // The flight is retired: the next joiner leads again.
        assert!(matches!(sf.join(7), Role::Leader(_)));
    }

    #[test]
    fn errors_are_shared_too() {
        let sf = SingleFlight::new();
        let Role::Leader(flight) = sf.join(1) else {
            panic!("leader expected");
        };
        let Role::Follower(follower) = sf.join(1) else {
            panic!("follower expected");
        };
        sf.complete(1, &flight, Err(BackendError::Internal("boom".into())));
        assert!(matches!(
            follower.wait(),
            Err(BackendError::Internal(m)) if m == "boom"
        ));
    }

    #[test]
    fn distinct_fingerprints_fly_independently() {
        let sf = SingleFlight::new();
        assert!(matches!(sf.join(1), Role::Leader(_)));
        assert!(matches!(sf.join(2), Role::Leader(_)));
    }
}
