//! The daemon: TCP acceptor, per-connection readers, a bounded admission
//! queue, and a worker pool that answers through the cache and
//! single-flight layers.
//!
//! ```text
//!  clients ──► acceptor ──► reader threads ──► BoundedQueue ──► workers
//!                              │    (shed when full: 429)        │
//!                              │                                 ├─► EpochCache (hit?)
//!                              └─ ping/stats/shutdown inline     ├─► SingleFlight (coalesce)
//!                                                                └─► ServeBackend::handle
//! ```
//!
//! Shutdown (a `shutdown` admin frame, or [`ServerHandle::shutdown`]) is a
//! *drain*: the acceptor stops, connection read-halves are closed so
//! readers wind down, the queue is closed, and workers answer everything
//! already admitted before exiting. Nothing admitted is ever dropped.

use std::collections::BTreeMap;
use std::fmt::Write as FmtWrite;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use serde::{Map, Value};
use uptime_obs::{
    trace_seed_from_bytes, trace_seed_from_fingerprint, ActiveTrace, FlightRecorder,
    MetricsRegistry, Recorder, TraceConfig, TraceOutcome, TraceRecord,
};

use crate::backend::{BackendError, ServeBackend};
use crate::cache::{EpochCache, Lookup};
use crate::protocol::{code, RequestFrame, ResponseFrame};
use crate::queue::{BoundedQueue, PushError};
use crate::singleflight::{Role, SingleFlight};

/// Which serving core answers the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeCore {
    /// Thread-per-connection readers feeding a bounded worker queue
    /// (the original core; the default).
    #[default]
    Threads,
    /// Shared-nothing event-loop shards over `epoll`/`poll` — see
    /// [`crate::reactor`]. Unix only.
    Reactor,
}

impl ServeCore {
    /// The `stats`/`health` label for this core.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ServeCore::Threads => "threads",
            ServeCore::Reactor => "reactor",
        }
    }
}

impl std::str::FromStr for ServeCore {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(ServeCore::Threads),
            "reactor" => Ok(ServeCore::Reactor),
            other => Err(format!(
                "unknown serve core `{other}` (expected `threads` or `reactor`)"
            )),
        }
    }
}

/// Tunables for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded admission-queue depth; beyond it requests are shed.
    pub queue_depth: usize,
    /// Maximum cached responses (FIFO eviction).
    pub cache_capacity: usize,
    /// Idle-connection read timeout in milliseconds; a connection that
    /// sends nothing for this long is dropped (`0` disables the timeout).
    /// Defends the per-connection reader threads against slowloris
    /// clients that open sockets and never speak.
    pub read_timeout_ms: u64,
    /// Maximum request-frame length in bytes (the newline excluded). A
    /// longer frame gets a 400 and the connection is dropped — an
    /// unbounded line would otherwise let one client buffer the daemon
    /// into the ground.
    pub max_frame_bytes: usize,
    /// Request-trace tuning. With `trace.enabled = false` the daemon
    /// serves with tracing fully inert (no recorder, no spans, no
    /// atomics) and `traces`/`explain` report tracing as unavailable.
    pub trace: TraceConfig,
    /// A pre-built flight recorder to land traces in — share one with
    /// the backend so its spans and the daemon's frame spans join the
    /// same ring. `None` with `trace.enabled` makes the daemon build its
    /// own private recorder.
    pub flight_recorder: Option<Arc<FlightRecorder>>,
    /// Which serving core to run; see [`ServeCore`].
    pub core: ServeCore,
    /// Reactor shard count (`0` = one per available core, capped at 8).
    /// Ignored by the threads core.
    pub shards: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7411".to_owned(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 4096,
            read_timeout_ms: 30_000,
            max_frame_bytes: 1024 * 1024,
            trace: TraceConfig::default(),
            flight_recorder: None,
            core: ServeCore::Threads,
            shards: 0,
        }
    }
}

/// One admitted request awaiting a worker.
struct Job {
    frame: RequestFrame,
    out: Arc<Mutex<TcpStream>>,
    received: Instant,
}

/// State shared by every daemon thread.
struct Shared {
    backend: Arc<dyn ServeBackend>,
    cache: EpochCache,
    flights: SingleFlight,
    queue: BoundedQueue<Job>,
    registry: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
    inflight: AtomicI64,
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<usize>,
    readers_done: Condvar,
    local_addr: SocketAddr,
    read_timeout_ms: u64,
    max_frame_bytes: usize,
    tracer: Option<Arc<FlightRecorder>>,
}

/// The serving daemon. Construct with [`Server::start`].
pub struct Server;

/// A running daemon: join it, inspect it, or shut it down. The same
/// handle fronts whichever core [`ServerConfig::core`] selected.
pub struct ServerHandle {
    inner: HandleInner,
}

enum HandleInner {
    Threads {
        shared: Arc<Shared>,
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    #[cfg(unix)]
    Reactor(crate::reactor::ReactorHandle),
}

impl Server {
    /// Binds, spawns the selected core's threads, and returns a handle.
    /// All metrics flow through `registry` under `serve.*` names.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; `ServeCore::Reactor` on a non-Unix
    /// platform reports [`std::io::ErrorKind::Unsupported`].
    pub fn start(
        backend: Arc<dyn ServeBackend>,
        config: ServerConfig,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<ServerHandle> {
        let tracer = if config.trace.enabled {
            Some(
                config
                    .flight_recorder
                    .clone()
                    .unwrap_or_else(|| Arc::new(FlightRecorder::new(config.trace))),
            )
        } else {
            None
        };
        match config.core {
            ServeCore::Threads => Self::start_threads(backend, config, registry, tracer),
            #[cfg(unix)]
            ServeCore::Reactor => {
                let handle = crate::reactor::start(backend, &config, registry, tracer)?;
                Ok(ServerHandle {
                    inner: HandleInner::Reactor(handle),
                })
            }
            #[cfg(not(unix))]
            ServeCore::Reactor => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the reactor core requires a Unix platform; use --core threads",
            )),
        }
    }

    fn start_threads(
        backend: Arc<dyn ServeBackend>,
        config: ServerConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<FlightRecorder>>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            cache: EpochCache::new(config.cache_capacity),
            flights: SingleFlight::new(),
            queue: BoundedQueue::new(config.queue_depth),
            registry,
            shutdown: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(0),
            readers_done: Condvar::new(),
            local_addr,
            read_timeout_ms: config.read_timeout_ms,
            max_frame_bytes: config.max_frame_bytes.max(1),
            tracer,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener))
        };
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(ServerHandle {
            inner: HandleInner::Threads {
                shared,
                acceptor: Some(acceptor),
                workers,
            },
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            HandleInner::Threads { shared, .. } => shared.local_addr,
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.local_addr(),
        }
    }

    /// The metrics registry the daemon records into.
    #[must_use]
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        match &self.inner {
            HandleInner::Threads { shared, .. } => Arc::clone(&shared.registry),
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.registry(),
        }
    }

    /// Live cached-entry count (for tests and stats). For the reactor
    /// core this sums the shard-local caches.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        match &self.inner {
            HandleInner::Threads { shared, .. } => shared.cache.len(),
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.cache_len(),
        }
    }

    /// The flight recorder request traces land in, when tracing is on.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        match &self.inner {
            HandleInner::Threads { shared, .. } => shared.tracer.clone(),
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.flight_recorder(),
        }
    }

    /// Triggers the drain and blocks until every admitted request has
    /// been answered and all daemon threads have exited. Idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            HandleInner::Threads { shared, .. } => {
                begin_shutdown(shared);
                self.join_threads();
            }
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.shutdown(),
        }
    }

    /// Blocks until the daemon shuts down (via a `shutdown` admin frame
    /// or another thread calling [`ServerHandle::shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        match &mut self.inner {
            HandleInner::Threads {
                shared,
                acceptor,
                workers,
            } => {
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for worker in workers.drain(..) {
                    let _ = worker.join();
                }
                // Every response is written; release the write halves.
                shared.conns.lock().expect("conns lock").clear();
            }
            #[cfg(unix)]
            HandleInner::Reactor(handle) => handle.join_threads(),
        }
    }
}

/// Begins (idempotently) the graceful drain; see the module docs.
fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.registry.event("serve.lifecycle", "drain begun");
    // Unblock the acceptor with a no-op connection to ourselves.
    let _ = TcpStream::connect(shared.local_addr);
    // EOF every reader: no new requests can be admitted.
    for conn in shared.conns.lock().expect("conns lock").iter() {
        let _ = conn.shutdown(Shutdown::Read);
    }
    // Wait for readers to finish enqueueing what they had in hand.
    let mut readers = shared.readers.lock().expect("readers lock");
    while *readers > 0 {
        readers = shared.readers_done.wait(readers).expect("readers wait");
    }
    drop(readers);
    // Workers drain the queue, answer everything, then exit.
    shared.queue.close();
    shared
        .registry
        .event("serve.lifecycle", "queue closed, draining workers");
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small and latency-sensitive; never batch them.
        let _ = stream.set_nodelay(true);
        if shared.read_timeout_ms > 0 {
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(
                shared.read_timeout_ms,
            )));
        }
        shared.registry.counter_add("serve.connections", 1);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        *shared.readers.lock().expect("readers lock") += 1;
        let shared = Arc::clone(shared);
        thread::spawn(move || {
            reader_loop(&shared, stream);
            let mut readers = shared.readers.lock().expect("readers lock");
            *readers -= 1;
            if *readers == 0 {
                shared.readers_done.notify_all();
            }
        });
    }
}

/// One bounded line read: what came off the wire and why reading stopped.
enum LineRead {
    /// A complete newline-terminated line within the frame cap.
    Line(Vec<u8>),
    /// Orderly end of stream (or a torn trailing fragment at EOF).
    Eof,
    /// The client sat silent past the idle read timeout.
    IdleTimeout,
    /// The line exceeded the frame cap before a newline arrived.
    Oversized,
}

/// Reads one `\n`-terminated line of at most `max` bytes (newline
/// excluded). Never buffers more than `max + 1` bytes, whatever the
/// client sends.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, max: usize) -> LineRead {
    let mut buf = Vec::new();
    let mut limited = (&mut *reader).take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => LineRead::Eof,
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.len() > max {
                    LineRead::Oversized
                } else {
                    LineRead::Line(buf)
                }
            } else if buf.len() > max {
                // Hit the cap with no newline in sight: oversized frame.
                LineRead::Oversized
            } else {
                // Stream ended mid-line; nothing valid to dispatch.
                LineRead::Eof
            }
        }
        Err(err)
            if matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            LineRead::IdleTimeout
        }
        Err(_) => LineRead::Eof,
    }
}

fn reader_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, shared.max_frame_bytes) {
            LineRead::Line(line) => line,
            LineRead::Eof => break,
            LineRead::IdleTimeout => {
                shared.registry.counter_add("serve.conn.idle_dropped", 1);
                // Actively hang up (a dup of this socket lives in `conns`
                // until shutdown, so dropping our halves is not enough).
                let _ = out.lock().expect("writer lock").shutdown(Shutdown::Both);
                break;
            }
            LineRead::Oversized => {
                shared.registry.counter_add("serve.conn.oversized", 1);
                write_frame(
                    &out,
                    &ResponseFrame::error(
                        0,
                        shared.backend.epoch(),
                        code::BAD_REQUEST,
                        format!(
                            "frame exceeds {} byte cap; connection closed",
                            shared.max_frame_bytes
                        ),
                    ),
                );
                let _ = out.lock().expect("writer lock").shutdown(Shutdown::Both);
                break;
            }
        };
        let line = String::from_utf8_lossy(&line);
        if line.trim().is_empty() {
            continue;
        }
        let received = Instant::now();
        let frame = match serde_json::from_str::<RequestFrame>(&line) {
            Ok(frame) => frame,
            Err(err) => {
                shared.registry.counter_add("serve.parse_error", 1);
                write_frame(
                    &out,
                    &ResponseFrame::error(
                        0,
                        shared.backend.epoch(),
                        code::BAD_REQUEST,
                        format!("bad frame: {err}"),
                    ),
                );
                continue;
            }
        };
        dispatch(shared, frame, &out, received);
    }
}

/// Routes one parsed frame: admin endpoints inline, everything else
/// through admission control into the queue.
fn dispatch(
    shared: &Arc<Shared>,
    frame: RequestFrame,
    out: &Arc<Mutex<TcpStream>>,
    received: Instant,
) {
    let rec: &dyn Recorder = shared.registry.as_ref();
    match frame.endpoint.as_str() {
        "ping" => {
            let body = serde_json::json!({ "pong": true });
            write_frame(
                out,
                &ResponseFrame::ok(frame.id, shared.backend.epoch(), body),
            );
        }
        "stats" => {
            let body = stats_body(shared);
            write_frame(
                out,
                &ResponseFrame::ok(frame.id, shared.backend.epoch(), body),
            );
        }
        "traces" => match traces_body(shared, &frame.body) {
            Ok(body) => write_frame(
                out,
                &ResponseFrame::ok(frame.id, shared.backend.epoch(), body),
            ),
            Err(detail) => write_frame(
                out,
                &ResponseFrame::error(frame.id, shared.backend.epoch(), code::BAD_REQUEST, detail),
            ),
        },
        "shutdown" => {
            write_frame(
                out,
                &ResponseFrame::ok(
                    frame.id,
                    shared.backend.epoch(),
                    serde_json::json!({ "draining": true }),
                ),
            );
            let shared = Arc::clone(shared);
            thread::spawn(move || begin_shutdown(&shared));
        }
        _ => {
            if shared.shutdown.load(Ordering::Acquire) {
                rec.counter_add("serve.drain.refused", 1);
                write_frame(
                    out,
                    &ResponseFrame::error(
                        frame.id,
                        shared.backend.epoch(),
                        code::DRAINING,
                        "daemon is draining",
                    ),
                );
                return;
            }
            let job = Job {
                frame,
                out: Arc::clone(out),
                received,
            };
            match shared.queue.try_push(job) {
                Ok(()) => {
                    rec.observe("serve.queue.depth", shared.queue.len() as f64);
                }
                Err(PushError::Full(job)) => {
                    rec.counter_add("serve.shed", 1);
                    // Sheds are always tail-sampling keepers: record a
                    // one-span trace so overload shows up in the ring.
                    if let Some(tracer) = &shared.tracer {
                        let endpoint = sanitize_endpoint(&job.frame.endpoint);
                        let trace =
                            tracer.begin(trace_seed_from_bytes(endpoint.as_bytes()), &endpoint);
                        trace.finish(TraceOutcome::Shed);
                    }
                    write_frame(
                        &job.out,
                        &ResponseFrame::shed(
                            job.frame.id,
                            shared.backend.epoch(),
                            "queue full; retry later",
                        ),
                    );
                }
                Err(PushError::Closed(job)) => {
                    rec.counter_add("serve.drain.refused", 1);
                    write_frame(
                        &job.out,
                        &ResponseFrame::error(
                            job.frame.id,
                            shared.backend.epoch(),
                            code::DRAINING,
                            "daemon is draining",
                        ),
                    );
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let inflight = shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        shared.registry.gauge_set("serve.inflight", inflight as f64);
        handle_job(shared, job);
        let inflight = shared.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        shared.registry.gauge_set("serve.inflight", inflight as f64);
    }
}

/// Executes the backend under panic isolation, capturing the epoch the
/// computation started under (the epoch the cache entry is keyed by).
/// The body is rendered to its canonical JSON text exactly once here;
/// cache hits and coalesced followers reuse the rendered bytes.
fn execute(
    shared: &Shared,
    endpoint: &str,
    body: &Value,
    parent: &uptime_obs::TraceSpan,
) -> Result<(Arc<str>, u64), BackendError> {
    let epoch_before = shared.backend.epoch();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.backend.handle_traced(endpoint, body, parent)
    }));
    match outcome {
        Ok(Ok(value)) => {
            let _render_span = parent.child("serve.render");
            match serde_json::to_string(&value) {
                Ok(text) => Ok((Arc::from(text), epoch_before)),
                Err(err) => Err(BackendError::Internal(format!(
                    "unserializable body: {err}"
                ))),
            }
        }
        Ok(Err(err)) => Err(err),
        Err(_) => Err(BackendError::Internal("backend panicked".into())),
    }
}

/// One answered request: either a success with a pre-rendered body (the
/// hot path — spliced into the envelope without re-serializing) or a
/// fully-structured error frame.
enum Reply {
    Ok {
        epoch: u64,
        cached: bool,
        coalesced: bool,
        body: Arc<str>,
    },
    Frame(ResponseFrame),
}

fn handle_job(shared: &Arc<Shared>, job: Job) {
    let rec: &dyn Recorder = shared.registry.as_ref();
    let frame = &job.frame;
    let endpoint = frame.endpoint.as_str();
    let mut known_endpoint = true;

    // Fingerprint first: it seeds the trace id, so identical requests
    // trace identically run after run (uncacheable endpoints fall back
    // to the endpoint name). The trace is fully inert when tracing is
    // off — `ActiveTrace::disabled()` allocates nothing.
    let fingerprinted = shared.backend.fingerprint(endpoint, &frame.body);
    let trace = match &shared.tracer {
        Some(tracer) => {
            let seed = match &fingerprinted {
                Ok(Some(fingerprint)) => trace_seed_from_fingerprint(*fingerprint),
                _ => trace_seed_from_bytes(endpoint.as_bytes()),
            };
            let trace = tracer.begin(seed, &sanitize_endpoint(endpoint));
            trace
                .root()
                .child_completed_ns("serve.queue.wait", job.received.elapsed().as_nanos() as u64);
            trace
        }
        None => ActiveTrace::disabled(),
    };

    let reply = match fingerprinted {
        Err(err) => {
            known_endpoint = !matches!(err, BackendError::UnknownEndpoint(_));
            Reply::Frame(ResponseFrame::error(
                frame.id,
                shared.backend.epoch(),
                err.code(),
                err.message(),
            ))
        }
        // Uncacheable endpoint: straight to the backend. Report the
        // post-execution epoch — mutating endpoints (sync) move it.
        Ok(None) => {
            let exec_span = trace.root().child("serve.execute");
            let result = execute(shared, endpoint, &frame.body, &exec_span);
            drop(exec_span);
            match result {
                Ok((body, _)) => Reply::Ok {
                    epoch: shared.backend.epoch(),
                    cached: false,
                    coalesced: false,
                    body,
                },
                Err(err) => {
                    known_endpoint = !matches!(err, BackendError::UnknownEndpoint(_));
                    Reply::Frame(ResponseFrame::error(
                        frame.id,
                        shared.backend.epoch(),
                        err.code(),
                        err.message(),
                    ))
                }
            }
        }
        Ok(Some(fingerprint)) => {
            // Cache traffic is also attributed per endpoint (bounded by
            // `sanitize_endpoint`) so `stats` can answer e.g. how the
            // `frontier` cache behaves independently of `recommend`.
            let cache_label = sanitize_endpoint(endpoint);
            let epoch_now = shared.backend.epoch();
            let lookup = {
                let mut cache_span = trace.root().child("serve.cache.lookup");
                let lookup = shared.cache.lookup(fingerprint, epoch_now);
                cache_span.attr_text(
                    "verdict",
                    match &lookup {
                        Lookup::Hit(_) => "hit",
                        Lookup::Stale => "stale",
                        _ => "miss",
                    },
                );
                lookup
            };
            match lookup {
                Lookup::Hit(body) => {
                    rec.counter_add("serve.cache.hit", 1);
                    rec.counter_add(&format!("serve.cache.{cache_label}.hit"), 1);
                    Reply::Ok {
                        epoch: epoch_now,
                        cached: true,
                        coalesced: false,
                        body,
                    }
                }
                probe => {
                    let verdict = match probe {
                        Lookup::Stale => "stale",
                        _ => "miss",
                    };
                    rec.counter_add(&format!("serve.cache.{verdict}"), 1);
                    rec.counter_add(&format!("serve.cache.{cache_label}.{verdict}"), 1);
                    match shared.flights.join(fingerprint) {
                        Role::Leader(flight) => {
                            let mut exec_span = trace.root().child("serve.execute");
                            exec_span.attr_flag("leader", true);
                            let result = execute(shared, endpoint, &frame.body, &exec_span);
                            drop(exec_span);
                            if let Ok((body, computed_under)) = &result {
                                // Cache only if no absorb raced the run;
                                // the entry's epoch is the one the answer
                                // was computed under, so a racing bump
                                // still invalidates on the next lookup.
                                if shared.backend.epoch() == *computed_under {
                                    shared.cache.insert(
                                        fingerprint,
                                        *computed_under,
                                        Arc::clone(body),
                                    );
                                }
                            }
                            shared
                                .flights
                                .complete(fingerprint, &flight, result.clone());
                            match result {
                                Ok((body, epoch)) => Reply::Ok {
                                    epoch,
                                    cached: false,
                                    coalesced: false,
                                    body,
                                },
                                Err(err) => Reply::Frame(ResponseFrame::error(
                                    frame.id,
                                    shared.backend.epoch(),
                                    err.code(),
                                    err.message(),
                                )),
                            }
                        }
                        Role::Follower(flight) => {
                            rec.counter_add("serve.coalesced", 1);
                            let wait = trace.root().child("serve.flight.wait");
                            let result = flight.wait();
                            drop(wait);
                            match result {
                                Ok((body, epoch)) => Reply::Ok {
                                    epoch,
                                    cached: false,
                                    coalesced: true,
                                    body,
                                },
                                Err(err) => Reply::Frame(ResponseFrame::error(
                                    frame.id,
                                    shared.backend.epoch(),
                                    err.code(),
                                    err.message(),
                                )),
                            }
                        }
                    }
                }
            }
        }
    };

    // Every trace ends here — including error replies — so tail sampling
    // sees the outcome it keys on.
    let outcome = match &reply {
        Reply::Ok { .. } => TraceOutcome::Ok,
        Reply::Frame(f) => match f.status {
            crate::protocol::Status::Shed => TraceOutcome::Shed,
            _ => TraceOutcome::Error(f.code),
        },
    };
    let record = trace.finish(outcome);
    // `explain` is opt-in per request and rides outside the cached body,
    // so answer bytes stay identical with and without it.
    let explain = if frame.explain {
        record.as_ref().map(|r| explain_value(r))
    } else {
        None
    };

    // Count before writing so a client that has its response in hand is
    // guaranteed to see it reflected in the counters.
    rec.counter_add("serve.responses", 1);
    match reply {
        Reply::Ok {
            epoch,
            cached,
            coalesced,
            body,
        } => {
            let explain_text = explain.as_ref().and_then(|v| serde_json::to_string(v).ok());
            write_line(
                &job.out,
                render_ok_line(
                    frame.id,
                    epoch,
                    cached,
                    coalesced,
                    &body,
                    explain_text.as_deref(),
                ),
            );
        }
        Reply::Frame(mut response) => {
            response.explain = explain;
            write_frame(&job.out, &response);
        }
    }
    let label = if known_endpoint {
        sanitize_endpoint(endpoint)
    } else {
        "unknown".into()
    };
    rec.observe(
        &format!("serve.{label}.ns"),
        job.received.elapsed().as_nanos() as f64,
    );
}

/// Bounds metric-name cardinality: lowercase alphanumerics and `_`/`-`
/// pass through (truncated), anything else becomes `other`.
pub(crate) fn sanitize_endpoint(endpoint: &str) -> String {
    let clean = endpoint.len() <= 32
        && !endpoint.is_empty()
        && endpoint
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-');
    if clean {
        endpoint.to_owned()
    } else {
        "other".to_owned()
    }
}

fn stats_body(shared: &Shared) -> Value {
    let snap = shared.registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    serde_json::json!({
        "epoch": shared.backend.epoch(),
        "cache": {
            "hit": counter("serve.cache.hit"),
            "miss": counter("serve.cache.miss"),
            "stale": counter("serve.cache.stale"),
            "size": shared.cache.len() as u64,
        },
        "cache_by_endpoint": cache_by_endpoint(&snap),
        "coalesced": counter("serve.coalesced"),
        "shed": counter("serve.shed"),
        "responses": counter("serve.responses"),
        "connections": counter("serve.connections"),
        "conn": {
            "oversized": counter("serve.conn.oversized"),
            "idle_dropped": counter("serve.conn.idle_dropped"),
        },
        "queue_depth": shared.queue.len() as u64,
        "inflight": shared.inflight.load(Ordering::Acquire),
        "core": "threads",
        "shards": shard_section(&snap),
        "trace": trace_stats_value(shared.tracer.as_deref()),
    })
}

/// The per-shard counter section of the `stats` body, reconstructed from
/// the `serve.shard.<i>.<what>` counters. Empty for the threads core
/// (which never emits them).
pub(crate) fn shard_section(snap: &uptime_obs::MetricsSnapshot) -> Value {
    let mut per_shard: BTreeMap<u64, Map> = BTreeMap::new();
    for (name, value) in &snap.counters {
        let Some(rest) = name.strip_prefix("serve.shard.") else {
            continue;
        };
        let Some((index, what)) = rest.split_once('.') else {
            continue;
        };
        let Ok(index) = index.parse::<u64>() else {
            continue;
        };
        if matches!(what, "accepted" | "served" | "shed") {
            per_shard
                .entry(index)
                .or_default()
                .insert(what.to_owned(), serde_json::to_value(value));
        }
    }
    let mut body = Map::new();
    for (index, mut tallies) in per_shard {
        for what in ["accepted", "served", "shed"] {
            tallies
                .entry(what.to_owned())
                .or_insert_with(|| serde_json::to_value(&0u64));
        }
        body.insert(index.to_string(), Value::Object(tallies));
    }
    Value::Object(body)
}

/// The `cache_by_endpoint` section of the `stats` body: for every
/// endpoint that has seen cacheable traffic, its hit/miss/stale tallies,
/// reconstructed from the `serve.cache.<endpoint>.<verdict>` counters.
/// Endpoint label cardinality is bounded by `sanitize_endpoint`.
pub(crate) fn cache_by_endpoint(snap: &uptime_obs::MetricsSnapshot) -> Value {
    let mut per_endpoint: BTreeMap<&str, Map> = BTreeMap::new();
    for (name, value) in &snap.counters {
        let Some(rest) = name.strip_prefix("serve.cache.") else {
            continue;
        };
        let Some((endpoint, verdict)) = rest.rsplit_once('.') else {
            continue; // the global hit/miss/stale counters
        };
        if matches!(verdict, "hit" | "miss" | "stale") {
            per_endpoint
                .entry(endpoint)
                .or_default()
                .insert(verdict.to_owned(), serde_json::to_value(value));
        }
    }
    let mut body = Map::new();
    for (endpoint, mut verdicts) in per_endpoint {
        for verdict in ["hit", "miss", "stale"] {
            verdicts
                .entry(verdict.to_owned())
                .or_insert_with(|| serde_json::to_value(&0u64));
        }
        body.insert(endpoint.to_owned(), Value::Object(verdicts));
    }
    Value::Object(body)
}

/// The flight-recorder section of `stats` and `health` bodies: occupancy
/// and drop counters, all zero (with `enabled: false`) when tracing is
/// off.
pub(crate) fn trace_stats_value(tracer: Option<&FlightRecorder>) -> Value {
    let stats = tracer.map(FlightRecorder::stats).unwrap_or_default();
    serde_json::json!({
        "enabled": tracer.is_some(),
        "capacity": stats.capacity,
        "occupancy": stats.occupancy,
        "completed": stats.completed,
        "recorded": stats.recorded,
        "sampled_out": stats.sampled_out,
        "evicted": stats.evicted,
        "unwound": stats.unwound,
    })
}

/// Serves the `traces` endpoint: exports the flight-recorder contents.
/// Body params (all optional): `slowest: N` (top-N by total duration),
/// `errors: true` (error/shed traces only), `format: "json" | "chrome"`.
fn traces_body(shared: &Shared, params: &Value) -> Result<Value, String> {
    traces_export(shared.tracer.as_deref(), params)
}

/// Core-agnostic `traces` export; both serving cores route through this.
pub(crate) fn traces_export(
    tracer: Option<&FlightRecorder>,
    params: &Value,
) -> Result<Value, String> {
    let Some(tracer) = tracer else {
        return Err("tracing is disabled on this daemon".into());
    };
    if !params.is_null() && params.as_object().is_none() {
        return Err("traces body must be an object".into());
    }
    let get = |key: &str| params.as_object().and_then(|m| m.get(key));
    let errors = get("errors").and_then(Value::as_bool).unwrap_or(false);
    let slowest = get("slowest").and_then(Value::as_u64);
    let format = get("format").and_then(Value::as_str).unwrap_or("json");
    let traces = if errors {
        tracer.errors()
    } else if let Some(n) = slowest {
        tracer.slowest(n as usize)
    } else {
        tracer.snapshot()
    };
    let text = match format {
        "json" => uptime_obs::traces_to_json(&traces, &tracer.stats()),
        "chrome" => uptime_obs::traces_to_chrome(&traces),
        other => {
            return Err(format!(
                "unknown trace format `{other}` (expected `json` or `chrome`)"
            ))
        }
    };
    serde_json::from_str(&text).map_err(|err| format!("trace export did not parse: {err}"))
}

/// The inline `explain` payload: the request's own span tree, compact
/// enough to ride beside the answer without re-querying `traces`.
pub(crate) fn explain_value(record: &TraceRecord) -> Value {
    use uptime_obs::trace::AttrValue;
    let spans: Vec<Value> = record
        .spans
        .iter()
        .map(|span| {
            let mut attrs = serde::Map::new();
            for (key, value) in &span.attrs {
                let json = match value {
                    AttrValue::U64(v) => serde_json::json!(*v),
                    AttrValue::F64(v) => serde_json::json!(*v),
                    AttrValue::Text(v) => serde_json::json!(v),
                    AttrValue::Flag(v) => serde_json::json!(*v),
                };
                attrs.insert((*key).to_owned(), json);
            }
            serde_json::json!({
                "id": span.id,
                "parent": span.parent,
                "name": span.name,
                "start_ns": span.start_ns,
                "duration_ns": span.duration_ns,
                "attrs": Value::Object(attrs),
            })
        })
        .collect();
    serde_json::json!({
        "trace_id": record.trace_id_hex(),
        "outcome": record.outcome.as_str(),
        "total_ns": record.total_ns,
        "sampled": record.kept_because,
        "spans": spans,
    })
}

/// Renders a success envelope around a pre-serialized body, byte-for-byte
/// what serializing the equivalent [`ResponseFrame`] would produce (the
/// vendored serializer emits map keys in sorted order) — without
/// re-walking the body's value tree.
pub(crate) fn render_ok_line(
    id: u64,
    epoch: u64,
    cached: bool,
    coalesced: bool,
    body: &str,
    explain: Option<&str>,
) -> String {
    let mut text = String::with_capacity(body.len() + explain.map_or(0, str::len) + 124);
    text.push_str("{\"body\":");
    text.push_str(body);
    text.push_str(",\"cached\":");
    text.push_str(if cached { "true" } else { "false" });
    text.push_str(",\"coalesced\":");
    text.push_str(if coalesced { "true" } else { "false" });
    let _ = write!(text, ",\"code\":{},\"epoch\":{epoch}", code::OK);
    if let Some(explain) = explain {
        // Sorted-key order: `epoch` < `explain` < `id`, matching what the
        // serde path emits for a frame with `explain` set.
        text.push_str(",\"explain\":");
        text.push_str(explain);
    }
    let _ = write!(
        text,
        ",\"id\":{id},\"status\":\"ok\",\"v\":{}}}",
        crate::protocol::PROTOCOL_VERSION,
    );
    text.push('\n');
    text
}

/// Writes one already-rendered response line; write errors mean the
/// client went away and are deliberately ignored.
fn write_line(out: &Mutex<TcpStream>, text: String) {
    let mut stream = out.lock().expect("writer lock");
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

/// Serializes and writes one response line; write errors mean the client
/// went away and are deliberately ignored.
fn write_frame(out: &Mutex<TcpStream>, frame: &ResponseFrame) {
    let Ok(mut text) = serde_json::to_string(frame) else {
        return;
    };
    text.push('\n');
    write_line(out, text);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The spliced hot-path envelope must be byte-for-byte what the serde
    /// path would have produced for the same frame.
    #[test]
    fn rendered_ok_line_matches_serde_serialization() {
        let body = serde_json::json!({"plan": {"tco": 1234.5}, "zeta": [1, 2]});
        let body_text = serde_json::to_string(&body).expect("body serializes");
        for (cached, coalesced) in [(false, false), (true, false), (false, true)] {
            let mut frame = ResponseFrame::ok(42, 7, body.clone());
            frame = frame.with_cached(cached).with_coalesced(coalesced);
            let mut via_serde = serde_json::to_string(&frame).expect("frame serializes");
            via_serde.push('\n');
            let spliced = render_ok_line(42, 7, cached, coalesced, &body_text, None);
            assert_eq!(spliced, via_serde);
        }
    }

    /// The explain splice must also be byte-for-byte what serializing a
    /// frame with `explain` set would produce.
    #[test]
    fn rendered_explain_line_matches_serde_serialization() {
        let body = serde_json::json!({"plan": {"tco": 1234.5}});
        let body_text = serde_json::to_string(&body).expect("body serializes");
        let explain = serde_json::json!({"spans": [{"name": "serve.request"}], "total_ns": 9});
        let explain_text = serde_json::to_string(&explain).expect("explain serializes");
        let frame = ResponseFrame::ok(42, 7, body).with_explain(Some(explain));
        let mut via_serde = serde_json::to_string(&frame).expect("frame serializes");
        via_serde.push('\n');
        let spliced = render_ok_line(42, 7, false, false, &body_text, Some(&explain_text));
        assert_eq!(spliced, via_serde);
    }
}
