//! The wire protocol: newline-delimited JSON frames over TCP.
//!
//! One request frame per line in, one response frame per line out.
//! Responses carry the request's `id`, so a client may pipeline requests
//! and match answers out of order. The frame shapes are contractual and
//! checked in under `schemas/serve_request.schema.json` and
//! `schemas/serve_response.schema.json`.
//!
//! Serde impls are hand-written (not derived) so omitted fields default
//! exactly as documented: `v` → the current protocol version, `id` → 0,
//! `body` → `null`. The response serializer omits `body`/`error` when
//! absent, keeping cached-hit frames as small as possible.

use serde::{DeError, Deserialize, Map, Serialize, Value};

/// Version of the frame layout. Bump when a field changes meaning.
pub const PROTOCOL_VERSION: u32 = 1;

/// HTTP-flavored status codes used by [`ResponseFrame::code`].
pub mod code {
    /// Request served.
    pub const OK: u16 = 200;
    /// Malformed frame or request body.
    pub const BAD_REQUEST: u16 = 400;
    /// Unknown endpoint.
    pub const NOT_FOUND: u16 = 404;
    /// Admission control shed the request (queue full).
    pub const SHED: u16 = 429;
    /// The backend failed.
    pub const INTERNAL: u16 = 500;
    /// The daemon is draining and no longer admits work.
    pub const DRAINING: u16 = 503;
}

/// One client request: which endpoint to hit and with what body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Protocol version (defaults to [`PROTOCOL_VERSION`] when omitted).
    pub v: u32,
    /// Client-chosen correlation id, echoed back verbatim (default 0).
    pub id: u64,
    /// The endpoint name, e.g. `recommend`, `metacloud`, `health`,
    /// `sync`, `ping`, `stats`, `traces`, `shutdown`.
    pub endpoint: String,
    /// Endpoint-specific request body (default `null`).
    pub body: Value,
    /// Ask for an inline per-stage timing breakdown in the response
    /// (default `false`, omitted on the wire when false). The flag lives
    /// on the frame — not the body — so cache keys and answer bytes are
    /// untouched by it.
    pub explain: bool,
}

impl RequestFrame {
    /// A frame for `endpoint` carrying `body`, with correlation id `id`.
    #[must_use]
    pub fn new(id: u64, endpoint: impl Into<String>, body: Value) -> Self {
        RequestFrame {
            v: PROTOCOL_VERSION,
            id,
            endpoint: endpoint.into(),
            body,
            explain: false,
        }
    }

    /// Requests the inline per-stage timing breakdown.
    #[must_use]
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }
}

impl Serialize for RequestFrame {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("v".into(), self.v.to_value());
        map.insert("id".into(), self.id.to_value());
        map.insert("endpoint".into(), self.endpoint.to_value());
        if !self.body.is_null() {
            map.insert("body".into(), self.body.clone());
        }
        if self.explain {
            map.insert("explain".into(), self.explain.to_value());
        }
        Value::Object(map)
    }
}

impl Deserialize for RequestFrame {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let map = value
            .as_object()
            .ok_or_else(|| DeError::expected("an object for RequestFrame", value))?;
        let v = match map.get("v") {
            Some(v) if !v.is_null() => u32::from_value(v).map_err(|e| e.in_field("v"))?,
            _ => PROTOCOL_VERSION,
        };
        let id = match map.get("id") {
            Some(v) if !v.is_null() => u64::from_value(v).map_err(|e| e.in_field("id"))?,
            _ => 0,
        };
        let endpoint = match map.get("endpoint") {
            Some(v) => String::from_value(v).map_err(|e| e.in_field("endpoint"))?,
            None => return Err(DeError::missing_field("endpoint")),
        };
        let body = map.get("body").cloned().unwrap_or(Value::Null);
        let explain = match map.get("explain") {
            Some(v) if !v.is_null() => bool::from_value(v).map_err(|e| e.in_field("explain"))?,
            _ => false,
        };
        Ok(RequestFrame {
            v,
            id,
            endpoint,
            body,
            explain,
        })
    }
}

/// How a request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Served successfully.
    Ok,
    /// Rejected or failed; see `error` and `code`.
    Error,
    /// Shed by admission control before reaching a worker.
    Shed,
}

impl Status {
    /// The lowercase wire form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Shed => "shed",
        }
    }
}

impl Serialize for Status {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for Status {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_str() {
            Some("ok") => Ok(Status::Ok),
            Some("error") => Ok(Status::Error),
            Some("shed") => Ok(Status::Shed),
            Some(other) => Err(DeError::unknown_variant(other, "Status")),
            None => Err(DeError::expected("a status string", value)),
        }
    }
}

/// One daemon response.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Protocol version.
    pub v: u32,
    /// The request's correlation id.
    pub id: u64,
    /// Outcome class.
    pub status: Status,
    /// HTTP-flavored status code (see [`code`]).
    pub code: u16,
    /// Whether the body came straight from the recommendation cache.
    pub cached: bool,
    /// Whether this request was coalesced onto another identical
    /// in-flight request (single-flight follower).
    pub coalesced: bool,
    /// The telemetry epoch the answer was computed under.
    pub epoch: u64,
    /// Endpoint-specific response body (omitted on errors/sheds).
    pub body: Option<Value>,
    /// Human-readable error detail (omitted on success).
    pub error: Option<String>,
    /// Per-stage timing breakdown, present only when the request asked
    /// for `explain: true` and tracing is enabled on the daemon.
    pub explain: Option<Value>,
}

impl ResponseFrame {
    /// A successful response carrying `body`.
    #[must_use]
    pub fn ok(id: u64, epoch: u64, body: Value) -> Self {
        ResponseFrame {
            v: PROTOCOL_VERSION,
            id,
            status: Status::Ok,
            code: code::OK,
            cached: false,
            coalesced: false,
            epoch,
            body: Some(body),
            error: None,
            explain: None,
        }
    }

    /// An error response with the given code and detail.
    #[must_use]
    pub fn error(id: u64, epoch: u64, error_code: u16, detail: impl Into<String>) -> Self {
        ResponseFrame {
            v: PROTOCOL_VERSION,
            id,
            status: Status::Error,
            code: error_code,
            cached: false,
            coalesced: false,
            epoch,
            body: None,
            error: Some(detail.into()),
            explain: None,
        }
    }

    /// A shed response: admission control refused the request.
    #[must_use]
    pub fn shed(id: u64, epoch: u64, detail: impl Into<String>) -> Self {
        ResponseFrame {
            v: PROTOCOL_VERSION,
            id,
            status: Status::Shed,
            code: code::SHED,
            cached: false,
            coalesced: false,
            epoch,
            body: None,
            error: Some(detail.into()),
            explain: None,
        }
    }

    /// Attaches a per-stage timing breakdown.
    #[must_use]
    pub fn with_explain(mut self, explain: Option<Value>) -> Self {
        self.explain = explain;
        self
    }

    /// Marks the response as served from cache.
    #[must_use]
    pub fn with_cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Marks the response as coalesced onto another in-flight request.
    #[must_use]
    pub fn with_coalesced(mut self, coalesced: bool) -> Self {
        self.coalesced = coalesced;
        self
    }
}

impl Serialize for ResponseFrame {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("v".into(), self.v.to_value());
        map.insert("id".into(), self.id.to_value());
        map.insert("status".into(), self.status.to_value());
        map.insert("code".into(), self.code.to_value());
        map.insert("cached".into(), self.cached.to_value());
        map.insert("coalesced".into(), self.coalesced.to_value());
        map.insert("epoch".into(), self.epoch.to_value());
        if let Some(body) = &self.body {
            map.insert("body".into(), body.clone());
        }
        if let Some(error) = &self.error {
            map.insert("error".into(), error.to_value());
        }
        if let Some(explain) = &self.explain {
            map.insert("explain".into(), explain.clone());
        }
        Value::Object(map)
    }
}

impl Deserialize for ResponseFrame {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let map = value
            .as_object()
            .ok_or_else(|| DeError::expected("an object for ResponseFrame", value))?;
        let required =
            |name: &'static str| map.get(name).ok_or_else(|| DeError::missing_field(name));
        Ok(ResponseFrame {
            v: u32::from_value(required("v")?).map_err(|e| e.in_field("v"))?,
            id: u64::from_value(required("id")?).map_err(|e| e.in_field("id"))?,
            status: Status::from_value(required("status")?).map_err(|e| e.in_field("status"))?,
            code: u16::from_value(required("code")?).map_err(|e| e.in_field("code"))?,
            cached: bool::from_value(required("cached")?).map_err(|e| e.in_field("cached"))?,
            coalesced: bool::from_value(required("coalesced")?)
                .map_err(|e| e.in_field("coalesced"))?,
            epoch: u64::from_value(required("epoch")?).map_err(|e| e.in_field("epoch"))?,
            body: map.get("body").cloned(),
            error: match map.get("error") {
                Some(v) if !v.is_null() => {
                    Some(String::from_value(v).map_err(|e| e.in_field("error"))?)
                }
                _ => None,
            },
            explain: match map.get("explain") {
                Some(v) if !v.is_null() => Some(v.clone()),
                _ => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_fill_in() {
        let frame: RequestFrame =
            serde_json::from_str(r#"{"endpoint":"ping"}"#).expect("minimal frame parses");
        assert_eq!(frame.v, PROTOCOL_VERSION);
        assert_eq!(frame.id, 0);
        assert_eq!(frame.endpoint, "ping");
        assert!(frame.body.is_null());
    }

    #[test]
    fn request_roundtrips() {
        let frame = RequestFrame::new(42, "recommend", serde_json::json!({"sla": 98.0}));
        let text = serde_json::to_string(&frame).unwrap();
        let back: RequestFrame = serde_json::from_str(&text).unwrap();
        assert_eq!(back, frame);
    }

    #[test]
    fn missing_endpoint_rejected() {
        let err = serde_json::from_str::<RequestFrame>(r#"{"id":1}"#).unwrap_err();
        assert!(err.to_string().contains("endpoint"), "{err}");
    }

    #[test]
    fn response_roundtrips_and_omits_absent_fields() {
        let ok = ResponseFrame::ok(7, 3, serde_json::json!({"x": 1})).with_cached(true);
        let text = serde_json::to_string(&ok).unwrap();
        assert!(!text.contains("error"), "{text}");
        let back: ResponseFrame = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ok);

        let shed = ResponseFrame::shed(8, 3, "queue full");
        let text = serde_json::to_string(&shed).unwrap();
        assert!(!text.contains("body"), "{text}");
        let back: ResponseFrame = serde_json::from_str(&text).unwrap();
        assert_eq!(back, shed);
        assert_eq!(back.code, code::SHED);
    }
}
