//! The trait a serving daemon fronts: some domain service that can
//! fingerprint, execute, and epoch-stamp requests.
//!
//! `uptime-serve` is deliberately broker-agnostic — the daemon machinery
//! (admission control, caching, coalescing, draining) lives here, while
//! `uptime-broker` supplies the [`ServeBackend`] that knows what a
//! `SolutionRequest` is. That keeps the dependency arrow pointing one way
//! (broker → serve) and lets the daemon be tested with synthetic
//! backends.

use serde::Value;

/// Why a backend call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The request body did not parse or validate.
    BadRequest(String),
    /// The endpoint name is not served by this backend.
    UnknownEndpoint(String),
    /// The backend itself failed.
    Internal(String),
}

impl BackendError {
    /// The HTTP-flavored status code for this error.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            BackendError::BadRequest(_) => crate::protocol::code::BAD_REQUEST,
            BackendError::UnknownEndpoint(_) => crate::protocol::code::NOT_FOUND,
            BackendError::Internal(_) => crate::protocol::code::INTERNAL,
        }
    }

    /// The human-readable detail.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            BackendError::BadRequest(m) => format!("bad request: {m}"),
            BackendError::UnknownEndpoint(e) => format!("unknown endpoint `{e}`"),
            BackendError::Internal(m) => format!("internal error: {m}"),
        }
    }
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message())
    }
}

impl std::error::Error for BackendError {}

/// The domain service behind the daemon.
///
/// Implementations must be cheap to call concurrently: the worker pool
/// invokes `handle` from many threads at once.
pub trait ServeBackend: Send + Sync + 'static {
    /// The current telemetry epoch: a monotonically increasing counter
    /// bumped whenever the backend's knowledge base absorbs new inputs.
    /// Cached responses are only served while the epoch they were
    /// computed under is still current.
    fn epoch(&self) -> u64;

    /// A canonical fingerprint of `(endpoint, body)`, or `None` when the
    /// endpoint must not be cached or coalesced (mutating or
    /// time-varying endpoints such as `health`/`sync`).
    ///
    /// Semantically equal requests — regardless of float formatting or
    /// omitted defaulted fields in the client's JSON — must fingerprint
    /// identically; semantically different requests must (modulo hash
    /// collisions over a 128-bit space) differ.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::BadRequest`] for bodies that do not parse
    /// and [`BackendError::UnknownEndpoint`] for endpoints this backend
    /// does not serve.
    fn fingerprint(&self, endpoint: &str, body: &Value) -> Result<Option<u128>, BackendError>;

    /// Executes the request and returns the response body.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] classifying the failure.
    fn handle(&self, endpoint: &str, body: &Value) -> Result<Value, BackendError>;

    /// [`Self::handle`] under a request trace: backends that want their
    /// own stage spans in the flight recorder override this and hang
    /// children below `parent`. The default ignores the span — a backend
    /// without trace plumbing serves identically, it just contributes no
    /// sub-spans. The answer must be byte-identical to [`Self::handle`]:
    /// traces attribute time, they never change results.
    ///
    /// # Errors
    ///
    /// Same as [`Self::handle`].
    fn handle_traced(
        &self,
        endpoint: &str,
        body: &Value,
        parent: &uptime_obs::TraceSpan,
    ) -> Result<Value, BackendError> {
        let _ = parent;
        self.handle(endpoint, body)
    }
}
