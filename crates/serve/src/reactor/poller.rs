//! Readiness polling over raw syscalls — no `libc` crate, keeping the
//! workspace zero-dependency.
//!
//! Linux gets `epoll` (O(ready) wakeups, the production path); everything
//! else — and Linux with `UPTIME_SERVE_POLLER=poll` set, so the fallback
//! has test coverage on the platform we develop on — gets a portable
//! `poll(2)` set rebuilt per wait. Both present the same tiny interface:
//! register a file descriptor with a token and an interest, wait, get
//! `(token, readable, writable, hangup)` events back.

use std::io;
use std::os::unix::io::RawFd;

/// What a registered descriptor should wake the loop for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable (and hangup/error, which are always reported).
    Read,
    /// Readable or writable.
    ReadWrite,
}

/// One readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Data (or EOF) is readable.
    pub readable: bool,
    /// The socket can accept writes again.
    pub writable: bool,
    /// The peer hung up or the descriptor errored.
    pub hangup: bool,
}

/// A readiness poller: epoll where available, `poll(2)` otherwise.
pub enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Portable(PortablePoll),
}

impl Poller {
    /// Picks the best backend for the platform; the `UPTIME_SERVE_POLLER=poll`
    /// environment variable forces the portable fallback.
    pub fn new() -> io::Result<Self> {
        let forced = std::env::var_os("UPTIME_SERVE_POLLER").is_some_and(|v| v == "poll");
        #[cfg(target_os = "linux")]
        {
            if !forced {
                return Ok(Poller::Epoll(Epoll::new()?));
            }
        }
        let _ = forced;
        Ok(Poller::Portable(PortablePoll::new()))
    }

    /// A short name for logs and stats.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Portable(_) => "poll",
        }
    }

    /// Starts watching `fd`, reporting events under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest),
            Poller::Portable(p) => {
                p.entries.push(Entry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Changes the interest (or token) of a watched descriptor.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest),
            Poller::Portable(p) => {
                for entry in &mut p.entries {
                    if entry.fd == fd {
                        entry.token = token;
                        entry.interest = interest;
                        return Ok(());
                    }
                }
                Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
            }
        }
    }

    /// Stops watching `fd`. Call *before* the descriptor is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(ffi::EPOLL_CTL_DEL, fd, 0, Interest::Read),
            Poller::Portable(p) => {
                p.entries.retain(|entry| entry.fd != fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one event is ready (or `timeout_ms` elapses;
    /// `None` waits indefinitely), appending into `events` after clearing
    /// it. Interrupted waits are retried.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        events.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout_ms),
            Poller::Portable(p) => p.wait(events, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// epoll (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod ffi {
    //! The four syscalls the reactor needs, declared directly — the
    //! kernel ABI is stable and this avoids vendoring a libc crate.

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Matches the kernel's `struct epoll_event`: packed on x86-64, where
    /// the 64-bit `data` member is not 8-aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The epoll backend: one epoll instance per reactor shard.
#[cfg(target_os = "linux")]
pub struct Epoll {
    epfd: RawFd,
    buf: Vec<ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![ffi::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = ffi::EpollEvent {
            events: match interest {
                Interest::Read => ffi::EPOLLIN | ffi::EPOLLRDHUP,
                Interest::ReadWrite => ffi::EPOLLIN | ffi::EPOLLOUT | ffi::EPOLLRDHUP,
            },
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        let timeout = timeout_ms.unwrap_or(-1);
        loop {
            // SAFETY: `buf` is a live allocation of `buf.len()` events.
            let n = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for raw in &self.buf[..n as usize] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0,
                    writable: bits & ffi::EPOLLOUT != 0,
                    hangup: bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed exactly once.
        unsafe { ffi::close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// poll(2) fallback
// ---------------------------------------------------------------------------

mod poll_ffi {
    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long`, which matches the pointer width on
        // every unix target this builds for.
        pub fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }
}

struct Entry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

/// The portable backend: the registration list is replayed into a fresh
/// `pollfd` array per wait. O(n) per call, which is fine for a fallback.
pub struct PortablePoll {
    entries: Vec<Entry>,
    buf: Vec<poll_ffi::PollFd>,
}

impl PortablePoll {
    fn new() -> Self {
        PortablePoll {
            entries: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<()> {
        self.buf.clear();
        for entry in &self.entries {
            self.buf.push(poll_ffi::PollFd {
                fd: entry.fd,
                events: match entry.interest {
                    Interest::Read => poll_ffi::POLLIN,
                    Interest::ReadWrite => poll_ffi::POLLIN | poll_ffi::POLLOUT,
                },
                revents: 0,
            });
        }
        let timeout = timeout_ms.unwrap_or(-1);
        loop {
            // SAFETY: `buf` is a live array of `buf.len()` pollfds.
            let n = unsafe { poll_ffi::poll(self.buf.as_mut_ptr(), self.buf.len(), timeout) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for (slot, entry) in self.buf.iter().zip(&self.entries) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                events.push(Event {
                    token: entry.token,
                    readable: bits & (poll_ffi::POLLIN | poll_ffi::POLLHUP) != 0,
                    writable: bits & poll_ffi::POLLOUT != 0,
                    hangup: bits & (poll_ffi::POLLERR | poll_ffi::POLLHUP) != 0,
                });
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn readiness_roundtrip(mut poller: Poller) {
        let (mut tx, mut rx) = socket_pair();
        rx.set_nonblocking(true).expect("nonblocking");
        let mut events = Vec::new();

        poller
            .register(rx.as_raw_fd(), 7, Interest::Read)
            .expect("register");
        poller.wait(&mut events, Some(0)).expect("wait");
        assert!(events.iter().all(|e| !e.readable), "nothing written yet");

        tx.write_all(b"x").expect("write");
        poller.wait(&mut events, Some(1000)).expect("wait");
        let event = events
            .iter()
            .find(|e| e.token == 7)
            .expect("readable event");
        assert!(event.readable);
        let mut byte = [0u8; 8];
        assert_eq!(rx.read(&mut byte).expect("read"), 1);

        // Write interest on an idle socket reports writable immediately.
        poller
            .modify(rx.as_raw_fd(), 7, Interest::ReadWrite)
            .expect("modify");
        poller.wait(&mut events, Some(1000)).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        poller.deregister(rx.as_raw_fd()).expect("deregister");
        tx.write_all(b"y").expect("write");
        poller.wait(&mut events, Some(0)).expect("wait");
        assert!(
            events.iter().all(|e| e.token != 7),
            "deregistered fd is silent"
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        readiness_roundtrip(Poller::Epoll(Epoll::new().expect("epoll")));
    }

    #[test]
    fn portable_backend_reports_readiness() {
        readiness_roundtrip(Poller::Portable(PortablePoll::new()));
    }
}
