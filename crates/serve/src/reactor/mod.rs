//! The shared-nothing event-loop serving core (`--core reactor`).
//!
//! ```text
//!  clients ──► acceptor ──► shard 0 ─┐   each shard owns: poller (epoll),
//!              (round-robin  shard 1 ─┤   its connections' read/write
//!               fd handoff)  shard N ─┘   buffers, an EpochCache, and a
//!                               │         single-flight table — no locks
//!                               │ cold misses only                on the hot path
//!                               ▼
//!                        blocking compute pool ──► completions posted back
//!                        (BnB / frontier solves)    to the owning shard
//! ```
//!
//! Design rules, in order of importance:
//!
//! * **No cross-thread work on the hot path.** A cache hit is parsed,
//!   looked up, rendered, and written entirely on the shard that owns the
//!   connection. The only shared state it touches is the backend's atomic
//!   telemetry epoch.
//! * **Connections never migrate.** The acceptor hands each accepted fd to
//!   one shard round-robin; every subsequent byte of that connection is
//!   read, and every response written, by that shard alone.
//! * **Reactors never block.** Cold misses (branch-and-bound solves,
//!   frontier extractions) are dispatched to a small blocking compute
//!   pool; the shard keeps serving other connections and answers when the
//!   completion is posted back to its mailbox.
//! * **Backpressure is per shard.** Each shard admits at most
//!   `workers + queue_depth` outstanding computations; beyond that it
//!   sheds with a `429` immediately — same discipline, same wire reply as
//!   the threads core. Slow readers get write-interest registration and a
//!   bounded output buffer instead of a blocked thread.
//! * **Shutdown is a drain.** Every admitted computation is answered and
//!   flushed before a shard exits; the compute pool closes only after all
//!   shards have drained.

pub mod frame;
pub mod poller;

use std::collections::HashMap;
use std::io::{self, Read as IoRead, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use serde_json::Value;
use uptime_obs::{
    trace_seed_from_bytes, trace_seed_from_fingerprint, ActiveTrace, FlightRecorder,
    MetricsRegistry, Recorder, TraceOutcome, TraceSpan,
};

use crate::backend::{BackendError, ServeBackend};
use crate::cache::{EpochCache, Lookup};
use crate::protocol::{code, RequestFrame, ResponseFrame};
use crate::queue::{BoundedQueue, PushError};
use crate::server::{
    cache_by_endpoint, explain_value, render_ok_line, sanitize_endpoint, shard_section,
    trace_stats_value, traces_export, ServerConfig,
};
use frame::{FrameScanner, Scan};
use poller::{Event, Interest, Poller};

/// Token reserved for each shard's wake socket.
const WAKE_TOKEN: u64 = 0;
/// Bytes read per connection per readiness event before yielding to other
/// connections (level-triggered polling re-reports the remainder).
const READ_BURST: usize = 256 * 1024;
/// A connection whose unflushed output exceeds this is a slow reader that
/// stopped draining; it is dropped rather than allowed to buffer the
/// daemon into the ground.
const WRITE_BUF_CAP: usize = 16 * 1024 * 1024;

/// One cold request handed to the compute pool.
struct ComputeJob {
    shard: usize,
    token: u64,
    frame_id: u64,
    explain: bool,
    endpoint: String,
    body: Value,
    fingerprint: Option<u128>,
    trace: ActiveTrace,
    received: Instant,
}

/// A finished computation posted back to the owning shard.
struct Completion {
    token: u64,
    frame_id: u64,
    explain: bool,
    endpoint: String,
    fingerprint: Option<u128>,
    result: Result<(Arc<str>, u64), BackendError>,
    trace: ActiveTrace,
    received: Instant,
}

/// A coalesced follower parked on an in-flight computation.
struct Waiter {
    token: u64,
    frame_id: u64,
    explain: bool,
    received: Instant,
    trace: ActiveTrace,
    /// Held open for the duration of the wait; dropped (completing the
    /// span) just before the follower's trace finishes.
    wait_span: Option<TraceSpan>,
}

#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The cross-thread doorway into a shard: new connections from the
/// acceptor, completions from the compute pool, and a wake socket to kick
/// the shard's poller. Never touched on the hot path.
struct Mailbox {
    inbox: Mutex<Inbox>,
    wake_tx: TcpStream,
    cache_len: AtomicUsize,
}

impl Mailbox {
    fn wake(&self) {
        // A full wake pipe means the shard already has a pending wakeup.
        let _ = (&self.wake_tx).write(&[1u8]);
    }
}

/// State shared by the acceptor, all shards, and the compute pool.
struct Shared {
    backend: Arc<dyn ServeBackend>,
    registry: Arc<MetricsRegistry>,
    tracer: Option<Arc<FlightRecorder>>,
    compute: BoundedQueue<ComputeJob>,
    shutdown: AtomicBool,
    inflight: AtomicI64,
    local_addr: SocketAddr,
    max_frame_bytes: usize,
    read_timeout_ms: u64,
    /// Per-shard admission budget (outstanding computations).
    budget: usize,
    mailboxes: Vec<Mailbox>,
    poller_kind: &'static str,
}

/// A running reactor daemon; constructed through `Server::start` with
/// `core: ServeCore::Reactor`.
pub struct ReactorHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    pub(crate) fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.registry)
    }

    pub(crate) fn cache_len(&self) -> usize {
        self.shared
            .mailboxes
            .iter()
            .map(|m| m.cache_len.load(Ordering::Acquire))
            .sum()
    }

    pub(crate) fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.tracer.clone()
    }

    pub(crate) fn shutdown(&mut self) {
        begin_shutdown(&self.shared);
        self.join_threads();
    }

    pub(crate) fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        // Shards only exit once every admitted computation has been
        // answered, so the pool's queue is empty here and closing it just
        // releases the idle workers.
        self.shared.compute.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Begins (idempotently) the reactor drain: stop accepting, wake every
/// shard so it notices, let outstanding computations finish.
fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::AcqRel) {
        return;
    }
    shared.registry.event("serve.lifecycle", "drain begun");
    // Unblock the acceptor with a no-op connection to ourselves.
    let _ = TcpStream::connect(shared.local_addr);
    for mailbox in &shared.mailboxes {
        mailbox.wake();
    }
}

/// A loopback socket pair standing in for `pipe(2)` — both ends
/// nonblocking, write one byte to wake, drain on the other side.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    let _ = tx.set_nodelay(true);
    Ok((tx, rx))
}

fn default_shards() -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(1, 8)
}

/// Binds and spawns the acceptor, `shards` reactor shards, and the
/// compute pool. Mirrors `Server::start` for the threads core.
pub(crate) fn start(
    backend: Arc<dyn ServeBackend>,
    config: &ServerConfig,
    registry: Arc<MetricsRegistry>,
    tracer: Option<Arc<FlightRecorder>>,
) -> io::Result<ReactorHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shard_count = if config.shards == 0 {
        default_shards()
    } else {
        config.shards
    };
    let pool_workers = config.workers.max(1);
    let budget = pool_workers + config.queue_depth.max(1);

    let mut mailboxes = Vec::with_capacity(shard_count);
    let mut wake_rxs = Vec::with_capacity(shard_count);
    let mut pollers = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let (tx, rx) = wake_pair()?;
        mailboxes.push(Mailbox {
            inbox: Mutex::new(Inbox::default()),
            wake_tx: tx,
            cache_len: AtomicUsize::new(0),
        });
        wake_rxs.push(rx);
        pollers.push(Poller::new()?);
    }
    let poller_kind = pollers[0].kind();

    let shared = Arc::new(Shared {
        backend,
        registry,
        tracer,
        compute: BoundedQueue::new((budget * shard_count).max(64)),
        shutdown: AtomicBool::new(false),
        inflight: AtomicI64::new(0),
        local_addr,
        max_frame_bytes: config.max_frame_bytes.max(1),
        read_timeout_ms: config.read_timeout_ms,
        budget,
        mailboxes,
        poller_kind,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || accept_loop(&shared, &listener))
    };
    let shards = wake_rxs
        .into_iter()
        .zip(pollers)
        .enumerate()
        .map(|(index, (wake_rx, poller))| {
            let shared = Arc::clone(&shared);
            let cache_capacity = config.cache_capacity;
            thread::spawn(move || {
                Shard::new(index, shared, poller, wake_rx, cache_capacity).run();
            })
        })
        .collect();
    let workers = (0..pool_workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || compute_loop(&shared))
        })
        .collect();

    Ok(ReactorHandle {
        shared,
        acceptor: Some(acceptor),
        shards,
        workers,
    })
}

/// Blocking accept, round-robin fd handoff. This is the one cross-thread
/// hop a connection ever takes, and it happens exactly once, off the
/// request hot path.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        shared.registry.counter_add("serve.connections", 1);
        let shard = next % shared.mailboxes.len();
        next = next.wrapping_add(1);
        shared
            .registry
            .counter_add(&format!("serve.shard.{shard}.accepted"), 1);
        let mailbox = &shared.mailboxes[shard];
        mailbox.inbox.lock().expect("inbox lock").conns.push(stream);
        mailbox.wake();
    }
}

/// The blocking compute pool: executes backend handlers for cold misses
/// and uncacheable endpoints so a branch-and-bound solve never stalls a
/// reactor. Exits when the queue is closed and drained.
fn compute_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.compute.pop() {
        let epoch_before = shared.backend.epoch();
        let result = {
            let mut exec_span = job.trace.root().child("serve.execute");
            if job.fingerprint.is_some() {
                exec_span.attr_flag("leader", true);
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared
                    .backend
                    .handle_traced(&job.endpoint, &job.body, &exec_span)
            }));
            match outcome {
                Ok(Ok(value)) => {
                    let _render_span = exec_span.child("serve.render");
                    match serde_json::to_string(&value) {
                        Ok(text) => Ok((Arc::from(text) as Arc<str>, epoch_before)),
                        Err(err) => Err(BackendError::Internal(format!(
                            "unserializable body: {err}"
                        ))),
                    }
                }
                Ok(Err(err)) => Err(err),
                Err(_) => Err(BackendError::Internal("backend panicked".into())),
            }
        };
        let mailbox = &shared.mailboxes[job.shard];
        mailbox
            .inbox
            .lock()
            .expect("inbox lock")
            .completions
            .push(Completion {
                token: job.token,
                frame_id: job.frame_id,
                explain: job.explain,
                endpoint: job.endpoint,
                fingerprint: job.fingerprint,
                result,
                trace: job.trace,
                received: job.received,
            });
        mailbox.wake();
    }
}

/// One connection's state machine, owned end-to-end by its shard.
struct Conn {
    stream: TcpStream,
    scanner: FrameScanner,
    out: Vec<u8>,
    out_pos: usize,
    interest: Interest,
    /// Responses still owed by in-flight computations or waits.
    pending: usize,
    last_activity: Instant,
    /// Send what's buffered, then hang up (oversized frame teardown).
    close_after_flush: bool,
    /// EOF seen (or reading abandoned); close once nothing is owed.
    read_closed: bool,
    /// Unrecoverable I/O error; close immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Self {
        Conn {
            stream,
            scanner: FrameScanner::new(max_frame),
            out: Vec::new(),
            out_pos: 0,
            interest: Interest::Read,
            pending: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
            read_closed: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos == self.out.len()
    }
}

/// One reactor shard: a poller, the connections it owns, a shard-local
/// cache and single-flight table, and an admission budget.
struct Shard {
    index: usize,
    shared: Arc<Shared>,
    poller: Poller,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cache: EpochCache,
    flights: HashMap<u128, Vec<Waiter>>,
    outstanding: usize,
    draining: bool,
}

impl Shard {
    fn new(
        index: usize,
        shared: Arc<Shared>,
        mut poller: Poller,
        wake_rx: TcpStream,
        cache_capacity: usize,
    ) -> Self {
        poller
            .register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::Read)
            .expect("wake socket registers");
        Shard {
            index,
            shared,
            poller,
            wake_rx,
            conns: HashMap::new(),
            next_token: 1,
            cache: EpochCache::new(cache_capacity),
            flights: HashMap::new(),
            outstanding: 0,
            draining: false,
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller would otherwise spin; back off briefly.
                thread::sleep(std::time::Duration::from_millis(20));
            }
            let mut woken = false;
            let conn_events: Vec<Event> = events
                .iter()
                .copied()
                .filter(|event| {
                    if event.token == WAKE_TOKEN {
                        woken = true;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            if woken {
                self.drain_wake();
            }
            self.process_inbox();
            for event in conn_events {
                self.on_conn_event(event);
            }
            if !self.draining && self.shared.shutdown.load(Ordering::Acquire) {
                self.draining = true;
            }
            self.sweep_idle();
            if self.draining && self.outstanding == 0 && self.all_flushed() {
                break;
            }
        }
        // Drain finished: every owed response is flushed; hang up.
        for (_, conn) in self.conns.drain() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
    }

    fn poll_timeout(&self) -> Option<i32> {
        if self.draining {
            return Some(50);
        }
        if self.shared.read_timeout_ms > 0 && !self.conns.is_empty() {
            let quarter = (self.shared.read_timeout_ms / 4).clamp(10, 1000);
            return Some(quarter as i32);
        }
        // Nothing to time out: sleep until the poller or mailbox wakes us.
        Some(1000)
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn process_inbox(&mut self) {
        let (conns, completions) = {
            let mut inbox = self.shared.mailboxes[self.index]
                .inbox
                .lock()
                .expect("inbox lock");
            (
                std::mem::take(&mut inbox.conns),
                std::mem::take(&mut inbox.completions),
            )
        };
        for stream in conns {
            if self.draining {
                continue; // dropped: the daemon is going away
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(stream.as_raw_fd(), token, Interest::Read)
                .is_err()
            {
                continue;
            }
            self.conns
                .insert(token, Conn::new(stream, self.shared.max_frame_bytes));
        }
        for completion in completions {
            self.on_completion(completion);
        }
    }

    fn on_conn_event(&mut self, event: Event) {
        if !self.conns.contains_key(&event.token) {
            return;
        }
        if event.writable {
            self.flush(event.token);
        }
        if event.readable {
            self.on_readable(event.token);
        }
        if event.hangup {
            if let Some(conn) = self.conns.get_mut(&event.token) {
                conn.read_closed = true;
            }
        }
        self.maybe_close(event.token);
    }

    /// Reads until the socket would block (bounded per event so one
    /// fire-hosing client cannot starve its shard-mates), scanning frames
    /// incrementally and dispatching each.
    fn on_readable(&mut self, token: u64) {
        let mut lines: Vec<String> = Vec::new();
        let mut oversized = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.last_activity = Instant::now();
            let mut chunk = [0u8; 16 * 1024];
            let mut read_total = 0usize;
            'reading: while read_total < READ_BURST {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        read_total += n;
                        conn.scanner.extend(&chunk[..n]);
                        loop {
                            match conn.scanner.next_frame() {
                                Scan::Frame(range) => {
                                    let bytes = &conn.scanner.bytes()[range];
                                    lines.push(String::from_utf8_lossy(bytes).into_owned());
                                }
                                Scan::Incomplete => break,
                                Scan::Oversized => {
                                    oversized = true;
                                    conn.read_closed = true;
                                    break 'reading;
                                }
                            }
                        }
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.read_closed = true;
                        break;
                    }
                }
            }
        }
        for line in lines {
            if !self.conns.contains_key(&token) {
                return; // torn down mid-burst (e.g. write overflow)
            }
            if line.trim().is_empty() {
                continue;
            }
            self.handle_frame(token, &line);
        }
        if oversized {
            self.shared.registry.counter_add("serve.conn.oversized", 1);
            let response = ResponseFrame::error(
                0,
                self.shared.backend.epoch(),
                code::BAD_REQUEST,
                format!(
                    "frame exceeds {} byte cap; connection closed",
                    self.shared.max_frame_bytes
                ),
            );
            self.send_frame(token, &response);
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.close_after_flush = true;
            }
        }
    }

    /// Routes one parsed frame — the reactor's `dispatch`: admin endpoints
    /// answered inline on the shard, business endpoints through admission
    /// control into cache/flight/compute.
    fn handle_frame(&mut self, token: u64, line: &str) {
        let received = Instant::now();
        let frame = match serde_json::from_str::<RequestFrame>(line) {
            Ok(frame) => frame,
            Err(err) => {
                self.shared.registry.counter_add("serve.parse_error", 1);
                let response = ResponseFrame::error(
                    0,
                    self.shared.backend.epoch(),
                    code::BAD_REQUEST,
                    format!("bad frame: {err}"),
                );
                self.send_frame(token, &response);
                return;
            }
        };
        match frame.endpoint.as_str() {
            "ping" => {
                // `shard` makes the no-migration guarantee observable —
                // every ping on one connection reports the same shard.
                let body = serde_json::json!({ "pong": true, "shard": self.index as u64 });
                let response = ResponseFrame::ok(frame.id, self.shared.backend.epoch(), body);
                self.send_frame(token, &response);
            }
            "stats" => {
                let body = self.stats_body();
                let response = ResponseFrame::ok(frame.id, self.shared.backend.epoch(), body);
                self.send_frame(token, &response);
            }
            "traces" => {
                let response = match traces_export(self.shared.tracer.as_deref(), &frame.body) {
                    Ok(body) => ResponseFrame::ok(frame.id, self.shared.backend.epoch(), body),
                    Err(detail) => ResponseFrame::error(
                        frame.id,
                        self.shared.backend.epoch(),
                        code::BAD_REQUEST,
                        detail,
                    ),
                };
                self.send_frame(token, &response);
            }
            "shutdown" => {
                let response = ResponseFrame::ok(
                    frame.id,
                    self.shared.backend.epoch(),
                    serde_json::json!({ "draining": true }),
                );
                self.send_frame(token, &response);
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || begin_shutdown(&shared));
            }
            _ => self.handle_business(token, frame, received),
        }
    }

    fn handle_business(&mut self, token: u64, frame: RequestFrame, received: Instant) {
        let shared = Arc::clone(&self.shared);
        let registry = &shared.registry;
        if self.draining || shared.shutdown.load(Ordering::Acquire) {
            registry.counter_add("serve.drain.refused", 1);
            let response = ResponseFrame::error(
                frame.id,
                shared.backend.epoch(),
                code::DRAINING,
                "daemon is draining",
            );
            self.send_frame(token, &response);
            return;
        }
        // Admission first, exactly like the threads core's bounded queue:
        // at budget the request is shed before any work is done for it.
        if self.outstanding >= shared.budget {
            self.shed(token, &frame);
            return;
        }

        let endpoint = frame.endpoint.as_str();
        let fingerprinted = shared.backend.fingerprint(endpoint, &frame.body);
        let trace = match &shared.tracer {
            Some(tracer) => {
                let seed = match &fingerprinted {
                    Ok(Some(fingerprint)) => trace_seed_from_fingerprint(*fingerprint),
                    _ => trace_seed_from_bytes(endpoint.as_bytes()),
                };
                let trace = tracer.begin(seed, &sanitize_endpoint(endpoint));
                trace
                    .root()
                    .child_completed_ns("serve.queue.wait", received.elapsed().as_nanos() as u64);
                trace
            }
            None => ActiveTrace::disabled(),
        };

        match fingerprinted {
            Err(err) => {
                let result: Result<(Arc<str>, u64), BackendError> = Err(err);
                self.answer(AnswerCtx {
                    token,
                    frame_id: frame.id,
                    explain: frame.explain,
                    endpoint,
                    received,
                    trace,
                    result: &result,
                    coalesced: false,
                    live_epoch: true,
                    pending_booked: false,
                });
            }
            // Uncacheable endpoint (e.g. `sync`): straight to the pool.
            Ok(None) => self.dispatch(token, frame, received, trace, None),
            Ok(Some(fingerprint)) => {
                let cache_label = sanitize_endpoint(endpoint);
                let epoch_now = shared.backend.epoch();
                let lookup = {
                    let mut cache_span = trace.root().child("serve.cache.lookup");
                    let lookup = self.cache.lookup(fingerprint, epoch_now);
                    cache_span.attr_text(
                        "verdict",
                        match &lookup {
                            Lookup::Hit(_) => "hit",
                            Lookup::Stale => "stale",
                            _ => "miss",
                        },
                    );
                    lookup
                };
                match lookup {
                    Lookup::Hit(body) => {
                        registry.counter_add("serve.cache.hit", 1);
                        registry.counter_add(&format!("serve.cache.{cache_label}.hit"), 1);
                        let record = trace.finish(TraceOutcome::Ok);
                        let explain_text = if frame.explain {
                            record
                                .as_ref()
                                .and_then(|r| serde_json::to_string(&explain_value(r)).ok())
                        } else {
                            None
                        };
                        registry.counter_add("serve.responses", 1);
                        registry.counter_add(&format!("serve.shard.{}.served", self.index), 1);
                        let line = render_ok_line(
                            frame.id,
                            epoch_now,
                            true,
                            false,
                            &body,
                            explain_text.as_deref(),
                        );
                        self.write_bytes(token, line.as_bytes());
                        registry.observe(
                            &format!("serve.{cache_label}.ns"),
                            received.elapsed().as_nanos() as f64,
                        );
                    }
                    probe => {
                        let verdict = match probe {
                            Lookup::Stale => "stale",
                            _ => "miss",
                        };
                        registry.counter_add(&format!("serve.cache.{verdict}"), 1);
                        registry.counter_add(&format!("serve.cache.{cache_label}.{verdict}"), 1);
                        self.publish_cache_len();
                        if let Some(waiters) = self.flights.get_mut(&fingerprint) {
                            // Shard-local single flight: park on the
                            // in-progress computation, no second execute.
                            registry.counter_add("serve.coalesced", 1);
                            let wait_span = Some(trace.root().child("serve.flight.wait"));
                            waiters.push(Waiter {
                                token,
                                frame_id: frame.id,
                                explain: frame.explain,
                                received,
                                trace,
                                wait_span,
                            });
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.pending += 1;
                            }
                        } else {
                            self.flights.insert(fingerprint, Vec::new());
                            self.dispatch(token, frame, received, trace, Some(fingerprint));
                        }
                    }
                }
            }
        }
    }

    fn shed(&mut self, token: u64, frame: &RequestFrame) {
        let shared = &self.shared;
        shared.registry.counter_add("serve.shed", 1);
        shared
            .registry
            .counter_add(&format!("serve.shard.{}.shed", self.index), 1);
        // Sheds are always tail-sampling keepers: record a one-span trace
        // so overload shows up in the ring.
        if let Some(tracer) = &shared.tracer {
            let endpoint = sanitize_endpoint(&frame.endpoint);
            let trace = tracer.begin(trace_seed_from_bytes(endpoint.as_bytes()), &endpoint);
            trace.finish(TraceOutcome::Shed);
        }
        let response =
            ResponseFrame::shed(frame.id, shared.backend.epoch(), "queue full; retry later");
        self.send_frame(token, &response);
    }

    /// Hands a cold request to the compute pool and books the budget.
    fn dispatch(
        &mut self,
        token: u64,
        frame: RequestFrame,
        received: Instant,
        trace: ActiveTrace,
        fingerprint: Option<u128>,
    ) {
        let shared = Arc::clone(&self.shared);
        let job = ComputeJob {
            shard: self.index,
            token,
            frame_id: frame.id,
            explain: frame.explain,
            endpoint: frame.endpoint,
            body: frame.body,
            fingerprint,
            trace,
            received,
        };
        match shared.compute.try_push(job) {
            Ok(()) => {
                self.outstanding += 1;
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.pending += 1;
                }
                let inflight = shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
                shared.registry.gauge_set("serve.inflight", inflight as f64);
                shared
                    .registry
                    .observe("serve.queue.depth", shared.compute.len() as f64);
            }
            Err(PushError::Full(job)) => {
                // Only reachable if budgets are misconfigured below the
                // queue capacity; shed rather than hang.
                if let Some(fp) = job.fingerprint {
                    self.flights.remove(&fp);
                }
                job.trace.finish(TraceOutcome::Shed);
                shared.registry.counter_add("serve.shed", 1);
                shared
                    .registry
                    .counter_add(&format!("serve.shard.{}.shed", self.index), 1);
                let response = ResponseFrame::shed(
                    job.frame_id,
                    shared.backend.epoch(),
                    "queue full; retry later",
                );
                self.send_frame(token, &response);
            }
            Err(PushError::Closed(job)) => {
                if let Some(fp) = job.fingerprint {
                    self.flights.remove(&fp);
                }
                job.trace.finish(TraceOutcome::Error(code::DRAINING));
                shared.registry.counter_add("serve.drain.refused", 1);
                let response = ResponseFrame::error(
                    job.frame_id,
                    shared.backend.epoch(),
                    code::DRAINING,
                    "daemon is draining",
                );
                self.send_frame(token, &response);
            }
        }
    }

    /// A computation came back: cache it (unless an absorb raced it),
    /// answer the leader and every coalesced waiter.
    fn on_completion(&mut self, completion: Completion) {
        self.outstanding = self.outstanding.saturating_sub(1);
        let inflight = self.shared.inflight.fetch_sub(1, Ordering::AcqRel) - 1;
        self.shared
            .registry
            .gauge_set("serve.inflight", inflight as f64);
        if let Some(fingerprint) = completion.fingerprint {
            if let Ok((body, computed_under)) = &completion.result {
                // Cache only if no absorb raced the run; the entry's epoch
                // is the one the answer was computed under, so a racing
                // bump still invalidates on the next lookup.
                if self.shared.backend.epoch() == *computed_under {
                    self.cache
                        .insert(fingerprint, *computed_under, Arc::clone(body));
                    self.publish_cache_len();
                }
            }
        }
        let waiters = completion
            .fingerprint
            .and_then(|fp| self.flights.remove(&fp))
            .unwrap_or_default();
        // Uncacheable endpoints (e.g. `sync`) may have moved the epoch
        // themselves, so their reply reports the live epoch; cacheable
        // answers report the epoch they were computed under.
        let live_epoch = completion.fingerprint.is_none();
        self.answer(AnswerCtx {
            token: completion.token,
            frame_id: completion.frame_id,
            explain: completion.explain,
            endpoint: &completion.endpoint,
            received: completion.received,
            trace: completion.trace,
            result: &completion.result,
            coalesced: false,
            live_epoch,
            pending_booked: true,
        });
        for waiter in waiters {
            drop(waiter.wait_span);
            self.answer(AnswerCtx {
                token: waiter.token,
                frame_id: waiter.frame_id,
                explain: waiter.explain,
                endpoint: &completion.endpoint,
                received: waiter.received,
                trace: waiter.trace,
                result: &completion.result,
                coalesced: true,
                live_epoch: false,
                pending_booked: true,
            });
        }
    }

    /// Finishes one request's trace, renders its reply, and writes it.
    fn answer(&mut self, ctx: AnswerCtx<'_>) {
        let shared = Arc::clone(&self.shared);
        let registry = &shared.registry;
        let mut known_endpoint = true;
        // Count before writing so a client that has its response in hand
        // is guaranteed to see it reflected in the counters.
        registry.counter_add("serve.responses", 1);
        registry.counter_add(&format!("serve.shard.{}.served", self.index), 1);
        match ctx.result {
            Ok((body, computed_under)) => {
                let epoch = if ctx.live_epoch {
                    shared.backend.epoch()
                } else {
                    *computed_under
                };
                let record = ctx.trace.finish(TraceOutcome::Ok);
                let explain_text = if ctx.explain {
                    record
                        .as_ref()
                        .and_then(|r| serde_json::to_string(&explain_value(r)).ok())
                } else {
                    None
                };
                let line = render_ok_line(
                    ctx.frame_id,
                    epoch,
                    false,
                    ctx.coalesced,
                    body,
                    explain_text.as_deref(),
                );
                self.write_bytes(ctx.token, line.as_bytes());
            }
            Err(err) => {
                known_endpoint = !matches!(err, BackendError::UnknownEndpoint(_));
                let record = ctx.trace.finish(TraceOutcome::Error(err.code()));
                let mut response = ResponseFrame::error(
                    ctx.frame_id,
                    shared.backend.epoch(),
                    err.code(),
                    err.message(),
                );
                if ctx.explain {
                    response.explain = record.as_ref().map(|r| explain_value(r));
                }
                self.send_frame(ctx.token, &response);
            }
        }
        let label = if known_endpoint {
            sanitize_endpoint(ctx.endpoint)
        } else {
            "unknown".to_owned()
        };
        registry.observe(
            &format!("serve.{label}.ns"),
            ctx.received.elapsed().as_nanos() as f64,
        );
        if ctx.pending_booked {
            if let Some(conn) = self.conns.get_mut(&ctx.token) {
                conn.pending = conn.pending.saturating_sub(1);
            }
        }
        self.maybe_close(ctx.token);
    }

    fn publish_cache_len(&self) {
        self.shared.mailboxes[self.index]
            .cache_len
            .store(self.cache.len(), Ordering::Release);
    }

    /// The `stats` body — same shape as the threads core, plus the core
    /// tag and the per-shard counter section.
    fn stats_body(&self) -> Value {
        let shared = &self.shared;
        let snap = shared.registry.snapshot();
        let counter = |name: &str| snap.counter(name).unwrap_or(0);
        let cache_size: usize = shared
            .mailboxes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                if i == self.index {
                    self.cache.len()
                } else {
                    m.cache_len.load(Ordering::Acquire)
                }
            })
            .sum();
        serde_json::json!({
            "epoch": shared.backend.epoch(),
            "cache": {
                "hit": counter("serve.cache.hit"),
                "miss": counter("serve.cache.miss"),
                "stale": counter("serve.cache.stale"),
                "size": cache_size as u64,
            },
            "cache_by_endpoint": cache_by_endpoint(&snap),
            "coalesced": counter("serve.coalesced"),
            "shed": counter("serve.shed"),
            "responses": counter("serve.responses"),
            "connections": counter("serve.connections"),
            "conn": {
                "oversized": counter("serve.conn.oversized"),
                "idle_dropped": counter("serve.conn.idle_dropped"),
            },
            "queue_depth": shared.compute.len() as u64,
            "inflight": shared.inflight.load(Ordering::Acquire),
            "core": "reactor",
            "poller": shared.poller_kind,
            "shards": shard_section(&snap),
            "trace": trace_stats_value(shared.tracer.as_deref()),
        })
    }

    // -- write path ---------------------------------------------------------

    fn send_frame(&mut self, token: u64, frame: &ResponseFrame) {
        let Ok(mut text) = serde_json::to_string(frame) else {
            return;
        };
        text.push('\n');
        self.write_bytes(token, text.as_bytes());
    }

    /// Appends to the connection's output buffer and flushes as much as
    /// the socket will take; leftovers arm write interest.
    fn write_bytes(&mut self, token: u64, bytes: &[u8]) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // connection already torn down; drop the reply
            };
            conn.out.extend_from_slice(bytes);
        }
        self.flush(token);
    }

    fn flush(&mut self, token: u64) {
        let (fd, had, want) = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                    Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // The client went away; deliberately ignored, as
                        // in the threads core.
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.flushed() {
                conn.out.clear();
                conn.out_pos = 0;
                if conn.out.capacity() > 256 * 1024 {
                    conn.out.shrink_to(64 * 1024);
                }
            } else if conn.out_pos > 1024 * 1024 {
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
            if conn.out.len() - conn.out_pos > WRITE_BUF_CAP {
                conn.dead = true; // slow reader that stopped draining
            }
            (
                conn.stream.as_raw_fd(),
                conn.interest,
                if conn.flushed() {
                    Interest::Read
                } else {
                    Interest::ReadWrite
                },
            )
        };
        if want != had && self.poller.modify(fd, token, want).is_ok() {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.interest = want;
            }
        }
    }

    fn maybe_close(&mut self, token: u64) {
        let close = {
            let Some(conn) = self.conns.get(&token) else {
                return;
            };
            conn.dead
                || (conn.close_after_flush && conn.flushed())
                || (conn.read_closed && conn.pending == 0 && conn.flushed())
        };
        if close {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }

    fn all_flushed(&self) -> bool {
        self.conns.values().all(Conn::flushed)
    }

    /// Drops connections that have been silent past the idle read timeout
    /// (nothing owed to them) — the reactor's slowloris defense.
    fn sweep_idle(&mut self) {
        if self.shared.read_timeout_ms == 0 || self.conns.is_empty() {
            return;
        }
        let timeout = std::time::Duration::from_millis(self.shared.read_timeout_ms);
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| {
                conn.pending == 0 && conn.flushed() && conn.last_activity.elapsed() >= timeout
            })
            .map(|(token, _)| *token)
            .collect();
        for token in idle {
            self.shared
                .registry
                .counter_add("serve.conn.idle_dropped", 1);
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }
}

/// Everything [`Shard::answer`] needs to finish one request.
struct AnswerCtx<'a> {
    token: u64,
    frame_id: u64,
    explain: bool,
    endpoint: &'a str,
    received: Instant,
    trace: ActiveTrace,
    result: &'a Result<(Arc<str>, u64), BackendError>,
    coalesced: bool,
    /// Report `backend.epoch()` at reply time instead of the epoch the
    /// answer was computed under (uncacheable endpoints move it).
    live_epoch: bool,
    /// Whether this request booked a pending response on its connection
    /// (dispatched or coalesced requests do; inline error replies don't).
    pending_booked: bool,
}
