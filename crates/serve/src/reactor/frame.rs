//! Incremental newline-frame scanning over a reused per-connection buffer.
//!
//! The legacy core gives every connection a `BufReader` and re-reads lines
//! through `read_until`; here one [`FrameScanner`] per connection owns a
//! single growable buffer that is appended to as bytes arrive and scanned
//! incrementally — each byte is examined for `\n` exactly once, however
//! the frames are split or batched across socket reads.
//!
//! Growth is bounded: once more than `max_frame` bytes accumulate without
//! a newline the scanner reports [`Scan::Oversized`] and the caller
//! answers `400` and hangs up, so a hostile client can never buffer the
//! daemon into the ground. Consumed frames are compacted away whenever
//! the scanner drains, keeping the steady-state footprint at one partial
//! frame.

use std::ops::Range;

/// Outcome of one [`FrameScanner::next_frame`] probe.
#[derive(Debug, PartialEq, Eq)]
pub enum Scan {
    /// A complete frame: the byte range of the line (newline excluded)
    /// within [`FrameScanner::bytes`]. The range is already consumed —
    /// the next probe moves past it.
    Frame(Range<usize>),
    /// No complete frame buffered yet; feed more bytes.
    Incomplete,
    /// The pending line exceeds the frame cap (with or without its
    /// newline in sight). The connection should be answered with a `400`
    /// and closed; the scanner is poisoned and keeps reporting this.
    Oversized,
}

/// A per-connection incremental line scanner with bounded buffering.
pub struct FrameScanner {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte.
    pos: usize,
    /// How far the newline search has progressed; bytes before this have
    /// been examined exactly once.
    scanned: usize,
    max_frame: usize,
    oversized: bool,
}

impl FrameScanner {
    /// A scanner admitting frames of at most `max_frame` bytes (newline
    /// excluded; minimum 1).
    #[must_use]
    pub fn new(max_frame: usize) -> Self {
        FrameScanner {
            buf: Vec::new(),
            pos: 0,
            scanned: 0,
            max_frame: max_frame.max(1),
            oversized: false,
        }
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The underlying buffer; index with the range from [`Scan::Frame`].
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Scans for the next complete frame. See [`Scan`].
    pub fn next_frame(&mut self) -> Scan {
        if self.oversized {
            return Scan::Oversized;
        }
        if let Some(offset) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let newline = self.scanned + offset;
            let frame = self.pos..newline;
            self.pos = newline + 1;
            self.scanned = self.pos;
            if frame.len() > self.max_frame {
                self.oversized = true;
                return Scan::Oversized;
            }
            return Scan::Frame(frame);
        }
        self.scanned = self.buf.len();
        if self.buffered() > self.max_frame {
            self.oversized = true;
            return Scan::Oversized;
        }
        self.compact();
        Scan::Incomplete
    }

    /// Drops consumed bytes so the buffer only ever holds the pending
    /// partial frame, and releases outsized capacity left over from a
    /// large (but legal) frame.
    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.scanned -= self.pos;
            self.pos = 0;
        }
        let cap_floor = self.max_frame.clamp(4096, 64 * 1024);
        if self.buf.capacity() > 2 * cap_floor && self.buf.len() <= cap_floor {
            self.buf.shrink_to(cap_floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_text(scanner: &FrameScanner, range: Range<usize>) -> String {
        String::from_utf8_lossy(&scanner.bytes()[range]).into_owned()
    }

    #[test]
    fn whole_frame_in_one_read() {
        let mut s = FrameScanner::new(64);
        s.extend(b"{\"endpoint\":\"ping\"}\n");
        match s.next_frame() {
            Scan::Frame(r) => assert_eq!(frame_text(&s, r), "{\"endpoint\":\"ping\"}"),
            other => panic!("expected frame, got {other:?}"),
        }
        assert_eq!(s.next_frame(), Scan::Incomplete);
        assert_eq!(s.buffered(), 0, "consumed frames are compacted away");
    }

    #[test]
    fn frame_split_across_reads_reassembles() {
        let mut s = FrameScanner::new(64);
        s.extend(b"{\"endpoint\":");
        assert_eq!(s.next_frame(), Scan::Incomplete);
        s.extend(b"\"ping\"}");
        assert_eq!(s.next_frame(), Scan::Incomplete);
        s.extend(b"\n{\"id\":2}\n");
        match s.next_frame() {
            Scan::Frame(r) => assert_eq!(frame_text(&s, r), "{\"endpoint\":\"ping\"}"),
            other => panic!("{other:?}"),
        }
        match s.next_frame() {
            Scan::Frame(r) => assert_eq!(frame_text(&s, r), "{\"id\":2}"),
            other => panic!("{other:?}"),
        }
        assert_eq!(s.next_frame(), Scan::Incomplete);
    }

    #[test]
    fn oversized_without_newline_poisons() {
        let mut s = FrameScanner::new(8);
        s.extend(b"aaaaaaaaaa"); // 10 > 8, no newline yet
        assert_eq!(s.next_frame(), Scan::Oversized);
        s.extend(b"\n{\"id\":1}\n");
        assert_eq!(
            s.next_frame(),
            Scan::Oversized,
            "poisoned scanners stay poisoned"
        );
    }

    #[test]
    fn oversized_with_newline_poisons() {
        let mut s = FrameScanner::new(4);
        s.extend(b"short\n");
        assert_eq!(s.next_frame(), Scan::Oversized);
    }

    #[test]
    fn exact_cap_frame_is_legal() {
        let mut s = FrameScanner::new(5);
        s.extend(b"12345\n");
        match s.next_frame() {
            Scan::Frame(r) => assert_eq!(frame_text(&s, r), "12345"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_lines_are_frames() {
        // The dispatcher skips blank lines, but the scanner must hand
        // them over rather than desynchronize.
        let mut s = FrameScanner::new(16);
        s.extend(b"\n\nx\n");
        assert!(matches!(s.next_frame(), Scan::Frame(r) if r.is_empty()));
        assert!(matches!(s.next_frame(), Scan::Frame(r) if r.is_empty()));
        match s.next_frame() {
            Scan::Frame(r) => assert_eq!(frame_text(&s, r), "x"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn buffer_stays_bounded_under_many_frames() {
        let mut s = FrameScanner::new(64);
        for i in 0..10_000 {
            s.extend(format!("{{\"id\":{i}}}\n").as_bytes());
            match s.next_frame() {
                Scan::Frame(r) => assert_eq!(frame_text(&s, r), format!("{{\"id\":{i}}}")),
                other => panic!("{other:?}"),
            }
            assert_eq!(s.next_frame(), Scan::Incomplete);
            assert!(
                s.buf.capacity() <= 8192,
                "capacity crept: {}",
                s.buf.capacity()
            );
        }
    }
}
