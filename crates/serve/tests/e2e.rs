//! End-to-end daemon tests over real loopback TCP.
//!
//! The daemon here fronts the *real* broker (`uptime-broker` is a
//! dev-dependency; the cycle is dev-only and allowed by cargo), so these
//! tests prove the serving layer's contract:
//!
//! * served responses are bit-identical to direct `BrokerService` calls,
//!   before and after a telemetry-epoch bump;
//! * cache hit/miss/stale counters reconcile exactly with the requests
//!   sent;
//! * a full admission queue sheds instead of hanging;
//! * concurrent identical requests coalesce onto one backend execution;
//! * shutdown drains everything already admitted.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Value;
use uptime_broker::{BrokerService, GroundTruth, ServingBroker, SimulatedProvider};
use uptime_catalog::{case_study, CloudId, ComponentKind};
use uptime_obs::MetricsRegistry;
use uptime_serve::{
    code, BackendError, RequestFrame, ResponseFrame, ServeBackend, Server, ServerConfig,
    ServerHandle,
};

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// A broker over the case-study catalog with one simulated provider per
/// cloud — constructed identically every time, so two instances answer
/// bit-identically and absorb identical telemetry for identical seeds.
fn backend() -> ServingBroker {
    let store = case_study::catalog();
    let broker = Arc::new(BrokerService::new(store.clone()));
    let mut targets: Vec<(CloudId, Vec<ComponentKind>)> = Vec::new();
    for id in store.cloud_ids() {
        let profile = store.cloud(id).expect("listed id resolves");
        let mut provider = SimulatedProvider::new(id.clone(), profile.display_name());
        let mut kinds = Vec::new();
        for kind in profile.observed_components() {
            let record = profile.reliability(kind).expect("observed");
            provider = provider.with_ground_truth(
                kind,
                GroundTruth {
                    down_probability: record.down_probability(),
                    failures_per_year: record.failures_per_year(),
                },
            );
            kinds.push(kind);
        }
        broker.register_provider(Box::new(provider));
        targets.push((id.clone(), kinds));
    }
    ServingBroker::new(broker).with_sync_targets(targets)
}

/// Applies the `SERVE_CORE` env override so CI can run this whole suite
/// against either core. The reactor runs with a single shard here: the
/// suite's shed/coalesce assertions reason about one admission domain,
/// and one shard keeps the two cores' semantics aligned exactly.
fn apply_core(config: &mut ServerConfig) {
    if std::env::var("SERVE_CORE").as_deref() == Ok("reactor") {
        config.core = uptime_serve::ServeCore::Reactor;
        config.shards = 1;
    }
}

fn start(backend: Arc<dyn ServeBackend>, workers: usize, queue_depth: usize) -> ServerHandle {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        cache_capacity: 64,
        ..ServerConfig::default()
    };
    apply_core(&mut config);
    Server::start(backend, config, Arc::new(MetricsRegistry::new())).expect("daemon binds")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("daemon accepts");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, frame: &RequestFrame) {
        let mut text = serde_json::to_string(frame).expect("frame serializes");
        text.push('\n');
        self.writer.write_all(text.as_bytes()).expect("send frame");
    }

    fn recv(&mut self) -> ResponseFrame {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        serde_json::from_str(&line).expect("response frame parses")
    }

    fn call(&mut self, frame: &RequestFrame) -> ResponseFrame {
        self.send(frame);
        self.recv()
    }
}

fn recommend_frame(id: u64, percent: f64) -> RequestFrame {
    let request = uptime_broker::SolutionRequest::builder()
        .tiers(ComponentKind::paper_tiers())
        .sla_percent(percent)
        .expect("valid sla")
        .penalty_per_hour(100.0)
        .expect("valid rate")
        .build()
        .expect("valid request");
    RequestFrame::new(id, "recommend", serde_json::to_value(&request))
}

fn frontier_frame(id: u64, threshold: f64) -> RequestFrame {
    let body = serde_json::json!({
        "tiers": ["Compute", "Storage", "NetworkGateway"],
        "penalty": { "PerHour": { "rate": 100.0 } },
        "slo": { "objectives": [
            { "metric": "uptime", "threshold": threshold, "mode": "hard" },
            { "metric": "cost", "threshold": 1000.0, "mode": "soft" }
        ] },
    });
    RequestFrame::new(id, "frontier", body)
}

/// Canonical text form for bit-identical comparisons (the vendored map is
/// a `BTreeMap`, so serialization order is deterministic).
fn text(value: &Value) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle.registry().snapshot().counter(name).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Bit-identical serving, before and after an epoch bump
// ---------------------------------------------------------------------------

#[test]
fn served_responses_are_bit_identical_to_direct_calls() {
    let daemon_backend = backend();
    let mirror = backend();
    let handle = start(Arc::new(daemon_backend), 2, 16);
    let mut client = Client::connect(handle.local_addr());

    for (id, percent) in [(1u64, 98.0), (2, 99.0), (3, 98.0)] {
        let served = client.call(&recommend_frame(id, percent));
        assert_eq!(served.code, code::OK, "{served:?}");
        assert_eq!(served.id, id);
        let direct = mirror
            .handle("recommend", &recommend_frame(id, percent).body)
            .expect("direct call succeeds");
        assert_eq!(
            text(served.body.as_ref().expect("ok body")),
            text(&direct),
            "served response must be byte-for-byte the direct answer"
        );
    }
    // The third call repeated the first: it must have come from cache and
    // still been bit-identical.
    assert_eq!(counter(&handle, "serve.cache.hit"), 1);

    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn epoch_bump_invalidates_cache_and_stays_bit_identical() {
    let daemon_backend = backend();
    let mirror = backend();
    let handle = start(Arc::new(daemon_backend), 2, 16);
    let mut client = Client::connect(handle.local_addr());

    let first = client.call(&recommend_frame(1, 98.0));
    assert_eq!(first.epoch, 0);
    assert!(!first.cached);

    let second = client.call(&recommend_frame(2, 98.0));
    assert!(second.cached, "identical repeat at the same epoch hits");
    assert_eq!(
        text(second.body.as_ref().unwrap()),
        text(first.body.as_ref().unwrap())
    );

    // Absorb telemetry through the daemon AND identically on the mirror.
    let synced = client.call(&RequestFrame::new(3, "sync", Value::Null));
    let new_epoch = synced.epoch;
    assert!(new_epoch > 0, "sync must bump the telemetry epoch");
    let mirror_sync = mirror.handle("sync", &Value::Null).expect("mirror syncs");
    assert_eq!(
        mirror_sync.get("epoch").and_then(Value::as_u64),
        Some(new_epoch),
        "mirror absorbed the same number of batches"
    );

    // The cached entry is now stale: recomputed, not served stale.
    let third = client.call(&recommend_frame(4, 98.0));
    assert!(!third.cached, "stale entries must not be served");
    assert_eq!(third.epoch, new_epoch);
    assert_eq!(counter(&handle, "serve.cache.stale"), 1);

    // And the recomputed answer is bit-identical to a direct call against
    // the identically-synced mirror.
    let direct = mirror
        .handle("recommend", &recommend_frame(4, 98.0).body)
        .expect("direct call succeeds");
    assert_eq!(text(third.body.as_ref().unwrap()), text(&direct));

    // A repeat at the new epoch hits again.
    let fourth = client.call(&recommend_frame(5, 98.0));
    assert!(fourth.cached);
    assert_eq!(text(fourth.body.as_ref().unwrap()), text(&direct));

    let mut handle = handle;
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Counter reconciliation
// ---------------------------------------------------------------------------

#[test]
fn cache_counters_reconcile_exactly() {
    let handle = start(Arc::new(backend()), 2, 16);
    let mut client = Client::connect(handle.local_addr());

    // 5 identical + 3 distinct requests, strictly sequentially: the
    // identical ones produce 1 miss + 4 hits, the distinct ones 3 misses.
    for id in 0..5u64 {
        assert_eq!(client.call(&recommend_frame(id, 98.0)).code, code::OK);
    }
    for (id, percent) in [(5u64, 97.5), (6, 99.0), (7, 99.5)] {
        assert_eq!(client.call(&recommend_frame(id, percent)).code, code::OK);
    }

    // Frontier traffic is cacheable too and attributed separately:
    // 2 identical + 1 distinct → 1 hit, 2 misses on `frontier`.
    for (id, threshold) in [(8u64, 92.0), (9, 92.0), (10, 95.0)] {
        assert_eq!(client.call(&frontier_frame(id, threshold)).code, code::OK);
    }

    assert_eq!(counter(&handle, "serve.cache.hit"), 5);
    assert_eq!(counter(&handle, "serve.cache.miss"), 6);
    assert_eq!(counter(&handle, "serve.cache.stale"), 0);
    assert_eq!(counter(&handle, "serve.shed"), 0);
    assert_eq!(counter(&handle, "serve.responses"), 11);
    assert_eq!(counter(&handle, "serve.cache.recommend.hit"), 4);
    assert_eq!(counter(&handle, "serve.cache.recommend.miss"), 4);
    assert_eq!(counter(&handle, "serve.cache.frontier.hit"), 1);
    assert_eq!(counter(&handle, "serve.cache.frontier.miss"), 2);

    // The stats endpoint reports the same numbers (plus its own response).
    let stats = client.call(&RequestFrame::new(99, "stats", Value::Null));
    let body = stats.body.expect("stats body");
    let cache = body.get("cache").expect("cache section");
    assert_eq!(cache.get("hit").and_then(Value::as_u64), Some(5));
    assert_eq!(cache.get("miss").and_then(Value::as_u64), Some(6));
    assert_eq!(cache.get("size").and_then(Value::as_u64), Some(6));
    // … broken out per endpoint, so frontier cache behavior is visible
    // independently of recommend.
    let by_endpoint = body.get("cache_by_endpoint").expect("per-endpoint section");
    let section = |endpoint: &str, verdict: &str| {
        by_endpoint
            .get(endpoint)
            .and_then(|e| e.get(verdict))
            .and_then(Value::as_u64)
    };
    assert_eq!(section("recommend", "hit"), Some(4));
    assert_eq!(section("recommend", "miss"), Some(4));
    assert_eq!(section("recommend", "stale"), Some(0));
    assert_eq!(section("frontier", "hit"), Some(1));
    assert_eq!(section("frontier", "miss"), Some(2));
    assert_eq!(section("frontier", "stale"), Some(0));

    let mut handle = handle;
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// A gate-controlled backend for deterministic overload and drain tests
// ---------------------------------------------------------------------------

/// A backend whose `handle` blocks until the test opens a gate, with
/// per-entry notification so tests can wait until a request is mid-flight.
struct GateBackend {
    calls: AtomicU64,
    entered: Mutex<u64>,
    entered_cv: Condvar,
    open: Mutex<bool>,
    open_cv: Condvar,
}

impl GateBackend {
    fn new() -> Self {
        GateBackend {
            calls: AtomicU64::new(0),
            entered: Mutex::new(0),
            entered_cv: Condvar::new(),
            open: Mutex::new(false),
            open_cv: Condvar::new(),
        }
    }

    /// Blocks until `n` calls have entered `handle`.
    fn wait_entered(&self, n: u64) {
        let mut entered = self.entered.lock().unwrap();
        while *entered < n {
            let (guard, timeout) = self
                .entered_cv
                .wait_timeout(entered, Duration::from_secs(10))
                .unwrap();
            assert!(!timeout.timed_out(), "backend never reached {n} entries");
            entered = guard;
        }
    }

    /// Releases every blocked (and future) `handle` call.
    fn open_gate(&self) {
        *self.open.lock().unwrap() = true;
        self.open_cv.notify_all();
    }
}

impl ServeBackend for GateBackend {
    fn epoch(&self) -> u64 {
        0
    }

    fn fingerprint(&self, endpoint: &str, body: &Value) -> Result<Option<u128>, BackendError> {
        match endpoint {
            // Fingerprint = hash of the body text: identical bodies
            // coalesce, distinct bodies do not.
            "echo" => {
                let text = serde_json::to_string(body).expect("body serializes");
                let mut hash = 0xcbf2_9ce4_8422_2325u128;
                for byte in text.bytes() {
                    hash ^= u128::from(byte);
                    hash = hash.wrapping_mul(0x1_0000_0000_01b3);
                }
                Ok(Some(hash))
            }
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }

    fn handle(&self, _endpoint: &str, body: &Value) -> Result<Value, BackendError> {
        {
            let mut entered = self.entered.lock().unwrap();
            *entered += 1;
            self.entered_cv.notify_all();
        }
        let mut open = self.open.lock().unwrap();
        while !*open {
            let (guard, timeout) = self
                .open_cv
                .wait_timeout(open, Duration::from_secs(10))
                .unwrap();
            assert!(!timeout.timed_out(), "gate never opened");
            open = guard;
        }
        drop(open);
        let call = self.calls.fetch_add(1, Ordering::AcqRel) + 1;
        Ok(serde_json::json!({ "echo": body.clone(), "call": call }))
    }
}

fn echo_frame(id: u64, tag: &str) -> RequestFrame {
    RequestFrame::new(id, "echo", serde_json::json!({ "tag": tag }))
}

#[test]
fn full_queue_sheds_rather_than_hangs() {
    let gate = Arc::new(GateBackend::new());
    // One worker, one queue slot: the third distinct request must shed.
    let handle = start(Arc::clone(&gate) as Arc<dyn ServeBackend>, 1, 1);
    let mut client = Client::connect(handle.local_addr());

    client.send(&echo_frame(1, "a"));
    gate.wait_entered(1); // request 1 is mid-flight, not in the queue
    client.send(&echo_frame(2, "b")); // fills the single queue slot
    client.send(&echo_frame(3, "c")); // must shed, immediately

    let shed = client.recv();
    assert_eq!(shed.id, 3, "the shed response arrives while 1 and 2 block");
    assert_eq!(shed.code, code::SHED);
    assert_eq!(counter(&handle, "serve.shed"), 1);

    gate.open_gate();
    let mut done = [client.recv(), client.recv()];
    done.sort_by_key(|r| r.id);
    assert_eq!((done[0].id, done[0].code), (1, code::OK));
    assert_eq!((done[1].id, done[1].code), (2, code::OK));

    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn concurrent_identical_requests_coalesce_onto_one_execution() {
    let gate = Arc::new(GateBackend::new());
    let handle = start(Arc::clone(&gate) as Arc<dyn ServeBackend>, 2, 16);
    let mut client = Client::connect(handle.local_addr());

    client.send(&echo_frame(1, "same"));
    gate.wait_entered(1); // the leader is executing
    client.send(&echo_frame(2, "same")); // identical: must coalesce

    // The second worker has joined the flight once `serve.coalesced`
    // ticks; only then is it deterministic that no second execution runs.
    let deadline = Instant::now() + Duration::from_secs(10);
    while counter(&handle, "serve.coalesced") == 0 {
        assert!(Instant::now() < deadline, "follower never joined");
        std::thread::sleep(Duration::from_millis(5));
    }

    gate.open_gate();
    let mut responses = [client.recv(), client.recv()];
    responses.sort_by_key(|r| r.id);
    assert_eq!(
        text(responses[0].body.as_ref().unwrap()),
        text(responses[1].body.as_ref().unwrap()),
        "leader and follower share one result"
    );
    assert_eq!(
        responses.iter().filter(|r| r.coalesced).count(),
        1,
        "exactly one response is the coalesced follower"
    );
    assert_eq!(
        gate.calls.load(Ordering::Acquire),
        1,
        "the backend executed exactly once"
    );

    let mut handle = handle;
    handle.shutdown();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let gate = Arc::new(GateBackend::new());
    let handle = start(Arc::clone(&gate) as Arc<dyn ServeBackend>, 1, 4);
    let addr = handle.local_addr();
    let mut client = Client::connect(addr);

    client.send(&echo_frame(1, "inflight"));
    gate.wait_entered(1);
    client.send(&echo_frame(2, "queued"));
    let draining = client.call(&RequestFrame::new(3, "shutdown", Value::Null));
    assert_eq!(draining.code, code::OK);

    // The daemon is draining: the two admitted requests must still be
    // answered once the gate opens, then the daemon stops.
    gate.open_gate();
    let mut done = [client.recv(), client.recv()];
    done.sort_by_key(|r| r.id);
    assert_eq!((done[0].id, done[0].code), (1, code::OK));
    assert_eq!((done[1].id, done[1].code), (2, code::OK));

    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "after the drain the listener is closed"
    );
}

// ---------------------------------------------------------------------------
// Concurrency soak: many clients, one answer
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_get_identical_answers_and_counters_balance() {
    let handle = start(Arc::new(backend()), 4, 32);
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                (0..5u64)
                    .map(|i| {
                        let response = client.call(&recommend_frame(c * 10 + i, 98.0));
                        assert_eq!(response.code, code::OK);
                        text(response.body.as_ref().expect("ok body"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let mut bodies: Vec<String> = Vec::new();
    for client in clients {
        bodies.extend(client.join().expect("client thread"));
    }
    assert_eq!(bodies.len(), 20);
    assert!(
        bodies.iter().all(|b| *b == bodies[0]),
        "every client saw the identical answer"
    );

    // Every request is exactly one of hit/miss (no epoch moved, so no
    // stale); coalesced followers were counted as misses first.
    let hit = counter(&handle, "serve.cache.hit");
    let miss = counter(&handle, "serve.cache.miss");
    let coalesced = counter(&handle, "serve.coalesced");
    assert_eq!(hit + miss, 20, "hit {hit} + miss {miss}");
    assert!(miss >= 1, "someone computed it");
    assert!(coalesced <= miss, "followers are a subset of misses");
    assert_eq!(counter(&handle, "serve.responses"), 20);
    assert_eq!(counter(&handle, "serve.shed"), 0);

    let mut handle = handle;
    handle.shutdown();
}

// ---------------------------------------------------------------------------
// Request tracing: byte identity, explain, and the traces endpoint
// ---------------------------------------------------------------------------

/// Sends `frame` and returns the raw response line — for bit-for-bit
/// comparisons the parsed `ResponseFrame` would erase.
fn call_raw(client: &mut Client, frame: &RequestFrame) -> String {
    client.send(frame);
    let mut line = String::new();
    let n = client.reader.read_line(&mut line).expect("read response");
    assert!(n > 0, "daemon closed the connection unexpectedly");
    line
}

fn start_with_trace(
    backend: Arc<dyn ServeBackend>,
    trace: uptime_obs::TraceConfig,
) -> ServerHandle {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        cache_capacity: 64,
        trace,
        ..ServerConfig::default()
    };
    apply_core(&mut config);
    Server::start(backend, config, Arc::new(MetricsRegistry::new())).expect("daemon binds")
}

#[test]
fn tracing_enabled_answers_are_byte_identical_to_tracing_disabled() {
    let mut traced = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::default());
    let mut untraced = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::disabled());
    let mut traced_client = Client::connect(traced.local_addr());
    let mut untraced_client = Client::connect(untraced.local_addr());

    // Same request stream against both daemons: a miss, a hit, a second
    // SLA point. Every response line must be byte-identical — tracing
    // attributes time, it never changes answers.
    for (id, percent) in [(1, 98.0), (2, 98.0), (3, 99.0)] {
        let frame = recommend_frame(id, percent);
        let with = call_raw(&mut traced_client, &frame);
        let without = call_raw(&mut untraced_client, &frame);
        assert_eq!(with, without, "traced vs untraced response lines differ");
    }

    traced.shutdown();
    untraced.shutdown();
}

#[test]
fn explain_returns_span_breakdown_and_leaves_answer_untouched() {
    let mut handle = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::default());
    let mut client = Client::connect(handle.local_addr());

    let plain = client.call(&recommend_frame(1, 98.0));
    assert_eq!(plain.code, code::OK);
    assert!(plain.explain.is_none(), "explain only appears when asked");

    let explained = client.call(&recommend_frame(2, 98.0).with_explain(true));
    assert_eq!(explained.code, code::OK);
    assert_eq!(
        text(plain.body.as_ref().unwrap()),
        text(explained.body.as_ref().unwrap()),
        "explain must not perturb the answer bytes"
    );
    let explain = explained.explain.expect("explain requested");
    let spans = explain
        .get("spans")
        .and_then(Value::as_array)
        .expect("explain carries spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert!(names.contains(&"serve.request"), "{names:?}");
    assert!(names.contains(&"serve.cache.lookup"), "{names:?}");
    // The second identical request is a cache hit: no execute span.
    assert!(!names.contains(&"serve.execute"), "{names:?}");

    // A cold request's explain attributes time to the execute stage and
    // reaches down into the broker and optimizer.
    let cold = client.call(&recommend_frame(3, 97.25).with_explain(true));
    let explain = cold.explain.expect("explain requested");
    let spans = explain
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    for expected in ["serve.execute", "broker.recommend"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }

    handle.shutdown();
}

#[test]
fn explain_on_disabled_tracing_daemon_is_omitted() {
    let mut handle = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::disabled());
    let mut client = Client::connect(handle.local_addr());
    let response = client.call(&recommend_frame(1, 98.0).with_explain(true));
    assert_eq!(response.code, code::OK);
    assert!(response.explain.is_none(), "no tracer, no breakdown");
    handle.shutdown();
}

#[test]
fn traces_endpoint_matches_published_schema() {
    let mut handle = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::default());
    let mut client = Client::connect(handle.local_addr());
    for id in 0..4u64 {
        assert_eq!(client.call(&recommend_frame(id, 98.0)).code, code::OK);
    }

    let response = client.call(&RequestFrame::new(9, "traces", serde_json::json!({})));
    assert_eq!(response.code, code::OK);
    let body = response.body.expect("traces body");
    let schema_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace.schema.json"
    );
    let schema: Value =
        serde_json::from_str(&std::fs::read_to_string(schema_path).expect("schema readable"))
            .expect("schema parses");
    uptime_serve::schema::assert_valid(&body, &schema);

    let traces = body
        .get("traces")
        .and_then(Value::as_array)
        .expect("traces");
    assert!(!traces.is_empty(), "requests were recorded");

    // Filtered forms stay within the schema too.
    let slowest = client.call(&RequestFrame::new(
        10,
        "traces",
        serde_json::json!({"slowest": 1}),
    ));
    let slowest_body = slowest.body.expect("slowest body");
    uptime_serve::schema::assert_valid(&slowest_body, &schema);
    assert_eq!(
        slowest_body
            .get("traces")
            .and_then(Value::as_array)
            .map(Vec::len),
        Some(1)
    );

    // Chrome export is a different shape (not schema'd) but must parse
    // and carry one complete event per span.
    let chrome = client.call(&RequestFrame::new(
        11,
        "traces",
        serde_json::json!({"format": "chrome"}),
    ));
    let chrome_body = chrome.body.expect("chrome body");
    let events = chrome_body
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert!(!events.is_empty());
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(Value::as_str) == Some("X")));

    handle.shutdown();
}

#[test]
fn trace_ids_are_deterministic_across_daemons() {
    // The trace id seeds from the request fingerprint, so two daemons
    // given the same request mint the same id — grep one id across a
    // fleet's flight recorders.
    let trace_id = |handle: &mut ServerHandle| {
        let mut client = Client::connect(handle.local_addr());
        let response = client.call(&recommend_frame(1, 98.0).with_explain(true));
        response
            .explain
            .expect("explain")
            .get("trace_id")
            .and_then(Value::as_str)
            .expect("trace_id")
            .to_owned()
    };
    let mut first = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::default());
    let mut second = start_with_trace(Arc::new(backend()), uptime_obs::TraceConfig::default());
    let a = trace_id(&mut first);
    let b = trace_id(&mut second);
    assert_eq!(a, b, "same request must mint the same trace id");
    first.shutdown();
    second.shutdown();
}

#[test]
fn shed_requests_land_in_the_flight_recorder() {
    let gate = Arc::new(GateBackend::new());
    // One worker, one queue slot, tracing on (the default config).
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 1,
        cache_capacity: 64,
        ..ServerConfig::default()
    };
    apply_core(&mut config);
    let handle = Server::start(
        Arc::clone(&gate) as Arc<dyn ServeBackend>,
        config,
        Arc::new(MetricsRegistry::new()),
    )
    .expect("daemon binds");
    let mut client = Client::connect(handle.local_addr());

    client.send(&echo_frame(1, "a"));
    gate.wait_entered(1); // request 1 is mid-flight, not in the queue
    client.send(&echo_frame(2, "b")); // fills the single queue slot
    client.send(&echo_frame(3, "c")); // must shed, immediately

    let shed = client.recv();
    assert_eq!(shed.code, code::SHED);
    gate.open_gate();
    let _ = client.recv();
    let _ = client.recv();

    // Tail sampling always keeps sheds: the refusal is visible in the
    // flight recorder even though no worker ever saw the request.
    let recorder = handle.flight_recorder().expect("tracing enabled");
    assert!(
        recorder
            .errors()
            .iter()
            .any(|t| t.outcome == uptime_obs::TraceOutcome::Shed),
        "shed requests must be kept by tail sampling"
    );
    let mut handle = handle;
    handle.shutdown();
}
