//! Connection-hardening tests: the daemon must survive hostile clients —
//! oversized frames, binary garbage, slowloris silence — without
//! panicking, leaking reader threads, or buffering unbounded input.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use serde::Value;
use uptime_obs::MetricsRegistry;
use uptime_serve::{
    code, BackendError, RequestFrame, ServeBackend, Server, ServerConfig, ServerHandle,
};

/// A trivial backend: one cacheable endpoint that echoes a constant.
struct EchoBackend;

impl ServeBackend for EchoBackend {
    fn epoch(&self) -> u64 {
        1
    }

    fn fingerprint(&self, endpoint: &str, _body: &Value) -> Result<Option<u128>, BackendError> {
        match endpoint {
            "echo" => Ok(Some(42)),
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }

    fn handle(&self, endpoint: &str, _body: &Value) -> Result<Value, BackendError> {
        match endpoint {
            "echo" => Ok(serde_json::json!({ "echo": true })),
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }
}

fn start(config_tweak: impl FnOnce(&mut ServerConfig)) -> (ServerHandle, Arc<MetricsRegistry>) {
    let registry = Arc::new(MetricsRegistry::new());
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        cache_capacity: 16,
        ..ServerConfig::default()
    };
    // CI runs this suite against both cores via `SERVE_CORE`.
    if std::env::var("SERVE_CORE").as_deref() == Ok("reactor") {
        config.core = uptime_serve::ServeCore::Reactor;
        config.shards = 1;
    }
    config_tweak(&mut config);
    let handle =
        Server::start(Arc::new(EchoBackend), config, Arc::clone(&registry)).expect("daemon binds");
    (handle, registry)
}

fn connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    stream
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> Value {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    serde_json::from_str(&response).expect("response parses")
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.snapshot().counter(name).unwrap_or(0)
}

fn pong_flag(frame: &Value) -> Option<bool> {
    frame
        .get("body")
        .and_then(|body| body.get("pong"))
        .and_then(Value::as_bool)
}

#[test]
fn oversized_frame_gets_400_and_connection_drops() {
    let (mut handle, registry) = start(|c| c.max_frame_bytes = 256);
    let mut stream = connect(&handle);

    // 10 KiB of 'a' with no newline until the end: far past the cap.
    let big = format!("{}\n", "a".repeat(10 * 1024));
    stream.write_all(big.as_bytes()).expect("write oversized");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read 400");
    let parsed: Value = serde_json::from_str(&response).expect("parses");
    assert_eq!(
        parsed.get("code").and_then(Value::as_u64),
        Some(u64::from(code::BAD_REQUEST))
    );
    assert!(parsed
        .get("error")
        .and_then(Value::as_str)
        .expect("error detail")
        .contains("byte cap"));

    // The daemon hangs up after the 400: the next read sees EOF.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("EOF read"), 0);
    assert_eq!(counter(&registry, "serve.conn.oversized"), 1);

    // The daemon is still healthy for well-behaved clients.
    let mut fresh = connect(&handle);
    let pong = roundtrip(&mut fresh, r#"{"id":1,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}

/// Pins the teardown *ordering* on the edge case where the oversized
/// line never gets a newline and the client never closes: the `400` must
/// be written before the connection is shut down, so the client always
/// learns why it was dropped. Run against both cores in CI.
#[test]
fn oversized_without_newline_gets_400_before_close() {
    let (mut handle, registry) = start(|c| c.max_frame_bytes = 256);
    let mut stream = connect(&handle);

    // Over the cap, no newline, connection deliberately left open: the
    // daemon must still answer rather than silently hang up.
    stream
        .write_all(&vec![b'b'; 2048])
        .expect("write oversized prefix");
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read 400");
    let parsed: Value = serde_json::from_str(&response).expect("parses");
    assert_eq!(
        parsed.get("code").and_then(Value::as_u64),
        Some(u64::from(code::BAD_REQUEST)),
        "the 400 must arrive before the close: {response}"
    );
    assert!(parsed
        .get("error")
        .and_then(Value::as_str)
        .expect("error detail")
        .contains("byte cap"));
    let mut rest = String::new();
    assert_eq!(
        reader.read_line(&mut rest).expect("EOF read"),
        0,
        "after the 400 the daemon hangs up"
    );
    assert_eq!(counter(&registry, "serve.conn.oversized"), 1);
    handle.shutdown();
}

/// Malformed (parseable-as-text, unparseable-as-frame) lines get a `400`
/// and the connection *stays open* — teardown is reserved for oversize.
/// Pinned here so both cores keep the same contract.
#[test]
fn malformed_frame_gets_400_and_connection_survives() {
    let (mut handle, registry) = start(|_| {});
    let mut stream = connect(&handle);
    let bad = roundtrip(&mut stream, "this is not json");
    assert_eq!(
        bad.get("code").and_then(Value::as_u64),
        Some(u64::from(code::BAD_REQUEST))
    );
    assert!(bad
        .get("error")
        .and_then(Value::as_str)
        .expect("error detail")
        .contains("bad frame"));
    assert_eq!(counter(&registry, "serve.parse_error"), 1);
    // Same socket, next line: still served.
    let pong = roundtrip(&mut stream, r#"{"id":2,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}

#[test]
fn oversized_never_buffers_the_whole_flood() {
    // Even a multi-megabyte flood without newlines must be rejected
    // promptly — the reader stops at cap + 1 bytes.
    let (mut handle, registry) = start(|c| c.max_frame_bytes = 1024);
    let mut stream = connect(&handle);
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .expect("client write timeout");
    let chunk = vec![b'x'; 64 * 1024];
    let started = Instant::now();
    // Write until the daemon closes on us (or we have sent 8 MiB).
    for _ in 0..128 {
        if stream.write_all(&chunk).is_err() {
            break;
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "flood rejected promptly"
    );
    // Give the reader thread a moment to count the rejection.
    let deadline = Instant::now() + Duration::from_secs(5);
    while counter(&registry, "serve.conn.oversized") == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(counter(&registry, "serve.conn.oversized"), 1);
    handle.shutdown();
}

#[test]
fn idle_connection_is_dropped_and_counted() {
    let (mut handle, registry) = start(|c| c.read_timeout_ms = 150);
    let stream = connect(&handle);

    // Say nothing. The daemon must hang up on us, not the reverse.
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut buf = String::new();
    let n = reader.read_line(&mut buf).expect("EOF after idle drop");
    assert_eq!(n, 0, "daemon closed the idle connection");
    assert_eq!(counter(&registry, "serve.conn.idle_dropped"), 1);

    // Active clients are unaffected by the short timeout.
    let mut fresh = connect(&handle);
    let pong = roundtrip(&mut fresh, r#"{"id":7,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}

#[test]
fn binary_garbage_gets_errors_not_crashes() {
    let (mut handle, _registry) = start(|_| {});
    let mut stream = connect(&handle);

    // Newline-terminated garbage lines: each gets a 400, none kill the
    // daemon or the connection.
    for garbage in [
        "\u{7f}\u{1b}[31mnot json",
        "{\"id\": }",
        "[1,2,3]",
        "{\"endpoint\":42}",
    ] {
        let parsed = roundtrip(&mut stream, garbage);
        assert_eq!(
            parsed.get("code").and_then(Value::as_u64),
            Some(u64::from(code::BAD_REQUEST))
        );
    }
    // The same connection still serves real requests afterwards.
    let pong = roundtrip(&mut stream, r#"{"id":3,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}

#[test]
fn half_line_then_eof_is_harmless() {
    let (mut handle, _registry) = start(|_| {});
    {
        let mut stream = connect(&handle);
        stream
            .write_all(b"{\"id\":1,\"endpoint\":\"pi")
            .expect("write torn frame");
        // Drop without the newline: the daemon sees EOF mid-line.
    }
    let mut fresh = connect(&handle);
    let pong = roundtrip(&mut fresh, r#"{"id":9,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The protocol parser must never panic, whatever bytes a client
    /// sends as a line.
    #[test]
    fn request_frame_parse_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&garbage);
        let _ = serde_json::from_str::<RequestFrame>(&text);
    }

    /// JSON-ish garbage (balanced-looking but wrong shapes) also parses
    /// or errors — never panics — and `id` extraction stays safe.
    #[test]
    fn shaped_garbage_never_panics(
        picks in proptest::collection::vec(0usize..16, 0..64),
        id in any::<u64>(),
    ) {
        const ALPHABET: &[u8; 16] = b"az{}[]\"0123456:,";
        let endpoint: String = picks
            .iter()
            .map(|&i| char::from(ALPHABET[i]))
            .collect();
        let line = format!("{{\"id\":{id},\"endpoint\":\"{endpoint}\",\"body\":{{}}}}");
        let _ = serde_json::from_str::<RequestFrame>(&line);
    }
}

/// A dedicated end-to-end garbage fuzz over a live socket, bounded to a
/// few dozen cases to keep the suite fast: every line is answered or the
/// connection closed, and the daemon survives to serve a real request.
#[test]
fn live_socket_survives_random_garbage() {
    let (mut handle, _registry) = start(|c| c.max_frame_bytes = 4096);
    let mut seed = 0x5EEDu64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    for _ in 0..32 {
        let mut stream = connect(&handle);
        let len = (next() % 2048) as usize;
        let mut line: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        // Strip embedded newlines so this is one frame, then terminate.
        line.retain(|b| *b != b'\n');
        line.push(b'\n');
        // Fire and forget: the property is "no hang, no crash", proven
        // by the healthy roundtrip below.
        let _ = stream.write_all(&line);
        drop(stream);
    }
    let mut fresh = connect(&handle);
    let pong = roundtrip(&mut fresh, r#"{"id":1,"endpoint":"ping","body":{}}"#);
    assert_eq!(pong_flag(&pong), Some(true));
    handle.shutdown();
}
