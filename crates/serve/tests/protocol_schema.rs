//! The wire frames must match the checked-in JSON Schemas — the protocol
//! contract clients build against.

use serde::Value;
use uptime_serve::protocol::{RequestFrame, ResponseFrame};
use uptime_serve::schema;

fn load_schema(name: &str) -> Value {
    let path = format!("{}/../../schemas/{name}", env!("CARGO_MANIFEST_DIR"));
    serde_json::from_str(&std::fs::read_to_string(&path).expect("schema file readable"))
        .expect("schema file is valid JSON")
}

#[test]
fn request_frames_validate() {
    let schema = load_schema("serve_request.schema.json");
    let frames = [
        RequestFrame::new(1, "recommend", serde_json::json!({"tiers": ["Compute"]})),
        RequestFrame::new(0, "ping", Value::Null),
        RequestFrame::new(u64::MAX, "stats", Value::Null),
        RequestFrame::new(2, "recommend", serde_json::json!({"tiers": ["Compute"]}))
            .with_explain(true),
        RequestFrame::new(
            3,
            "traces",
            serde_json::json!({"slowest": 5, "format": "chrome"}),
        ),
    ];
    for frame in &frames {
        schema::assert_valid(&serde_json::to_value(frame), &schema);
    }
    // The minimal hand-written client frame is also valid.
    schema::assert_valid(&serde_json::json!({"endpoint": "health"}), &schema);
}

#[test]
fn response_frames_validate() {
    let schema = load_schema("serve_response.schema.json");
    let frames = [
        ResponseFrame::ok(1, 0, serde_json::json!({"pong": true})),
        ResponseFrame::ok(2, 7, serde_json::json!({"x": 1})).with_cached(true),
        ResponseFrame::ok(3, 7, serde_json::json!({"x": 1})).with_coalesced(true),
        ResponseFrame::error(4, 2, uptime_serve::code::BAD_REQUEST, "bad frame"),
        ResponseFrame::shed(5, 2, "queue full"),
        ResponseFrame::ok(6, 7, serde_json::json!({"x": 1})).with_explain(Some(
            serde_json::json!({
                "trace_id": "00000000deadbeef",
                "outcome": "ok",
                "total_ns": 1234,
                "sampled": "slow",
                "spans": [{
                    "id": 1, "parent": 0, "name": "serve.request",
                    "start_ns": 0, "duration_ns": 1234,
                    "attrs": {"leader": true, "verdict": "miss", "variants": 8}
                }]
            }),
        )),
    ];
    for frame in &frames {
        schema::assert_valid(&serde_json::to_value(frame), &schema);
    }
}

#[test]
fn schema_rejects_malformed_frames() {
    let request = load_schema("serve_request.schema.json");
    let mut errors = Vec::new();
    // Missing endpoint.
    schema::validate(&serde_json::json!({"id": 1}), &request, "$", &mut errors);
    assert!(!errors.is_empty());

    let response = load_schema("serve_response.schema.json");
    let mut errors = Vec::new();
    // Status outside the enum and a stray property.
    schema::validate(
        &serde_json::json!({
            "v": 1, "id": 1, "status": "maybe", "code": 200,
            "cached": false, "coalesced": false, "epoch": 0, "stray": 1
        }),
        &response,
        "$",
        &mut errors,
    );
    assert!(errors.len() >= 2, "{errors:?}");
}
