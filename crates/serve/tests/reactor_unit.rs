//! Reactor-core unit and property tests: the incremental frame scanner
//! under adversarial chunking, interleaved pipelined clients against a
//! live multi-shard daemon, and the shard-affinity guarantee (a
//! connection never migrates between shards mid-request).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use serde::Value;
use uptime_obs::MetricsRegistry;
use uptime_serve::reactor::frame::{FrameScanner, Scan};
use uptime_serve::{BackendError, ServeBackend, ServeCore, Server, ServerConfig, ServerHandle};

// ---------------------------------------------------------------------------
// Frame-scanner properties
// ---------------------------------------------------------------------------

/// Feeds `payload` to a scanner in the given chunk sizes and collects
/// every complete frame it reports.
fn scan_chunked(payload: &[u8], chunks: &[usize], max_frame: usize) -> (Vec<Vec<u8>>, bool) {
    let mut scanner = FrameScanner::new(max_frame);
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut oversized = false;
    let mut chunk_sizes = chunks.iter().copied().cycle();
    while offset < payload.len() {
        let take = chunk_sizes
            .next()
            .unwrap_or(1)
            .max(1)
            .min(payload.len() - offset);
        scanner.extend(&payload[offset..offset + take]);
        offset += take;
        loop {
            match scanner.next_frame() {
                Scan::Frame(range) => frames.push(scanner.bytes()[range].to_vec()),
                Scan::Incomplete => break,
                Scan::Oversized => {
                    oversized = true;
                    return (frames, oversized);
                }
            }
        }
    }
    (frames, oversized)
}

/// Maps byte draws onto newline-free printable frame bytes.
fn frame_bytes(picks: &[usize]) -> Vec<u8> {
    const ALPHABET: &[u8; 16] = b"az{}[]\"0123456:,";
    picks.iter().map(|&i| ALPHABET[i % 16]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever way a legal frame stream is split across reads, the
    /// scanner reassembles exactly the original frames, in order.
    #[test]
    fn any_chunking_reassembles_the_same_frames(
        frame_picks in proptest::collection::vec(
            proptest::collection::vec(0usize..16, 0..40),
            1..12,
        ),
        chunks in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let frames: Vec<Vec<u8>> = frame_picks.iter().map(|p| frame_bytes(p)).collect();
        let mut payload = Vec::new();
        for frame in &frames {
            payload.extend_from_slice(frame);
            payload.push(b'\n');
        }
        let (scanned, oversized) = scan_chunked(&payload, &chunks, 64);
        prop_assert!(!oversized, "legal frames must never report oversize");
        prop_assert_eq!(scanned, frames);
    }

    /// A line beyond the cap poisons the scanner at whatever chunking,
    /// and every frame before it is still delivered intact.
    #[test]
    fn oversize_poisons_under_any_chunking(
        prefix_picks in proptest::collection::vec(0usize..16, 0..16),
        chunks in proptest::collection::vec(1usize..13, 1..6),
    ) {
        let prefix = frame_bytes(&prefix_picks);
        let mut payload = Vec::new();
        payload.extend_from_slice(&prefix);
        payload.push(b'\n');
        payload.extend_from_slice(&[b'x'; 40]); // over the 32-byte cap
        payload.push(b'\n');
        let (scanned, oversized) = scan_chunked(&payload, &chunks, 32);
        prop_assert!(oversized);
        prop_assert_eq!(scanned, vec![prefix]);
    }
}

// ---------------------------------------------------------------------------
// Live-daemon harness
// ---------------------------------------------------------------------------

/// Echoes its body back; fingerprint is a hash of the body so distinct
/// payloads never coalesce.
struct EchoBackend;

impl ServeBackend for EchoBackend {
    fn epoch(&self) -> u64 {
        7
    }

    fn fingerprint(&self, endpoint: &str, body: &Value) -> Result<Option<u128>, BackendError> {
        match endpoint {
            "echo" => {
                let text = serde_json::to_string(body).unwrap_or_default();
                let mut hash: u128 = 0xcbf2_9ce4_8422_2325;
                for byte in text.bytes() {
                    hash ^= u128::from(byte);
                    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
                }
                Ok(Some(hash))
            }
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }

    fn handle(&self, endpoint: &str, body: &Value) -> Result<Value, BackendError> {
        match endpoint {
            "echo" => Ok(serde_json::json!({ "echo": body.clone() })),
            other => Err(BackendError::UnknownEndpoint(other.to_owned())),
        }
    }
}

fn start_reactor(shards: usize, max_frame_bytes: usize) -> ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 64,
        cache_capacity: 256,
        max_frame_bytes,
        core: ServeCore::Reactor,
        shards,
        ..ServerConfig::default()
    };
    Server::start(
        Arc::new(EchoBackend),
        config,
        Arc::new(MetricsRegistry::new()),
    )
    .expect("reactor binds")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "daemon hung up unexpectedly");
        serde_json::from_str(&line).expect("response parses")
    }

    fn ping_shard(&mut self, id: u64) -> u64 {
        self.send_raw(format!("{{\"endpoint\":\"ping\",\"id\":{id},\"v\":1}}\n").as_bytes());
        let response = self.recv();
        assert_eq!(response.get("id").and_then(Value::as_u64), Some(id));
        response
            .get("body")
            .and_then(|b| b.get("shard"))
            .and_then(Value::as_u64)
            .expect("reactor pings report their shard")
    }
}

fn echo_line(id: u64, payload: &str) -> String {
    format!(
        "{{\"body\":{{\"payload\":\"{payload}\"}},\"endpoint\":\"echo\",\"id\":{id},\"v\":1}}\n"
    )
}

// ---------------------------------------------------------------------------
// Live-daemon tests
// ---------------------------------------------------------------------------

/// A frame dribbled in one byte at a time still parses and answers.
#[test]
fn partial_frames_split_across_reads_reassemble() {
    let mut handle = start_reactor(2, 4096);
    let mut client = Client::connect(&handle);
    let line = echo_line(9, "dribble");
    for byte in line.as_bytes() {
        client.send_raw(std::slice::from_ref(byte));
    }
    let response = client.recv();
    assert_eq!(response.get("id").and_then(Value::as_u64), Some(9));
    assert_eq!(
        response
            .get("body")
            .and_then(|b| b.get("echo"))
            .and_then(|e| e.get("payload"))
            .and_then(Value::as_str),
        Some("dribble")
    );
    handle.shutdown();
}

/// Many frames batched into a single socket write all get answered, in
/// submission order on the connection.
#[test]
fn multiple_frames_in_one_read_all_answer() {
    let mut handle = start_reactor(2, 4096);
    let mut client = Client::connect(&handle);
    let mut batch = String::new();
    for id in 1..=20u64 {
        batch.push_str(&echo_line(id, &format!("p{id}")));
    }
    client.send_raw(batch.as_bytes());
    for id in 1..=20u64 {
        let response = client.recv();
        assert_eq!(response.get("id").and_then(Value::as_u64), Some(id));
        assert_eq!(
            response
                .get("body")
                .and_then(|b| b.get("echo"))
                .and_then(|e| e.get("payload"))
                .and_then(Value::as_str),
            Some(format!("p{id}").as_str())
        );
    }
    handle.shutdown();
}

/// An oversized frame on the reactor gets the same 400-then-close as the
/// threads core, and doesn't disturb other connections.
#[test]
fn oversized_frame_gets_400_then_close() {
    let mut handle = start_reactor(2, 128);
    let mut victim = Client::connect(&handle);
    let mut bystander = Client::connect(&handle);
    victim.send_raw(&vec![b'a'; 400]);
    let response = victim.recv();
    assert_eq!(response.get("code").and_then(Value::as_u64), Some(400));
    assert!(
        response
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("byte cap")),
        "oversize teardown must say why: {response}"
    );
    let mut line = String::new();
    let n = victim.reader.read_line(&mut line).expect("read after 400");
    assert_eq!(n, 0, "connection must close after the oversize 400");
    // The shard keeps serving its other connections.
    bystander.ping_shard(1);
    handle.shutdown();
}

/// Interleaved pipelined clients each get exactly their own answers.
#[test]
fn interleaved_clients_never_cross_responses() {
    let mut handle = start_reactor(4, 4096);
    let mut clients: Vec<Client> = (0..8).map(|_| Client::connect(&handle)).collect();
    // Interleave: every client sends frame k before any client sends k+1.
    for round in 0..10u64 {
        for (c, client) in clients.iter_mut().enumerate() {
            let id = round * 100 + c as u64;
            client.send_raw(echo_line(id, &format!("c{c}r{round}")).as_bytes());
        }
    }
    for round in 0..10u64 {
        for (c, client) in clients.iter_mut().enumerate() {
            let id = round * 100 + c as u64;
            let response = client.recv();
            assert_eq!(response.get("id").and_then(Value::as_u64), Some(id));
            assert_eq!(
                response
                    .get("body")
                    .and_then(|b| b.get("echo"))
                    .and_then(|e| e.get("payload"))
                    .and_then(Value::as_str),
                Some(format!("c{c}r{round}").as_str()),
                "client {c} got someone else's answer in round {round}"
            );
        }
    }
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shard-affinity guarantee, as a property over random request
    /// schedules: however many connections are open and however their
    /// requests interleave, every request on one connection is served by
    /// the shard that accepted it.
    #[test]
    fn shard_assignment_never_migrates_a_connection(
        pings_per_conn in proptest::collection::vec(1usize..12, 2..9),
    ) {
        let mut handle = start_reactor(4, 4096);
        let mut clients: Vec<(Client, u64)> = pings_per_conn
            .iter()
            .map(|_| {
                let mut client = Client::connect(&handle);
                let home = client.ping_shard(0);
                (client, home)
            })
            .collect();
        let mut id = 1u64;
        for round in 0..pings_per_conn.iter().max().copied().unwrap_or(0) {
            for (i, (client, home)) in clients.iter_mut().enumerate() {
                if round < pings_per_conn[i] {
                    let shard = client.ping_shard(id);
                    prop_assert_eq!(
                        shard,
                        *home,
                        "connection {} migrated from shard {} to {}",
                        i,
                        *home,
                        shard
                    );
                    id += 1;
                }
            }
        }
        drop(clients);
        handle.shutdown();
    }
}

/// Round-robin must actually spread load: with more connections than
/// shards, at least two distinct shards answer pings.
#[test]
fn round_robin_acceptor_spreads_connections() {
    let mut handle = start_reactor(4, 4096);
    let homes: std::collections::BTreeSet<u64> = (0..8)
        .map(|_| Client::connect(&handle).ping_shard(0))
        .collect();
    assert!(homes.len() > 1, "round-robin acceptor never spread conns");
    handle.shutdown();
}
