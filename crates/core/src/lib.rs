//! # uptime-core
//!
//! Probabilistic availability and total-cost-of-ownership (TCO) model for
//! cloud-hosted systems composed of a *serial* chain of redundant clusters,
//! as proposed in
//!
//! > S. Venkateswaran and S. Sarkar, *"Uptime-Optimized Cloud Architecture
//! > as a Brokered Service"*, DSN 2017.
//!
//! A system `S` is a serial combination of `n` clusters. Cluster `C_i` has
//! `K_i` nodes, of which `K_i - K̂_i` must be active for the cluster to be
//! operational (`K̂_i` is the standby/failure budget — the paper's
//! *k-redundancy* model). Each node of `C_i` is independently down with
//! probability `P_i`, experiences `f_i` failures per year, and a failover
//! takes `t_i` minutes during which the cluster is unavailable.
//!
//! The crate evaluates:
//!
//! * **Breakdown downtime** `B_s` (paper Eq. 2) — probability that at least
//!   one cluster has more than `K̂_i` nodes down.
//! * **Failover downtime** `F_s` (paper Eq. 3) — expected fraction of time
//!   lost to failover transitions while every other cluster is healthy.
//! * **System uptime** `U_s = 1 − (B_s + F_s)` (paper Eqs. 1 & 4).
//! * **Monthly TCO** (paper Eq. 5) — HA cost plus the expected SLA-slippage
//!   penalty.
//!
//! # Quick example
//!
//! Reproduce the paper's solution option #1 (no HA anywhere, Fig. 4):
//!
//! ```
//! use uptime_core::{ClusterSpec, Probability, SystemSpec};
//!
//! # fn main() -> Result<(), uptime_core::ModelError> {
//! let system = SystemSpec::builder()
//!     .cluster(ClusterSpec::singleton("compute", Probability::new(0.01)?, 1.0)?)
//!     .cluster(ClusterSpec::singleton("storage", Probability::new(0.05)?, 2.0)?)
//!     .cluster(ClusterSpec::singleton("network", Probability::new(0.02)?, 1.0)?)
//!     .build()?;
//!
//! let uptime = system.uptime();
//! assert!((uptime.availability().value() - 0.9217).abs() < 1e-4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod cluster;
pub mod composition;
pub mod confidence;
pub mod error;
pub mod mtbf;
pub mod nines;
pub mod sensitivity;
pub mod sla;
pub mod system;
pub mod tco;
pub mod units;

pub use cluster::{ClusterSpec, ClusterSpecBuilder};
pub use composition::Block;
pub use confidence::{ConfidenceLevel, ProbabilityInterval};
pub use error::ModelError;
pub use mtbf::{FailureDynamics, Mtbf, Mttr};
pub use nines::Nines;
pub use sensitivity::{Sensitivity, SensitivityReport};
pub use sla::{PenaltyClause, RoundingPolicy, SlaTarget};
pub use system::{SystemSpec, SystemSpecBuilder, UptimeBreakdown};
pub use tco::{TcoBreakdown, TcoModel};
pub use units::{
    FailuresPerYear, Minutes, MoneyPerMonth, Probability, HOURS_PER_MONTH, MINUTES_PER_YEAR,
};
