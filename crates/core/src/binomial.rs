//! Numerically careful binomial machinery behind the paper's Eq. 2.
//!
//! A cluster with `K` nodes, each independently *up* with probability
//! `1 − P`, is operational when at least `K − K̂` nodes are up. Eq. 2 needs
//! the binomial survival function `Pr[X ≥ m]` for `X ~ Bin(K, 1 − P)`.
//!
//! Two evaluation strategies are provided:
//!
//! * [`survival_at_least`] — direct summation of PMF terms. Exact for the
//!   small `K` (≤ 64) found in real cluster topologies.
//! * [`survival_at_least_log`] — log-space summation for large `K` where
//!   `C(K, j)` overflows `f64`. Used as an ablation in the benchmarks.

use crate::units::Probability;

/// Computes the binomial coefficient `C(n, k)` as an `f64`.
///
/// Uses the multiplicative formula with running division, which is exact for
/// all results representable in `f64` without intermediate overflow.
///
/// Returns `0.0` when `k > n`.
///
/// # Examples
///
/// ```
/// use uptime_core::binomial::coefficient;
///
/// assert_eq!(coefficient(4, 2), 6.0);
/// assert_eq!(coefficient(4, 5), 0.0);
/// ```
#[must_use]
pub fn coefficient(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc *= f64::from(n - i);
        acc /= f64::from(i + 1);
    }
    acc
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Computed as `Σ ln((n−i)/(i+1))`, stable for `n` far beyond `f64`
/// factorial range.
///
/// Returns negative infinity when `k > n` (log of zero).
#[must_use]
pub fn ln_coefficient(n: u32, k: u32) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0_f64;
    for i in 0..k {
        acc += f64::from(n - i).ln() - f64::from(i + 1).ln();
    }
    acc
}

/// Probability mass `Pr[X = j]` for `X ~ Bin(n, p)`.
///
/// # Examples
///
/// ```
/// use uptime_core::binomial::pmf;
/// use uptime_core::Probability;
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let p = Probability::new(0.5)?;
/// assert!((pmf(2, 1, p) - 0.5).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn pmf(n: u32, j: u32, p: Probability) -> f64 {
    if j > n {
        return 0.0;
    }
    let p = p.value();
    coefficient(n, j) * p.powi(j as i32) * (1.0 - p).powi((n - j) as i32)
}

/// Survival function `Pr[X ≥ m]` for `X ~ Bin(n, p)` by direct summation.
///
/// This is the paper's per-cluster uptime when `p` is the node-*up*
/// probability and `m = K − K̂` is the required active count.
///
/// # Examples
///
/// Paper Fig. 7 — VMware HA 3+1 (`K = 4`, needs 3 up, node up 99%):
///
/// ```
/// use uptime_core::binomial::survival_at_least;
/// use uptime_core::Probability;
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let up = survival_at_least(4, 3, Probability::new(0.99)?);
/// assert!((up.value() - 0.99940796).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn survival_at_least(n: u32, m: u32, p: Probability) -> Probability {
    if m == 0 {
        return Probability::ONE;
    }
    if m > n {
        return Probability::ZERO;
    }
    let mut total = 0.0_f64;
    for j in m..=n {
        total += pmf(n, j, p);
    }
    Probability::saturating(total)
}

/// Survival function `Pr[X ≥ m]` evaluated in log space.
///
/// Sums `exp(ln C(n,j) + j ln p + (n−j) ln(1−p))` with a running max for
/// stability (log-sum-exp). Handles `n` in the tens of thousands where the
/// direct [`coefficient`] would overflow.
#[must_use]
pub fn survival_at_least_log(n: u32, m: u32, p: Probability) -> Probability {
    if m == 0 {
        return Probability::ONE;
    }
    if m > n {
        return Probability::ZERO;
    }
    let pv = p.value();
    if pv == 0.0 {
        // All trials fail: X is identically 0 and m >= 1.
        return Probability::ZERO;
    }
    if pv == 1.0 {
        return Probability::ONE;
    }
    let ln_p = pv.ln();
    let ln_q = (1.0 - pv).ln();
    let terms: Vec<f64> = (m..=n)
        .map(|j| ln_coefficient(n, j) + f64::from(j) * ln_p + f64::from(n - j) * ln_q)
        .collect();
    let max = terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return Probability::ZERO;
    }
    let sum: f64 = terms.iter().map(|t| (t - max).exp()).sum();
    Probability::saturating((max + sum.ln()).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn coefficient_small_values() {
        assert_eq!(coefficient(0, 0), 1.0);
        assert_eq!(coefficient(1, 0), 1.0);
        assert_eq!(coefficient(1, 1), 1.0);
        assert_eq!(coefficient(4, 2), 6.0);
        assert_eq!(coefficient(5, 3), 10.0);
        assert_eq!(coefficient(10, 5), 252.0);
        assert_eq!(coefficient(3, 7), 0.0);
    }

    #[test]
    fn coefficient_symmetry() {
        for n in 0..30u32 {
            for k in 0..=n {
                assert_eq!(coefficient(n, k), coefficient(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn coefficient_pascal_identity() {
        for n in 1..25u32 {
            for k in 1..n {
                let lhs = coefficient(n, k);
                let rhs = coefficient(n - 1, k - 1) + coefficient(n - 1, k);
                assert!((lhs - rhs).abs() < 1e-6 * lhs.max(1.0), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn ln_coefficient_matches_direct() {
        for n in [1u32, 5, 12, 40] {
            for k in 0..=n {
                let direct = coefficient(n, k).ln();
                let logged = ln_coefficient(n, k);
                assert!((direct - logged).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn ln_coefficient_out_of_range() {
        assert_eq!(ln_coefficient(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &pv in &[0.0, 0.01, 0.3, 0.5, 0.97, 1.0] {
            for n in [1u32, 2, 5, 9] {
                let total: f64 = (0..=n).map(|j| pmf(n, j, p(pv))).sum();
                assert!((total - 1.0).abs() < 1e-12, "n={n} p={pv}");
            }
        }
    }

    #[test]
    fn pmf_degenerate_cases() {
        assert_eq!(pmf(3, 4, p(0.5)), 0.0);
        assert_eq!(pmf(3, 3, p(1.0)), 1.0);
        assert_eq!(pmf(3, 0, p(0.0)), 1.0);
    }

    #[test]
    fn survival_boundaries() {
        assert_eq!(survival_at_least(5, 0, p(0.2)).value(), 1.0);
        assert_eq!(survival_at_least(5, 6, p(0.99)).value(), 0.0);
        assert_eq!(survival_at_least(5, 5, p(1.0)).value(), 1.0);
        assert_eq!(survival_at_least(5, 1, p(0.0)).value(), 0.0);
    }

    #[test]
    fn survival_single_node_cluster() {
        // K=1, needs 1 up: survival == node-up probability.
        let up = survival_at_least(1, 1, p(0.95));
        assert!((up.value() - 0.95).abs() < 1e-15);
    }

    #[test]
    fn survival_dual_node_one_needed() {
        // Paper's RAID-1 / dual gateway: up unless both nodes down.
        let up = survival_at_least(2, 1, p(0.95));
        assert!((up.value() - (1.0 - 0.05 * 0.05)).abs() < 1e-12);
    }

    #[test]
    fn survival_vmware_3_plus_1() {
        // Paper Fig. 7: K=4, active 3, node up 0.99.
        let up = survival_at_least(4, 3, p(0.99));
        let expected = 4.0 * 0.99f64.powi(3) * 0.01 + 0.99f64.powi(4);
        assert!((up.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn survival_monotone_in_p() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let cur = survival_at_least(6, 4, p(f64::from(i) / 100.0)).value();
            assert!(cur + 1e-12 >= prev, "not monotone at i={i}");
            prev = cur;
        }
    }

    #[test]
    fn survival_monotone_in_threshold() {
        // Requiring more nodes up can only reduce the probability.
        for m in 1..=6u32 {
            let hi = survival_at_least(6, m, p(0.9)).value();
            let lo = survival_at_least(6, m + 1, p(0.9)).value();
            assert!(lo <= hi + 1e-15, "m={m}");
        }
    }

    #[test]
    fn log_space_matches_direct_small_n() {
        for n in [1u32, 4, 16, 50] {
            for m in 0..=n {
                for &pv in &[0.01, 0.2, 0.5, 0.9, 0.999] {
                    let a = survival_at_least(n, m, p(pv)).value();
                    let b = survival_at_least_log(n, m, p(pv)).value();
                    assert!(
                        (a - b).abs() < 1e-9,
                        "n={n} m={m} p={pv}: direct={a} log={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn log_space_handles_huge_n() {
        // C(10000, 5000) overflows f64; log space must still work.
        let v = survival_at_least_log(10_000, 5_000, p(0.5)).value();
        // Median of a symmetric binomial: Pr[X >= n/2] slightly above 0.5.
        assert!(v > 0.5 && v < 0.52, "got {v}");
    }

    #[test]
    fn log_space_extreme_p() {
        assert_eq!(survival_at_least_log(100, 1, p(0.0)).value(), 0.0);
        assert_eq!(survival_at_least_log(100, 100, p(1.0)).value(), 1.0);
        assert_eq!(survival_at_least_log(100, 0, p(0.0)).value(), 1.0);
    }
}
