//! Sensitivity of system uptime to the broker-supplied parameters.
//!
//! The paper's *threats to validity* (§IV) notes that the broker's recorded
//! `P_i`, `f_i`, `t_i` may be skewed by marketplace dynamics. This module
//! quantifies how much a skew in each parameter moves the modeled uptime,
//! via central finite differences — so a broker can flag recommendations
//! that hinge on poorly-estimated inputs.

use serde::{Deserialize, Serialize};

use crate::system::SystemSpec;
use crate::units::{FailuresPerYear, Minutes, Probability};

/// Relative step used for finite differencing.
const REL_STEP: f64 = 1e-4;
/// Absolute fallback step for parameters at zero.
const ABS_STEP: f64 = 1e-6;

/// The sensitivity of `U_s` to one cluster's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Index of the cluster within the system.
    pub cluster_index: usize,
    /// `∂U_s/∂P_i` — change in uptime per unit change in node-down
    /// probability (dimensionless; expected negative).
    pub d_uptime_d_down_probability: f64,
    /// `∂U_s/∂t_i` — change in uptime per extra failover minute
    /// (expected non-positive).
    pub d_uptime_d_failover_minute: f64,
    /// `∂U_s/∂f_i` — change in uptime per extra yearly failure
    /// (expected non-positive).
    pub d_uptime_d_failures_per_year: f64,
}

impl Sensitivity {
    /// The largest-magnitude derivative, used for ranking risky inputs.
    #[must_use]
    pub fn dominant_magnitude(&self) -> f64 {
        self.d_uptime_d_down_probability
            .abs()
            .max(self.d_uptime_d_failover_minute.abs())
            .max(self.d_uptime_d_failures_per_year.abs())
    }
}

/// Sensitivities for every cluster of a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    entries: Vec<Sensitivity>,
}

impl SensitivityReport {
    /// Computes the report for a system via central finite differences.
    ///
    /// # Examples
    ///
    /// ```
    /// use uptime_core::{ClusterSpec, Probability, SensitivityReport, SystemSpec};
    ///
    /// # fn main() -> Result<(), uptime_core::ModelError> {
    /// let system = SystemSpec::builder()
    ///     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
    ///     .cluster(ClusterSpec::singleton("db", Probability::new(0.05)?, 2.0)?)
    ///     .build()?;
    /// let report = SensitivityReport::analyze(&system);
    /// // The flakier database dominates the uptime risk.
    /// assert_eq!(report.most_sensitive_cluster().unwrap().cluster_index, 1);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn analyze(system: &SystemSpec) -> Self {
        let entries = (0..system.len())
            .map(|i| analyze_cluster(system, i))
            .collect();
        SensitivityReport { entries }
    }

    /// Per-cluster sensitivities, in system order.
    #[must_use]
    pub fn entries(&self) -> &[Sensitivity] {
        &self.entries
    }

    /// The cluster whose parameters most influence uptime.
    #[must_use]
    pub fn most_sensitive_cluster(&self) -> Option<&Sensitivity> {
        self.entries.iter().max_by(|a, b| {
            a.dominant_magnitude()
                .partial_cmp(&b.dominant_magnitude())
                .expect("finite differences are finite")
        })
    }
}

fn uptime_with(
    system: &SystemSpec,
    index: usize,
    replace: impl Fn(&crate::ClusterSpec) -> crate::ClusterSpec,
) -> f64 {
    let clusters: Vec<_> = system
        .clusters()
        .iter()
        .enumerate()
        .map(|(i, c)| if i == index { replace(c) } else { c.clone() })
        .collect();
    SystemSpec::new(clusters)
        .expect("same cardinality as a valid system")
        .uptime()
        .availability()
        .value()
}

fn central_difference(lo_val: f64, hi_val: f64, step: f64) -> f64 {
    (hi_val - lo_val) / (2.0 * step)
}

fn analyze_cluster(system: &SystemSpec, index: usize) -> Sensitivity {
    let cluster = &system.clusters()[index];

    // P_i: step within [0, 1].
    let p0 = cluster.node_down_probability().value();
    let hp = (p0 * REL_STEP)
        .max(ABS_STEP)
        .min((1.0 - p0).min(p0).max(ABS_STEP));
    let (p_lo, p_hi) = ((p0 - hp).max(0.0), (p0 + hp).min(1.0));
    let dp = {
        let lo = uptime_with(system, index, |c| {
            c.with_node_down_probability(Probability::saturating(p_lo))
        });
        let hi = uptime_with(system, index, |c| {
            c.with_node_down_probability(Probability::saturating(p_hi))
        });
        (hi - lo) / (p_hi - p_lo)
    };

    // t_i.
    let t0 = cluster.failover_time().value();
    let ht = (t0 * REL_STEP).max(ABS_STEP);
    let t_lo = (t0 - ht).max(0.0);
    let t_hi = t0 + ht;
    let dt = {
        let lo = uptime_with(system, index, |c| {
            c.with_failover_time(Minutes::new(t_lo).expect("non-negative"))
        });
        let hi = uptime_with(system, index, |c| {
            c.with_failover_time(Minutes::new(t_hi).expect("non-negative"))
        });
        (hi - lo) / (t_hi - t_lo)
    };

    // f_i.
    let f0 = cluster.failures_per_year().value();
    let hf = (f0 * REL_STEP).max(ABS_STEP);
    let f_lo = (f0 - hf).max(0.0);
    let f_hi = f0 + hf;
    let df = {
        let lo = uptime_with(system, index, |c| {
            c.with_failures_per_year(FailuresPerYear::new(f_lo).expect("non-negative"))
        });
        let hi = uptime_with(system, index, |c| {
            c.with_failures_per_year(FailuresPerYear::new(f_hi).expect("non-negative"))
        });
        central_difference(lo, hi, (f_hi - f_lo) / 2.0)
    };

    Sensitivity {
        cluster_index: index,
        d_uptime_d_down_probability: dp,
        d_uptime_d_failover_minute: dt,
        d_uptime_d_failures_per_year: df,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn paper_system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
            .cluster(ClusterSpec::singleton("storage", p(0.05), 2.0).unwrap())
            .cluster(ClusterSpec::singleton("network", p(0.02), 1.0).unwrap())
            .build()
            .unwrap()
    }

    fn ha_system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("compute")
                    .total_nodes(4)
                    .standby_budget(1)
                    .node_down_probability(p(0.01))
                    .failures_per_year(FailuresPerYear::new(1.0).unwrap())
                    .failover_time(Minutes::new(6.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .cluster(ClusterSpec::singleton("storage", p(0.05), 2.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn singleton_sensitivity_matches_analytic_derivative() {
        // For serial singletons, U = Π(1−P_i), so ∂U/∂P_1 = −(1−P_2)(1−P_3).
        let report = SensitivityReport::analyze(&paper_system());
        let s = &report.entries()[0];
        let expected = -(0.95 * 0.98);
        assert!(
            (s.d_uptime_d_down_probability - expected).abs() < 1e-6,
            "got {}",
            s.d_uptime_d_down_probability
        );
    }

    #[test]
    fn raising_down_probability_lowers_uptime() {
        for s in SensitivityReport::analyze(&paper_system()).entries() {
            assert!(s.d_uptime_d_down_probability < 0.0);
        }
    }

    #[test]
    fn failover_time_derivative_matches_analytic_for_singletons() {
        // Singletons have t = 0 but f > 0, so adding failover minutes costs
        // uptime at slope −f·(K−K̂)/δ · Π_{j≠i}(1−P_j).
        let report = SensitivityReport::analyze(&paper_system());
        let expected = [
            -(1.0 / 525_600.0) * (0.95 * 0.98),
            -(2.0 / 525_600.0) * (0.99 * 0.98),
            -(1.0 / 525_600.0) * (0.99 * 0.95),
        ];
        for (s, want) in report.entries().iter().zip(expected) {
            assert!(
                (s.d_uptime_d_failover_minute - want).abs() < 1e-9,
                "cluster {}: got {} want {want}",
                s.cluster_index,
                s.d_uptime_d_failover_minute
            );
        }
    }

    #[test]
    fn failover_derivative_negative_with_ha() {
        let report = SensitivityReport::analyze(&ha_system());
        let compute = &report.entries()[0];
        // Adding failover minutes must cost uptime: slope = −f·(K−K̂)/δ ×
        // P(others up) = −(3/525600) × 0.95.
        let expected = -(3.0 / 525_600.0) * 0.95;
        assert!(
            (compute.d_uptime_d_failover_minute - expected).abs() < 1e-9,
            "got {}",
            compute.d_uptime_d_failover_minute
        );
        assert!(compute.d_uptime_d_failures_per_year < 0.0);
    }

    #[test]
    fn most_sensitive_cluster_is_storage_in_paper_system() {
        // Storage has the highest P and the biggest derivative product of
        // the others: |∂U/∂P_storage| = 0.99×0.98 = 0.9702, the largest.
        let report = SensitivityReport::analyze(&paper_system());
        let top = report.most_sensitive_cluster().unwrap();
        assert_eq!(top.cluster_index, 1);
    }

    #[test]
    fn report_has_one_entry_per_cluster() {
        let report = SensitivityReport::analyze(&paper_system());
        assert_eq!(report.entries().len(), 3);
        for (i, e) in report.entries().iter().enumerate() {
            assert_eq!(e.cluster_index, i);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let report = SensitivityReport::analyze(&ha_system());
        let json = serde_json::to_string(&report).unwrap();
        let back: SensitivityReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
