//! Strongly-typed scalar quantities used throughout the model.
//!
//! The paper's formulas mix probabilities, minutes, yearly failure rates and
//! monthly dollar amounts. Newtypes keep those apart at compile time
//! (guideline C-NEWTYPE) while staying `Copy` and cheap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Number of minutes in a (non-leap) year: the paper's `δ = 525600`.
pub const MINUTES_PER_YEAR: f64 = 525_600.0;

/// Number of hours in a contractual month, `δ / (12 × 60) = 730`.
pub const HOURS_PER_MONTH: f64 = MINUTES_PER_YEAR / (12.0 * 60.0);

/// A probability, guaranteed to be finite and within `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uptime_core::Probability;
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let p = Probability::new(0.05)?;
/// assert_eq!(p.complement().value(), 0.95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// A probability of exactly zero.
    pub const ZERO: Probability = Probability(0.0);
    /// A probability of exactly one.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `value` is NaN,
    /// infinite, or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(ModelError::InvalidProbability { value })
        }
    }

    /// Creates a probability, clamping out-of-range finite values into
    /// `[0, 1]`. NaN becomes zero.
    ///
    /// Useful when tiny negative values arise from floating-point
    /// cancellation in otherwise-valid arithmetic.
    #[must_use]
    pub fn saturating(value: f64) -> Self {
        if value.is_nan() {
            Probability(0.0)
        } else {
            Probability(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a probability from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if the percentage is
    /// outside `[0, 100]` or not finite.
    pub fn from_percent(percent: f64) -> Result<Self, ModelError> {
        Self::new(percent / 100.0)
    }

    /// The raw value in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// This probability expressed as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// `1 − p`, computed exactly within the type.
    #[must_use]
    pub fn complement(self) -> Self {
        Probability(1.0 - self.0)
    }

    /// Product of two probabilities (intersection of independent events).
    #[must_use]
    pub fn and(self, other: Probability) -> Self {
        Probability(self.0 * other.0)
    }

    /// Union of two independent events: `p + q − pq`.
    #[must_use]
    pub fn or_independent(self, other: Probability) -> Self {
        Probability::saturating(self.0 + other.0 - self.0 * other.0)
    }

    /// `p^k` for a non-negative integer exponent.
    #[must_use]
    pub fn powi(self, k: u32) -> Self {
        Probability::saturating(self.0.powi(k as i32))
    }
}

impl Eq for Probability {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Probability {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid because construction forbids NaN.
        self.partial_cmp(other)
            .expect("probabilities are never NaN")
    }
}

impl TryFrom<f64> for Probability {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}%", precision, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

/// A duration expressed in minutes; always finite and non-negative.
///
/// # Examples
///
/// ```
/// use uptime_core::Minutes;
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let failover = Minutes::new(6.0)?;
/// assert_eq!(failover.as_hours(), 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Minutes(f64);

impl Minutes {
    /// Zero minutes.
    pub const ZERO: Minutes = Minutes(0.0);

    /// Creates a duration in minutes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `value` is negative, NaN,
    /// or infinite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value >= 0.0 {
            Ok(Minutes(value))
        } else {
            Err(ModelError::InvalidQuantity {
                what: "duration in minutes",
                value,
            })
        }
    }

    /// Creates a duration from seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] on negative or non-finite
    /// input.
    pub fn from_seconds(seconds: f64) -> Result<Self, ModelError> {
        Self::new(seconds / 60.0)
    }

    /// Creates a duration from hours.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] on negative or non-finite
    /// input.
    pub fn from_hours(hours: f64) -> Result<Self, ModelError> {
        Self::new(hours * 60.0)
    }

    /// The raw number of minutes.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// This duration in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 60.0
    }

    /// This duration as a fraction of a year (the paper divides by `δ`).
    #[must_use]
    pub fn as_year_fraction(self) -> f64 {
        self.0 / MINUTES_PER_YEAR
    }
}

impl TryFrom<f64> for Minutes {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Minutes::new(value)
    }
}

impl From<Minutes> for f64 {
    fn from(m: Minutes) -> f64 {
        m.0
    }
}

impl Add for Minutes {
    type Output = Minutes;

    fn add(self, rhs: Minutes) -> Minutes {
        Minutes(self.0 + rhs.0)
    }
}

impl AddAssign for Minutes {
    fn add_assign(&mut self, rhs: Minutes) {
        self.0 += rhs.0;
    }
}

impl Sub for Minutes {
    type Output = Minutes;

    fn sub(self, rhs: Minutes) -> Minutes {
        Minutes((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Minutes {
    type Output = Minutes;

    fn mul(self, rhs: f64) -> Minutes {
        Minutes(self.0 * rhs)
    }
}

impl Sum for Minutes {
    fn sum<I: Iterator<Item = Minutes>>(iter: I) -> Minutes {
        Minutes(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for Minutes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} min", self.0)
    }
}

/// An average node-failure rate in failures per node-year (`f_i`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct FailuresPerYear(f64);

impl FailuresPerYear {
    /// No failures at all.
    pub const ZERO: FailuresPerYear = FailuresPerYear(0.0);

    /// Creates a failure rate.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `value` is negative, NaN,
    /// or infinite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value >= 0.0 {
            Ok(FailuresPerYear(value))
        } else {
            Err(ModelError::InvalidQuantity {
                what: "failures per year",
                value,
            })
        }
    }

    /// The raw rate.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl TryFrom<f64> for FailuresPerYear {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        FailuresPerYear::new(value)
    }
}

impl From<FailuresPerYear> for f64 {
    fn from(v: FailuresPerYear) -> f64 {
        v.0
    }
}

impl fmt::Display for FailuresPerYear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/yr", self.0)
    }
}

/// A monthly dollar amount (cost, penalty, or TCO component).
///
/// Negative amounts are permitted only through subtraction saturating at
/// zero; constructors reject them, matching the paper's cost semantics.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct MoneyPerMonth(f64);

impl MoneyPerMonth {
    /// Zero dollars per month.
    pub const ZERO: MoneyPerMonth = MoneyPerMonth(0.0);

    /// Creates a monthly dollar amount.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `value` is negative, NaN,
    /// or infinite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value >= 0.0 {
            Ok(MoneyPerMonth(value))
        } else {
            Err(ModelError::InvalidQuantity {
                what: "monthly dollar amount",
                value,
            })
        }
    }

    /// The raw dollar amount.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Eq for MoneyPerMonth {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for MoneyPerMonth {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other)
            .expect("money amounts are never NaN")
    }
}

impl TryFrom<f64> for MoneyPerMonth {
    type Error = ModelError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        MoneyPerMonth::new(value)
    }
}

impl From<MoneyPerMonth> for f64 {
    fn from(v: MoneyPerMonth) -> f64 {
        v.0
    }
}

impl Add for MoneyPerMonth {
    type Output = MoneyPerMonth;

    fn add(self, rhs: MoneyPerMonth) -> MoneyPerMonth {
        MoneyPerMonth(self.0 + rhs.0)
    }
}

impl AddAssign for MoneyPerMonth {
    fn add_assign(&mut self, rhs: MoneyPerMonth) {
        self.0 += rhs.0;
    }
}

impl Sub for MoneyPerMonth {
    type Output = MoneyPerMonth;

    /// Saturating subtraction: never goes below zero.
    fn sub(self, rhs: MoneyPerMonth) -> MoneyPerMonth {
        MoneyPerMonth((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for MoneyPerMonth {
    type Output = MoneyPerMonth;

    fn mul(self, rhs: f64) -> MoneyPerMonth {
        MoneyPerMonth(self.0 * rhs)
    }
}

impl Div<MoneyPerMonth> for MoneyPerMonth {
    type Output = f64;

    fn div(self, rhs: MoneyPerMonth) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for MoneyPerMonth {
    fn sum<I: Iterator<Item = MoneyPerMonth>>(iter: I) -> MoneyPerMonth {
        MoneyPerMonth(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for MoneyPerMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "${:.*}/mo", precision, self.0)
        } else {
            write!(f, "${}/mo", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_rejects_out_of_range() {
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
    }

    #[test]
    fn probability_saturating_clamps() {
        assert_eq!(Probability::saturating(-1e-18).value(), 0.0);
        assert_eq!(Probability::saturating(1.0 + 1e-12).value(), 1.0);
        assert_eq!(Probability::saturating(f64::NAN).value(), 0.0);
        assert_eq!(Probability::saturating(0.5).value(), 0.5);
    }

    #[test]
    fn probability_complement_roundtrips() {
        let p = Probability::new(0.3).unwrap();
        assert!((p.complement().complement().value() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn probability_from_percent() {
        let p = Probability::from_percent(98.0).unwrap();
        assert!((p.value() - 0.98).abs() < 1e-15);
        assert!(Probability::from_percent(101.0).is_err());
    }

    #[test]
    fn probability_algebra() {
        let p = Probability::new(0.5).unwrap();
        let q = Probability::new(0.5).unwrap();
        assert_eq!(p.and(q).value(), 0.25);
        assert_eq!(p.or_independent(q).value(), 0.75);
        assert_eq!(p.powi(3).value(), 0.125);
        assert_eq!(p.powi(0).value(), 1.0);
    }

    #[test]
    fn probability_ordering_and_display() {
        let lo = Probability::new(0.1).unwrap();
        let hi = Probability::new(0.9).unwrap();
        assert!(lo < hi);
        assert_eq!(format!("{lo:.1}"), "10.0%");
    }

    #[test]
    fn minutes_constructors_and_conversions() {
        assert_eq!(Minutes::from_seconds(30.0).unwrap().value(), 0.5);
        assert_eq!(Minutes::from_hours(2.0).unwrap().value(), 120.0);
        assert!(Minutes::new(-1.0).is_err());
        let year = Minutes::new(MINUTES_PER_YEAR).unwrap();
        assert!((year.as_year_fraction() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn minutes_arithmetic_saturates_on_subtraction() {
        let a = Minutes::new(5.0).unwrap();
        let b = Minutes::new(8.0).unwrap();
        assert_eq!((a - b).value(), 0.0);
        assert_eq!((b - a).value(), 3.0);
        assert_eq!((a + b).value(), 13.0);
        assert_eq!((a * 2.0).value(), 10.0);
    }

    #[test]
    fn minutes_sum() {
        let total: Minutes = vec![Minutes::new(1.0).unwrap(), Minutes::new(2.5).unwrap()]
            .into_iter()
            .sum();
        assert_eq!(total.value(), 3.5);
    }

    #[test]
    fn money_arithmetic() {
        let a = MoneyPerMonth::new(350.0).unwrap();
        let b = MoneyPerMonth::new(1000.0).unwrap();
        assert_eq!((a + b).value(), 1350.0);
        assert_eq!((a - b).value(), 0.0);
        assert_eq!((b - a).value(), 650.0);
        assert_eq!((a * 2.0).value(), 700.0);
        assert!(MoneyPerMonth::new(-5.0).is_err());
        assert!((b / a - 1000.0 / 350.0).abs() < 1e-12);
    }

    #[test]
    fn money_ordering_picks_minimum() {
        let options = [
            MoneyPerMonth::new(4300.0).unwrap(),
            MoneyPerMonth::new(1250.0).unwrap(),
            MoneyPerMonth::new(3550.0).unwrap(),
        ];
        assert_eq!(options.iter().min().unwrap().value(), 1250.0);
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(MINUTES_PER_YEAR, 525_600.0);
        assert_eq!(HOURS_PER_MONTH, 730.0);
    }

    #[test]
    fn serde_roundtrip_and_validation() {
        let p: Probability = serde_json::from_str("0.25").unwrap();
        assert_eq!(p.value(), 0.25);
        assert!(serde_json::from_str::<Probability>("1.5").is_err());
        assert_eq!(serde_json::to_string(&p).unwrap(), "0.25");

        let m: Minutes = serde_json::from_str("6.0").unwrap();
        assert_eq!(m.value(), 6.0);
        assert!(serde_json::from_str::<Minutes>("-2.0").is_err());

        let c: MoneyPerMonth = serde_json::from_str("2200.0").unwrap();
        assert_eq!(c.value(), 2200.0);
    }

    #[test]
    fn failures_per_year_validation() {
        assert!(FailuresPerYear::new(2.0).is_ok());
        assert!(FailuresPerYear::new(-0.5).is_err());
        assert_eq!(FailuresPerYear::ZERO.value(), 0.0);
        assert_eq!(FailuresPerYear::new(1.0).unwrap().to_string(), "1/yr");
    }
}
