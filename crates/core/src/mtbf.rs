//! Conversions between the paper's `(P, f)` parameterization and the
//! classical MTBF/MTTR view used by the discrete-event simulator.
//!
//! If a node suffers `f` failures per year and is down with steady-state
//! probability `P`, then over one year it spends `P·δ` minutes down across
//! `f` outages, so:
//!
//! ```text
//! MTTR = P · δ / f          (minutes per repair)
//! MTBF = (1 − P) · δ / f    (minutes of healthy operation between failures)
//! ```
//!
//! and conversely `P = MTTR / (MTBF + MTTR)`, `f = δ / (MTBF + MTTR)`.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::units::{FailuresPerYear, Minutes, Probability, MINUTES_PER_YEAR};

/// Mean time between failures, in minutes of healthy operation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mtbf(Minutes);

impl Mtbf {
    /// Creates an MTBF from minutes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `minutes` is non-positive
    /// or not finite.
    pub fn from_minutes(minutes: f64) -> Result<Self, ModelError> {
        if !(minutes.is_finite() && minutes > 0.0) {
            return Err(ModelError::InvalidQuantity {
                what: "MTBF minutes",
                value: minutes,
            });
        }
        Ok(Mtbf(Minutes::new(minutes)?))
    }

    /// The MTBF as a [`Minutes`] value.
    #[must_use]
    pub fn as_minutes(self) -> Minutes {
        self.0
    }
}

/// Mean time to repair, in minutes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mttr(Minutes);

impl Mttr {
    /// Creates an MTTR from minutes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `minutes` is negative or
    /// not finite.
    pub fn from_minutes(minutes: f64) -> Result<Self, ModelError> {
        if !(minutes.is_finite() && minutes >= 0.0) {
            return Err(ModelError::InvalidQuantity {
                what: "MTTR minutes",
                value: minutes,
            });
        }
        Ok(Mttr(Minutes::new(minutes)?))
    }

    /// The MTTR as a [`Minutes`] value.
    #[must_use]
    pub fn as_minutes(self) -> Minutes {
        self.0
    }
}

/// A node's failure dynamics: the `(MTBF, MTTR)` pair equivalent to the
/// paper's `(P, f)`.
///
/// # Examples
///
/// The paper's storage node (`P = 5 %`, `f = 2/yr`) repairs in
/// `0.05 × 525600 / 2 = 13140` minutes ≈ 9.1 days:
///
/// ```
/// use uptime_core::{FailureDynamics, FailuresPerYear, Probability};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let dyn_ = FailureDynamics::from_paper_params(
///     Probability::new(0.05)?,
///     FailuresPerYear::new(2.0)?,
/// )?;
/// assert!((dyn_.mttr().as_minutes().value() - 13_140.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureDynamics {
    mtbf: Mtbf,
    mttr: Mttr,
}

impl FailureDynamics {
    /// Creates dynamics from explicit MTBF and MTTR.
    #[must_use]
    pub fn new(mtbf: Mtbf, mttr: Mttr) -> Self {
        FailureDynamics { mtbf, mttr }
    }

    /// Derives `(MTBF, MTTR)` from the paper's `(P, f)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] when `f = 0` with `P > 0`
    /// (a node that is sometimes down but never fails is contradictory) or
    /// when `P = 1` (a node that is always down has no MTBF).
    pub fn from_paper_params(
        down_probability: Probability,
        failures_per_year: FailuresPerYear,
    ) -> Result<Self, ModelError> {
        let p = down_probability.value();
        let f = failures_per_year.value();
        if p >= 1.0 {
            return Err(ModelError::InvalidQuantity {
                what: "down probability for MTBF derivation",
                value: p,
            });
        }
        if f <= 0.0 {
            if p > 0.0 {
                return Err(ModelError::InvalidQuantity {
                    what: "failures per year (zero with positive downtime)",
                    value: f,
                });
            }
            // Never fails: model as one failure per 10^9 years, instant repair.
            return Ok(FailureDynamics {
                mtbf: Mtbf::from_minutes(MINUTES_PER_YEAR * 1e9)?,
                mttr: Mttr::from_minutes(0.0)?,
            });
        }
        Ok(FailureDynamics {
            mtbf: Mtbf::from_minutes((1.0 - p) * MINUTES_PER_YEAR / f)?,
            mttr: Mttr::from_minutes(p * MINUTES_PER_YEAR / f)?,
        })
    }

    /// Mean time between failures.
    #[must_use]
    pub fn mtbf(&self) -> Mtbf {
        self.mtbf
    }

    /// Mean time to repair.
    #[must_use]
    pub fn mttr(&self) -> Mttr {
        self.mttr
    }

    /// Steady-state down probability, `MTTR / (MTBF + MTTR)`.
    #[must_use]
    pub fn down_probability(&self) -> Probability {
        let mtbf = self.mtbf.as_minutes().value();
        let mttr = self.mttr.as_minutes().value();
        Probability::saturating(mttr / (mtbf + mttr))
    }

    /// Failures per year, `δ / (MTBF + MTTR)`.
    #[must_use]
    pub fn failures_per_year(&self) -> FailuresPerYear {
        let cycle = self.mtbf.as_minutes().value() + self.mttr.as_minutes().value();
        FailuresPerYear::new(MINUTES_PER_YEAR / cycle)
            .expect("positive cycle length yields a valid rate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn f(v: f64) -> FailuresPerYear {
        FailuresPerYear::new(v).unwrap()
    }

    #[test]
    fn paper_compute_node_dynamics() {
        // P = 1 %, f = 1/yr: MTTR = 5256 min (3.65 days), MTBF = 520344.
        let d = FailureDynamics::from_paper_params(p(0.01), f(1.0)).unwrap();
        assert!((d.mttr().as_minutes().value() - 5256.0).abs() < 1e-9);
        assert!((d.mtbf().as_minutes().value() - 520_344.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_p_and_f() {
        for &(pv, fv) in &[(0.01, 1.0), (0.05, 2.0), (0.02, 1.0), (0.2, 6.0)] {
            let d = FailureDynamics::from_paper_params(p(pv), f(fv)).unwrap();
            assert!((d.down_probability().value() - pv).abs() < 1e-12, "P {pv}");
            assert!((d.failures_per_year().value() - fv).abs() < 1e-9, "f {fv}");
        }
    }

    #[test]
    fn never_failing_node() {
        let d = FailureDynamics::from_paper_params(p(0.0), f(0.0)).unwrap();
        assert_eq!(d.down_probability().value(), 0.0);
        assert!(d.failures_per_year().value() < 1e-6);
    }

    #[test]
    fn contradictory_params_rejected() {
        assert!(FailureDynamics::from_paper_params(p(0.5), f(0.0)).is_err());
        assert!(FailureDynamics::from_paper_params(p(1.0), f(1.0)).is_err());
    }

    #[test]
    fn validation_of_raw_constructors() {
        assert!(Mtbf::from_minutes(0.0).is_err());
        assert!(Mtbf::from_minutes(-1.0).is_err());
        assert!(Mtbf::from_minutes(f64::NAN).is_err());
        assert!(Mttr::from_minutes(0.0).is_ok());
        assert!(Mttr::from_minutes(-1.0).is_err());
    }

    #[test]
    fn explicit_construction() {
        let d = FailureDynamics::new(
            Mtbf::from_minutes(900.0).unwrap(),
            Mttr::from_minutes(100.0).unwrap(),
        );
        assert!((d.down_probability().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let d = FailureDynamics::from_paper_params(p(0.05), f(2.0)).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: FailureDynamics = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
