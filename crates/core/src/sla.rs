//! SLA targets, penalty clauses, and slippage-hour accounting.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::units::{MoneyPerMonth, Probability, HOURS_PER_MONTH};

/// How fractional slippage hours are converted to billable hours.
///
/// The paper's tables bill whole hours: Fig. 4 shows 42.57 h → "43 hours
/// slippage" → $4300, and option #7 in Fig. 10 implies 2.2 h → 3 h → $300.
/// Both are consistent with taking the **ceiling**, which is therefore the
/// default used by the reproduction harness; [`RoundingPolicy::Exact`] is
/// provided for analytical work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoundingPolicy {
    /// Bill exact fractional hours.
    Exact,
    /// Round to the nearest whole hour.
    NearestHour,
    /// Round up to the next whole hour (paper's apparent convention).
    #[default]
    CeilHour,
}

impl RoundingPolicy {
    /// Applies the policy to a raw hour count.
    #[must_use]
    pub fn apply(self, hours: f64) -> f64 {
        match self {
            RoundingPolicy::Exact => hours,
            RoundingPolicy::NearestHour => hours.round(),
            RoundingPolicy::CeilHour => hours.ceil(),
        }
    }
}

/// A contractual uptime target `U_SLA`, e.g. 98 %.
///
/// # Examples
///
/// ```
/// use uptime_core::{Probability, SlaTarget};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let sla = SlaTarget::from_percent(98.0)?;
/// assert!(sla.is_met_by(Probability::new(0.9871)?));
/// assert!(!sla.is_met_by(Probability::new(0.9217)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct SlaTarget {
    target: Probability,
}

impl SlaTarget {
    /// Creates an SLA target from a percentage in `(0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSlaTarget`] for non-finite values or
    /// values outside `(0, 100]`.
    pub fn from_percent(percent: f64) -> Result<Self, ModelError> {
        if !(percent.is_finite() && percent > 0.0 && percent <= 100.0) {
            return Err(ModelError::InvalidSlaTarget { percent });
        }
        Ok(SlaTarget {
            target: Probability::new(percent / 100.0)
                .map_err(|_| ModelError::InvalidSlaTarget { percent })?,
        })
    }

    /// Creates an SLA target from a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSlaTarget`] if the probability is zero.
    pub fn from_probability(p: Probability) -> Result<Self, ModelError> {
        if p.value() == 0.0 {
            return Err(ModelError::InvalidSlaTarget { percent: 0.0 });
        }
        Ok(SlaTarget { target: p })
    }

    /// The target as a probability.
    #[must_use]
    pub fn target(&self) -> Probability {
        self.target
    }

    /// The target as a percentage.
    #[must_use]
    pub fn as_percent(&self) -> f64 {
        self.target.as_percent()
    }

    /// Whether an achieved uptime satisfies this SLA.
    #[must_use]
    pub fn is_met_by(&self, uptime: Probability) -> bool {
        uptime >= self.target
    }

    /// Raw (unrounded) slippage hours per contractual month:
    /// `max(0, U_SLA − U_s) × 730` (the paper's `δ/(12×60)` conversion).
    #[must_use]
    pub fn slippage_hours_per_month(&self, uptime: Probability) -> f64 {
        (self.target.value() - uptime.value()).max(0.0) * HOURS_PER_MONTH
    }
}

/// A financial penalty clause for SLA slippage.
///
/// The paper uses a linear clause: `SP` dollars per hour of slippage.
/// [`PenaltyClause::Tiered`] extends this with escalating rates, a common
/// real-contract shape, used in the hybrid-brokerage scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PenaltyClause {
    /// Flat rate per slippage hour (the paper's `SP`).
    PerHour {
        /// Dollars charged per hour of slippage.
        rate: f64,
    },
    /// Escalating rates: each tier covers slippage hours up to `up_to_hours`
    /// (cumulative) at `rate`; hours beyond the last tier bill at the last
    /// tier's rate.
    Tiered {
        /// Tiers in ascending `up_to_hours` order.
        tiers: Vec<PenaltyTier>,
    },
}

/// One tier of a tiered penalty clause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyTier {
    /// Cumulative hour boundary this tier covers up to.
    pub up_to_hours: f64,
    /// Dollars per hour within this tier.
    pub rate: f64,
}

impl PenaltyClause {
    /// Creates the paper's flat per-hour clause.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `rate` is negative or not
    /// finite.
    pub fn per_hour(rate: f64) -> Result<Self, ModelError> {
        if !(rate.is_finite() && rate >= 0.0) {
            return Err(ModelError::InvalidQuantity {
                what: "penalty rate per hour",
                value: rate,
            });
        }
        Ok(PenaltyClause::PerHour { rate })
    }

    /// Creates a tiered clause.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if tiers are empty, any rate
    /// or boundary is invalid, or boundaries are not strictly increasing.
    pub fn tiered(tiers: Vec<PenaltyTier>) -> Result<Self, ModelError> {
        if tiers.is_empty() {
            return Err(ModelError::InvalidQuantity {
                what: "tier count",
                value: 0.0,
            });
        }
        let mut prev = 0.0;
        for t in &tiers {
            if !(t.up_to_hours.is_finite() && t.up_to_hours > prev) {
                return Err(ModelError::InvalidQuantity {
                    what: "tier hour boundary",
                    value: t.up_to_hours,
                });
            }
            if !(t.rate.is_finite() && t.rate >= 0.0) {
                return Err(ModelError::InvalidQuantity {
                    what: "tier rate",
                    value: t.rate,
                });
            }
            prev = t.up_to_hours;
        }
        Ok(PenaltyClause::Tiered { tiers })
    }

    /// Dollars owed for the given number of billable slippage hours.
    #[must_use]
    pub fn charge(&self, hours: f64) -> MoneyPerMonth {
        let hours = hours.max(0.0);
        let amount = match self {
            PenaltyClause::PerHour { rate } => rate * hours,
            PenaltyClause::Tiered { tiers } => {
                let mut remaining = hours;
                let mut total = 0.0;
                let mut prev_boundary = 0.0;
                let mut last_rate = 0.0;
                for t in tiers {
                    let span = (t.up_to_hours - prev_boundary).max(0.0);
                    let billed = remaining.min(span);
                    total += billed * t.rate;
                    remaining -= billed;
                    prev_boundary = t.up_to_hours;
                    last_rate = t.rate;
                    if remaining <= 0.0 {
                        break;
                    }
                }
                total + remaining.max(0.0) * last_rate
            }
        };
        MoneyPerMonth::new(amount).expect("non-negative hours times non-negative rate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_policies() {
        assert_eq!(RoundingPolicy::Exact.apply(42.57), 42.57);
        assert_eq!(RoundingPolicy::NearestHour.apply(42.57), 43.0);
        assert_eq!(RoundingPolicy::NearestHour.apply(2.2), 2.0);
        assert_eq!(RoundingPolicy::CeilHour.apply(42.57), 43.0);
        assert_eq!(RoundingPolicy::CeilHour.apply(2.2), 3.0);
        assert_eq!(RoundingPolicy::default(), RoundingPolicy::CeilHour);
    }

    #[test]
    fn sla_target_validation() {
        assert!(SlaTarget::from_percent(98.0).is_ok());
        assert!(SlaTarget::from_percent(100.0).is_ok());
        assert!(SlaTarget::from_percent(0.0).is_err());
        assert!(SlaTarget::from_percent(-3.0).is_err());
        assert!(SlaTarget::from_percent(100.5).is_err());
        assert!(SlaTarget::from_percent(f64::NAN).is_err());
        assert!(SlaTarget::from_probability(Probability::ZERO).is_err());
        assert!(SlaTarget::from_probability(Probability::ONE).is_ok());
    }

    #[test]
    fn sla_met_and_slippage() {
        let sla = SlaTarget::from_percent(98.0).unwrap();
        assert_eq!(sla.as_percent(), 98.0);
        let u_good = Probability::new(0.9871).unwrap();
        let u_bad = Probability::new(0.9217).unwrap();
        assert!(sla.is_met_by(u_good));
        assert_eq!(sla.slippage_hours_per_month(u_good), 0.0);
        // Paper option #1: (0.98 − 0.9217) × 730 ≈ 42.6 h.
        let hours = sla.slippage_hours_per_month(u_bad);
        assert!((hours - 42.559).abs() < 1e-2, "got {hours}");
    }

    #[test]
    fn exact_boundary_counts_as_met() {
        let sla = SlaTarget::from_percent(98.0).unwrap();
        assert!(sla.is_met_by(Probability::new(0.98).unwrap()));
        assert_eq!(
            sla.slippage_hours_per_month(Probability::new(0.98).unwrap()),
            0.0
        );
    }

    #[test]
    fn per_hour_clause_matches_paper() {
        let clause = PenaltyClause::per_hour(100.0).unwrap();
        assert_eq!(clause.charge(43.0).value(), 4300.0);
        assert_eq!(clause.charge(0.0).value(), 0.0);
        assert_eq!(clause.charge(-5.0).value(), 0.0);
    }

    #[test]
    fn per_hour_rejects_bad_rates() {
        assert!(PenaltyClause::per_hour(-1.0).is_err());
        assert!(PenaltyClause::per_hour(f64::INFINITY).is_err());
        assert!(PenaltyClause::per_hour(0.0).is_ok());
    }

    #[test]
    fn tiered_clause_charges_progressively() {
        // First 10 h at $100, next up to 30 h at $200, beyond at $500.
        let clause = PenaltyClause::tiered(vec![
            PenaltyTier {
                up_to_hours: 10.0,
                rate: 100.0,
            },
            PenaltyTier {
                up_to_hours: 30.0,
                rate: 200.0,
            },
            PenaltyTier {
                up_to_hours: 40.0,
                rate: 500.0,
            },
        ])
        .unwrap();
        assert_eq!(clause.charge(5.0).value(), 500.0);
        assert_eq!(clause.charge(10.0).value(), 1000.0);
        assert_eq!(clause.charge(20.0).value(), 1000.0 + 10.0 * 200.0);
        assert_eq!(clause.charge(30.0).value(), 1000.0 + 4000.0);
        assert_eq!(clause.charge(35.0).value(), 5000.0 + 5.0 * 500.0);
        // Beyond the last boundary, keep billing at the last rate.
        assert_eq!(
            clause.charge(50.0).value(),
            5000.0 + 10.0 * 500.0 + 10.0 * 500.0
        );
    }

    #[test]
    fn tiered_validation() {
        assert!(PenaltyClause::tiered(vec![]).is_err());
        // Non-increasing boundaries rejected.
        assert!(PenaltyClause::tiered(vec![
            PenaltyTier {
                up_to_hours: 10.0,
                rate: 1.0
            },
            PenaltyTier {
                up_to_hours: 10.0,
                rate: 2.0
            },
        ])
        .is_err());
        assert!(PenaltyClause::tiered(vec![PenaltyTier {
            up_to_hours: 10.0,
            rate: -1.0
        }])
        .is_err());
    }

    #[test]
    fn tiered_with_single_tier_equals_flat_within_boundary() {
        let flat = PenaltyClause::per_hour(100.0).unwrap();
        let tiered = PenaltyClause::tiered(vec![PenaltyTier {
            up_to_hours: 1000.0,
            rate: 100.0,
        }])
        .unwrap();
        for h in [0.0, 1.5, 43.0, 999.0] {
            assert_eq!(flat.charge(h), tiered.charge(h), "h={h}");
        }
    }

    #[test]
    fn serde_roundtrip() {
        let sla = SlaTarget::from_percent(98.0).unwrap();
        let json = serde_json::to_string(&sla).unwrap();
        let back: SlaTarget = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sla);

        let clause = PenaltyClause::per_hour(100.0).unwrap();
        let json = serde_json::to_string(&clause).unwrap();
        let back: PenaltyClause = serde_json::from_str(&json).unwrap();
        assert_eq!(back, clause);
    }
}
