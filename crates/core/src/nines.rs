//! "Nines" notation and downtime-budget conversions.
//!
//! Operators speak in nines ("three nines" = 99.9 %); contracts speak in
//! hours of allowed downtime. This module converts between the two and the
//! model's [`Probability`] uptime.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{Minutes, Probability, HOURS_PER_MONTH, MINUTES_PER_YEAR};

/// An availability class expressed as a (possibly fractional) count of
/// nines: `nines = −log10(1 − U)`.
///
/// # Examples
///
/// ```
/// use uptime_core::{Nines, Probability};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let three_nines = Nines::from_uptime(Probability::new(0.999)?);
/// assert!((three_nines.count() - 3.0).abs() < 1e-9);
/// assert!((three_nines.downtime_minutes_per_year().value() - 525.6).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Nines(f64);

impl Nines {
    /// Computes the nines count of an uptime probability.
    ///
    /// A perfect uptime of 1.0 maps to `f64::INFINITY`.
    #[must_use]
    pub fn from_uptime(uptime: Probability) -> Self {
        let downtime = 1.0 - uptime.value();
        if downtime <= 0.0 {
            Nines(f64::INFINITY)
        } else {
            Nines(-downtime.log10())
        }
    }

    /// Builds the uptime probability for an integer-or-fractional nines
    /// count, e.g. `3.5` nines = 99.968 %.
    #[must_use]
    pub fn to_uptime(self) -> Probability {
        if self.0.is_infinite() {
            Probability::ONE
        } else {
            Probability::saturating(1.0 - 10f64.powf(-self.0))
        }
    }

    /// The raw nines count.
    #[must_use]
    pub fn count(self) -> f64 {
        self.0
    }

    /// Creates a nines value directly from a count.
    #[must_use]
    pub fn from_count(count: f64) -> Self {
        Nines(count)
    }

    /// Allowed downtime per year at this availability class.
    #[must_use]
    pub fn downtime_minutes_per_year(self) -> Minutes {
        Minutes::new((1.0 - self.to_uptime().value()) * MINUTES_PER_YEAR)
            .expect("downtime fraction is within [0,1]")
    }

    /// Allowed downtime per contractual month (730 h) in hours.
    #[must_use]
    pub fn downtime_hours_per_month(self) -> f64 {
        (1.0 - self.to_uptime().value()) * HOURS_PER_MONTH
    }
}

impl fmt::Display for Nines {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "perfect availability")
        } else {
            write!(
                f,
                "{:.2} nines ({:.4}%)",
                self.0,
                self.to_uptime().as_percent()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn canonical_nines_table() {
        // (uptime, nines, minutes/year) triplets from operator folklore.
        let cases = [
            (0.9, 1.0, 52_560.0),
            (0.99, 2.0, 5_256.0),
            (0.999, 3.0, 525.6),
            (0.9999, 4.0, 52.56),
            (0.99999, 5.0, 5.256),
        ];
        for (uptime, nines, minutes) in cases {
            let n = Nines::from_uptime(p(uptime));
            assert!((n.count() - nines).abs() < 1e-9, "uptime {uptime}");
            assert!(
                (n.downtime_minutes_per_year().value() - minutes).abs() < 1e-6,
                "uptime {uptime}"
            );
        }
    }

    #[test]
    fn roundtrip_uptime_nines() {
        for uptime in [0.5, 0.9217, 0.98, 0.9975, 0.99999] {
            let back = Nines::from_uptime(p(uptime)).to_uptime();
            assert!((back.value() - uptime).abs() < 1e-12, "uptime {uptime}");
        }
    }

    #[test]
    fn perfect_uptime_is_infinite_nines() {
        let n = Nines::from_uptime(Probability::ONE);
        assert!(n.count().is_infinite());
        assert_eq!(n.to_uptime(), Probability::ONE);
        assert_eq!(n.downtime_minutes_per_year().value(), 0.0);
        assert_eq!(n.to_string(), "perfect availability");
    }

    #[test]
    fn paper_case_study_in_nines() {
        // 98 % SLA is about 1.7 nines; option #5's 98.71 % is about 1.9.
        let sla = Nines::from_uptime(p(0.98));
        assert!((sla.count() - 1.699).abs() < 0.001);
        let opt5 = Nines::from_uptime(p(0.9871));
        assert!(opt5.count() > sla.count());
    }

    #[test]
    fn monthly_budget() {
        let two_nines = Nines::from_count(2.0);
        assert!((two_nines.downtime_hours_per_month() - 7.3).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let n = Nines::from_count(3.0);
        let s = n.to_string();
        assert!(s.contains("3.00 nines"));
        assert!(s.contains("99.9"));
    }
}
