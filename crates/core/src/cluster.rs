//! Cluster specification: the paper's k-redundancy building block.

use serde::{Deserialize, Serialize};

use crate::binomial;
use crate::error::ModelError;
use crate::units::{FailuresPerYear, Minutes, Probability, MINUTES_PER_YEAR};

/// A cluster `C_i` in the paper's k-redundancy model.
///
/// The cluster has `K` nodes (`total_nodes`), of which `K − K̂` must be
/// active for the cluster to be operational; `K̂` (`standby_budget`) is the
/// maximum number of simultaneous node failures the HA layer tolerates.
/// Each node is independently down with probability `P` and suffers `f`
/// failures per year; promoting a standby takes `t` minutes of cluster
/// unavailability (the *failover time*).
///
/// # Examples
///
/// The paper's VMware ESX 3+1 compute tier (Fig. 7):
///
/// ```
/// use uptime_core::{ClusterSpec, Probability, Minutes, FailuresPerYear};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let compute = ClusterSpec::builder("compute")
///     .total_nodes(4)
///     .standby_budget(1)
///     .node_down_probability(Probability::new(0.01)?)
///     .failures_per_year(FailuresPerYear::new(1.0)?)
///     .failover_time(Minutes::new(6.0)?)
///     .build()?;
/// assert_eq!(compute.active_nodes(), 3);
/// assert!((compute.availability().value() - 0.99940796).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    name: String,
    total_nodes: u32,
    standby_budget: u32,
    node_down_probability: Probability,
    failures_per_year: FailuresPerYear,
    failover_time: Minutes,
}

impl ClusterSpec {
    /// Starts building a cluster with the given display name.
    pub fn builder(name: impl Into<String>) -> ClusterSpecBuilder {
        ClusterSpecBuilder::new(name)
    }

    /// Convenience constructor for an unclustered, single-node component
    /// (the paper's "No HA" rows: `K = 1`, `K̂ = 0`, `t = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidQuantity`] if `failures_per_year` is
    /// negative or not finite.
    pub fn singleton(
        name: impl Into<String>,
        node_down_probability: Probability,
        failures_per_year: f64,
    ) -> Result<Self, ModelError> {
        ClusterSpecBuilder::new(name)
            .total_nodes(1)
            .standby_budget(0)
            .node_down_probability(node_down_probability)
            .failures_per_year(FailuresPerYear::new(failures_per_year)?)
            .failover_time(Minutes::ZERO)
            .build()
    }

    /// The cluster's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total node count `K`.
    #[must_use]
    pub fn total_nodes(&self) -> u32 {
        self.total_nodes
    }

    /// Standby budget `K̂` — tolerated simultaneous node failures.
    #[must_use]
    pub fn standby_budget(&self) -> u32 {
        self.standby_budget
    }

    /// Number of nodes that must be active, `K − K̂`.
    #[must_use]
    pub fn active_nodes(&self) -> u32 {
        self.total_nodes - self.standby_budget
    }

    /// Per-node down probability `P`.
    #[must_use]
    pub fn node_down_probability(&self) -> Probability {
        self.node_down_probability
    }

    /// Average failures per node-year `f`.
    #[must_use]
    pub fn failures_per_year(&self) -> FailuresPerYear {
        self.failures_per_year
    }

    /// Failover latency `t`.
    #[must_use]
    pub fn failover_time(&self) -> Minutes {
        self.failover_time
    }

    /// Probability that the cluster is operational:
    /// `Σ_{j=K−K̂}^{K} C(K,j) (1−P)^j P^{K−j}` (the per-cluster factor of
    /// the paper's Eq. 2).
    #[must_use]
    pub fn availability(&self) -> Probability {
        binomial::survival_at_least(
            self.total_nodes,
            self.active_nodes(),
            self.node_down_probability.complement(),
        )
    }

    /// Probability the cluster is *not* operational.
    #[must_use]
    pub fn breakdown_probability(&self) -> Probability {
        self.availability().complement()
    }

    /// Expected minutes per year the cluster spends in failover
    /// transitions: `f · t · (K − K̂)` (numerator of the paper's Eq. 3).
    #[must_use]
    pub fn failover_minutes_per_year(&self) -> Minutes {
        self.failover_time * (self.failures_per_year.value() * f64::from(self.active_nodes()))
    }

    /// The failover term as a fraction of the year, `f·t·(K−K̂)/δ`.
    #[must_use]
    pub fn failover_year_fraction(&self) -> f64 {
        self.failover_minutes_per_year().value() / MINUTES_PER_YEAR
    }

    /// Probability that **all currently-active nodes** are up,
    /// `(1 − P)^{K − K̂}` — the per-cluster factor of `P(X_i)` in Eq. 3.
    #[must_use]
    pub fn all_active_up_probability(&self) -> Probability {
        self.node_down_probability
            .complement()
            .powi(self.active_nodes())
    }

    /// Returns a copy with a different node-down probability; used by
    /// sensitivity analysis.
    #[must_use]
    pub fn with_node_down_probability(&self, p: Probability) -> Self {
        let mut copy = self.clone();
        copy.node_down_probability = p;
        copy
    }

    /// Returns a copy with a different failover time; used by sensitivity
    /// analysis.
    #[must_use]
    pub fn with_failover_time(&self, t: Minutes) -> Self {
        let mut copy = self.clone();
        copy.failover_time = t;
        copy
    }

    /// Returns a copy with a different failure rate; used by sensitivity
    /// analysis.
    #[must_use]
    pub fn with_failures_per_year(&self, f: FailuresPerYear) -> Self {
        let mut copy = self.clone();
        copy.failures_per_year = f;
        copy
    }
}

/// Builder for [`ClusterSpec`] (guideline C-BUILDER).
///
/// Defaults: 1 node, 0 standby budget, `P = 0`, `f = 0`, `t = 0`.
#[derive(Debug, Clone)]
pub struct ClusterSpecBuilder {
    name: String,
    total_nodes: u32,
    standby_budget: u32,
    node_down_probability: Probability,
    failures_per_year: FailuresPerYear,
    failover_time: Minutes,
}

impl ClusterSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        ClusterSpecBuilder {
            name: name.into(),
            total_nodes: 1,
            standby_budget: 0,
            node_down_probability: Probability::ZERO,
            failures_per_year: FailuresPerYear::ZERO,
            failover_time: Minutes::ZERO,
        }
    }

    /// Sets the total node count `K`.
    #[must_use]
    pub fn total_nodes(mut self, k: u32) -> Self {
        self.total_nodes = k;
        self
    }

    /// Sets the standby budget `K̂`.
    #[must_use]
    pub fn standby_budget(mut self, k_hat: u32) -> Self {
        self.standby_budget = k_hat;
        self
    }

    /// Sets the per-node down probability `P`.
    #[must_use]
    pub fn node_down_probability(mut self, p: Probability) -> Self {
        self.node_down_probability = p;
        self
    }

    /// Sets the yearly per-node failure rate `f`.
    #[must_use]
    pub fn failures_per_year(mut self, f: FailuresPerYear) -> Self {
        self.failures_per_year = f;
        self
    }

    /// Sets the failover latency `t`.
    #[must_use]
    pub fn failover_time(mut self, t: Minutes) -> Self {
        self.failover_time = t;
        self
    }

    /// Validates and builds the [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyCluster`] if `K = 0`.
    /// * [`ModelError::NoActiveNodes`] if `K̂ ≥ K`.
    pub fn build(self) -> Result<ClusterSpec, ModelError> {
        if self.total_nodes == 0 {
            return Err(ModelError::EmptyCluster { name: self.name });
        }
        if self.standby_budget >= self.total_nodes {
            return Err(ModelError::NoActiveNodes {
                name: self.name,
                total_nodes: self.total_nodes,
                standby_budget: self.standby_budget,
            });
        }
        Ok(ClusterSpec {
            name: self.name,
            total_nodes: self.total_nodes,
            standby_budget: self.standby_budget,
            node_down_probability: self.node_down_probability,
            failures_per_year: self.failures_per_year,
            failover_time: self.failover_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn vmware_3_plus_1() -> ClusterSpec {
        ClusterSpec::builder("compute")
            .total_nodes(4)
            .standby_budget(1)
            .node_down_probability(p(0.01))
            .failures_per_year(FailuresPerYear::new(1.0).unwrap())
            .failover_time(Minutes::new(6.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn singleton_availability_is_node_up_probability() {
        let c = ClusterSpec::singleton("web", p(0.02), 1.0).unwrap();
        assert!((c.availability().value() - 0.98).abs() < 1e-15);
        assert_eq!(c.active_nodes(), 1);
        assert_eq!(c.failover_minutes_per_year().value(), 0.0);
    }

    #[test]
    fn builder_rejects_zero_nodes() {
        let err = ClusterSpec::builder("x")
            .total_nodes(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::EmptyCluster { .. }));
    }

    #[test]
    fn builder_rejects_all_standby() {
        let err = ClusterSpec::builder("x")
            .total_nodes(2)
            .standby_budget(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::NoActiveNodes { .. }));
    }

    #[test]
    fn vmware_cluster_matches_paper() {
        let c = vmware_3_plus_1();
        assert_eq!(c.active_nodes(), 3);
        let expected = 4.0 * 0.99f64.powi(3) * 0.01 + 0.99f64.powi(4);
        assert!((c.availability().value() - expected).abs() < 1e-12);
        // f·t·(K−K̂) = 1 × 6 × 3 = 18 minutes/year.
        assert!((c.failover_minutes_per_year().value() - 18.0).abs() < 1e-12);
        // (1−P)^3
        assert!((c.all_active_up_probability().value() - 0.99f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn raid1_cluster_matches_paper() {
        let c = ClusterSpec::builder("storage")
            .total_nodes(2)
            .standby_budget(1)
            .node_down_probability(p(0.05))
            .failures_per_year(FailuresPerYear::new(2.0).unwrap())
            .failover_time(Minutes::from_seconds(30.0).unwrap())
            .build()
            .unwrap();
        assert!((c.availability().value() - 0.9975).abs() < 1e-12);
        // 2/yr × 0.5 min × 1 active = 1 minute/year.
        assert!((c.failover_minutes_per_year().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_is_complement_of_availability() {
        let c = vmware_3_plus_1();
        let sum = c.availability().value() + c.breakdown_probability().value();
        assert!((sum - 1.0).abs() < 1e-15);
    }

    #[test]
    fn adding_standby_improves_availability() {
        let base = ClusterSpec::builder("c")
            .total_nodes(3)
            .standby_budget(0)
            .node_down_probability(p(0.05))
            .build()
            .unwrap();
        let redundant = ClusterSpec::builder("c")
            .total_nodes(4)
            .standby_budget(1)
            .node_down_probability(p(0.05))
            .build()
            .unwrap();
        assert!(redundant.availability() > base.availability());
    }

    #[test]
    fn with_methods_replace_single_field() {
        let c = vmware_3_plus_1();
        let c2 = c.with_node_down_probability(p(0.5));
        assert_eq!(c2.node_down_probability().value(), 0.5);
        assert_eq!(c2.total_nodes(), c.total_nodes());
        let c3 = c.with_failover_time(Minutes::new(1.0).unwrap());
        assert_eq!(c3.failover_time().value(), 1.0);
        let c4 = c.with_failures_per_year(FailuresPerYear::new(9.0).unwrap());
        assert_eq!(c4.failures_per_year().value(), 9.0);
    }

    #[test]
    fn failover_year_fraction() {
        let c = vmware_3_plus_1();
        assert!((c.failover_year_fraction() - 18.0 / 525_600.0).abs() < 1e-18);
    }

    #[test]
    fn serde_roundtrip() {
        let c = vmware_3_plus_1();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
