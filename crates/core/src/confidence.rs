//! Uncertainty propagation from broker evidence to uptime and TCO.
//!
//! The paper's §IV concedes that the broker-maintained `P_i` "could be
//! skewed". This module makes that risk quantitative: given how many
//! node-years of telemetry back each `P_i`, it derives a Wald-style
//! confidence interval per parameter and propagates it to **sound** bounds
//! on `U_s` and the TCO.
//!
//! Soundness of the propagation: `B_s` (Eq. 2) is monotone *increasing* in
//! every `P_i` (each cluster-survival factor decreases as its nodes get
//! worse), and `F_s` (Eq. 3) is monotone *decreasing* in every `P_i` (only
//! the `Π (1−P_j)^{K_j−K̂_j}` guards depend on `P`). Evaluating `B_s` at
//! the interval endpoints and `F_s` at the *opposite* endpoints therefore
//! brackets `D_s = B_s + F_s` — two model evaluations, no corner search.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::system::SystemSpec;
use crate::tco::TcoModel;
use crate::units::{MoneyPerMonth, Probability};

/// A two-sided confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceLevel {
    z: f64,
}

impl ConfidenceLevel {
    /// 90 % two-sided (z = 1.645).
    pub const P90: ConfidenceLevel = ConfidenceLevel { z: 1.645 };
    /// 95 % two-sided (z = 1.960).
    pub const P95: ConfidenceLevel = ConfidenceLevel { z: 1.960 };
    /// 99 % two-sided (z = 2.576).
    pub const P99: ConfidenceLevel = ConfidenceLevel { z: 2.576 };

    /// The z-score multiplier.
    #[must_use]
    pub fn z(self) -> f64 {
        self.z
    }
}

/// A closed probability interval `[lower, upper]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityInterval {
    lower: Probability,
    upper: Probability,
}

impl ProbabilityInterval {
    /// Creates an interval; swaps endpoints if given in the wrong order.
    #[must_use]
    pub fn new(a: Probability, b: Probability) -> Self {
        if a <= b {
            ProbabilityInterval { lower: a, upper: b }
        } else {
            ProbabilityInterval { lower: b, upper: a }
        }
    }

    /// A degenerate (zero-width) interval.
    #[must_use]
    pub fn exact(p: Probability) -> Self {
        ProbabilityInterval { lower: p, upper: p }
    }

    /// Wald-style interval for a down-probability estimated from
    /// `node_years` of observation: `p̂ ± z·√(p̂(1−p̂)/node_years)`,
    /// clamped to `[0, 1]`. With zero evidence the interval is the whole
    /// unit interval.
    #[must_use]
    pub fn wald(estimate: Probability, node_years: f64, level: ConfidenceLevel) -> Self {
        if node_years <= 0.0 {
            return ProbabilityInterval {
                lower: Probability::ZERO,
                upper: Probability::ONE,
            };
        }
        let p = estimate.value();
        let half = level.z() * (p * (1.0 - p) / node_years).sqrt();
        ProbabilityInterval {
            lower: Probability::saturating(p - half),
            upper: Probability::saturating(p + half),
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lower(&self) -> Probability {
        self.lower
    }

    /// Upper endpoint.
    #[must_use]
    pub fn upper(&self) -> Probability {
        self.upper
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper.value() - self.lower.value()
    }

    /// Whether a value lies within the interval.
    #[must_use]
    pub fn contains(&self, p: Probability) -> bool {
        self.lower <= p && p <= self.upper
    }
}

/// Sound bounds on system uptime given per-cluster down-probability
/// intervals (one per cluster, in system order).
///
/// # Panics
///
/// Panics if `intervals.len() != system.len()`.
///
/// # Examples
///
/// ```
/// use uptime_core::confidence::{uptime_interval, ConfidenceLevel, ProbabilityInterval};
/// use uptime_core::{ClusterSpec, Probability, SystemSpec};
///
/// # fn main() -> Result<(), uptime_core::ModelError> {
/// let system = SystemSpec::builder()
///     .cluster(ClusterSpec::singleton("web", Probability::new(0.02)?, 2.0)?)
///     .build()?;
/// let iv = ProbabilityInterval::wald(
///     Probability::new(0.02)?, 100.0, ConfidenceLevel::P95,
/// );
/// let bounds = uptime_interval(&system, &[iv]);
/// assert!(bounds.contains(system.uptime().availability()));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn uptime_interval(
    system: &SystemSpec,
    intervals: &[ProbabilityInterval],
) -> ProbabilityInterval {
    assert_eq!(
        intervals.len(),
        system.len(),
        "one interval per cluster required"
    );
    let at = |pick: fn(&ProbabilityInterval) -> Probability| -> SystemSpec {
        let clusters: Vec<ClusterSpec> = system
            .clusters()
            .iter()
            .zip(intervals)
            .map(|(c, iv)| c.with_node_down_probability(pick(iv)))
            .collect();
        SystemSpec::new(clusters).expect("same cardinality as valid system")
    };
    let low_p = at(ProbabilityInterval::lower);
    let high_p = at(ProbabilityInterval::upper);

    // D_s = B_s + F_s with B monotone increasing and F monotone decreasing
    // in every P_i: bracket each term at its own worst endpoint.
    let d_max = high_p.breakdown_probability().value() + low_p.failover_probability().value();
    let d_min = low_p.breakdown_probability().value() + high_p.failover_probability().value();
    ProbabilityInterval::new(
        Probability::saturating(1.0 - d_max),
        Probability::saturating(1.0 - d_min),
    )
}

/// Bounds on the monthly TCO implied by an uptime interval (TCO is
/// monotone decreasing in uptime): `(best_case, worst_case)`.
#[must_use]
pub fn tco_interval(
    model: &TcoModel,
    ha_cost: MoneyPerMonth,
    uptime: ProbabilityInterval,
) -> (MoneyPerMonth, MoneyPerMonth) {
    let best = model.evaluate(ha_cost, uptime.upper()).total();
    let worst = model.evaluate(ha_cost, uptime.lower()).total();
    (best, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sla::{PenaltyClause, SlaTarget};
    use crate::units::FailuresPerYear;
    use crate::Minutes;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    fn paper_system() -> SystemSpec {
        SystemSpec::builder()
            .cluster(ClusterSpec::singleton("compute", p(0.01), 1.0).unwrap())
            .cluster(ClusterSpec::singleton("storage", p(0.05), 2.0).unwrap())
            .cluster(ClusterSpec::singleton("network", p(0.02), 1.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn wald_interval_shrinks_with_evidence() {
        let thin = ProbabilityInterval::wald(p(0.05), 10.0, ConfidenceLevel::P95);
        let thick = ProbabilityInterval::wald(p(0.05), 1000.0, ConfidenceLevel::P95);
        assert!(thick.width() < thin.width());
        assert!(thin.contains(p(0.05)));
        assert!(thick.contains(p(0.05)));
    }

    #[test]
    fn wald_zero_evidence_is_vacuous() {
        let iv = ProbabilityInterval::wald(p(0.5), 0.0, ConfidenceLevel::P95);
        assert_eq!(iv.lower(), Probability::ZERO);
        assert_eq!(iv.upper(), Probability::ONE);
    }

    #[test]
    fn wald_known_value() {
        // p̂ = 0.05, 100 node-years, z = 1.96:
        // half = 1.96 × √(0.05×0.95/100) ≈ 0.0427.
        let iv = ProbabilityInterval::wald(p(0.05), 100.0, ConfidenceLevel::P95);
        assert!((iv.lower().value() - (0.05 - 0.0427)).abs() < 1e-3);
        assert!((iv.upper().value() - (0.05 + 0.0427)).abs() < 1e-3);
    }

    #[test]
    fn interval_constructor_orders_endpoints() {
        let iv = ProbabilityInterval::new(p(0.9), p(0.1));
        assert_eq!(iv.lower(), p(0.1));
        assert_eq!(iv.upper(), p(0.9));
        assert!((iv.width() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn exact_interval_has_zero_width() {
        let iv = ProbabilityInterval::exact(p(0.3));
        assert_eq!(iv.width(), 0.0);
        assert!(iv.contains(p(0.3)));
        assert!(!iv.contains(p(0.31)));
    }

    #[test]
    fn uptime_interval_brackets_point_estimate() {
        let system = paper_system();
        let intervals: Vec<_> = system
            .clusters()
            .iter()
            .map(|c| {
                ProbabilityInterval::wald(c.node_down_probability(), 200.0, ConfidenceLevel::P95)
            })
            .collect();
        let bounds = uptime_interval(&system, &intervals);
        let point = system.uptime().availability();
        assert!(bounds.contains(point), "{bounds:?} vs {point}");
        assert!(bounds.width() > 0.0);
    }

    #[test]
    fn exact_intervals_collapse_to_point() {
        let system = paper_system();
        let intervals: Vec<_> = system
            .clusters()
            .iter()
            .map(|c| ProbabilityInterval::exact(c.node_down_probability()))
            .collect();
        let bounds = uptime_interval(&system, &intervals);
        let point = system.uptime().availability();
        assert!((bounds.lower().value() - point.value()).abs() < 1e-12);
        assert!((bounds.upper().value() - point.value()).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_sound_for_any_interior_choice() {
        // Sample the box: every interior evaluation must fall inside the
        // reported bounds — including for systems with failover terms.
        let system = SystemSpec::builder()
            .cluster(
                ClusterSpec::builder("c")
                    .total_nodes(4)
                    .standby_budget(1)
                    .node_down_probability(p(0.05))
                    .failures_per_year(FailuresPerYear::new(3.0).unwrap())
                    .failover_time(Minutes::new(10.0).unwrap())
                    .build()
                    .unwrap(),
            )
            .cluster(ClusterSpec::singleton("d", p(0.02), 1.0).unwrap())
            .build()
            .unwrap();
        let intervals = vec![
            ProbabilityInterval::new(p(0.02), p(0.10)),
            ProbabilityInterval::new(p(0.01), p(0.05)),
        ];
        let bounds = uptime_interval(&system, &intervals);
        for a in [0.02, 0.05, 0.08, 0.10] {
            for b in [0.01, 0.03, 0.05] {
                let candidate = SystemSpec::new(vec![
                    system.clusters()[0].with_node_down_probability(p(a)),
                    system.clusters()[1].with_node_down_probability(p(b)),
                ])
                .unwrap();
                let u = candidate.uptime().availability();
                assert!(bounds.contains(u), "({a},{b}) -> {u} outside {bounds:?}");
            }
        }
    }

    #[test]
    fn tco_interval_ordering() {
        let model = TcoModel::new(
            SlaTarget::from_percent(98.0).unwrap(),
            PenaltyClause::per_hour(100.0).unwrap(),
        );
        let iv = ProbabilityInterval::new(p(0.95), p(0.99));
        let (best, worst) = tco_interval(&model, MoneyPerMonth::new(350.0).unwrap(), iv);
        assert!(best <= worst);
        // Best case meets the SLA: TCO = C_HA.
        assert_eq!(best.value(), 350.0);
        assert!(worst.value() > 350.0);
    }

    #[test]
    #[should_panic(expected = "one interval per cluster")]
    fn arity_mismatch_panics() {
        let _ = uptime_interval(&paper_system(), &[]);
    }

    #[test]
    fn confidence_levels_ordered() {
        assert!(ConfidenceLevel::P90.z() < ConfidenceLevel::P95.z());
        assert!(ConfidenceLevel::P95.z() < ConfidenceLevel::P99.z());
    }

    #[test]
    fn serde_roundtrip() {
        let iv = ProbabilityInterval::new(p(0.1), p(0.2));
        let json = serde_json::to_string(&iv).unwrap();
        let back: ProbabilityInterval = serde_json::from_str(&json).unwrap();
        assert_eq!(back, iv);
    }
}
